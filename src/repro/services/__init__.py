"""The two services built on Multi-Ring Paxos (Section 6).

* :mod:`repro.services.mrpstore` -- MRP-Store, a partitioned, replicated,
  sequentially consistent key-value store (read / scan / update / insert /
  delete, Table 1).
* :mod:`repro.services.dlog` -- dLog, a distributed shared log with atomic
  multi-log appends (append / multi-append / read / trim, Table 2).

Both services replicate every partition with state-machine replication on
atomic multicast and inherit Multi-Ring Paxos's recovery (checkpointing,
log trimming, state transfer).
"""

from repro.services.mrpstore import MRPStore, MRPStoreStateMachine, PartitionMap
from repro.services.dlog import DLog, DLogStateMachine

__all__ = [
    "MRPStore",
    "MRPStoreStateMachine",
    "PartitionMap",
    "DLog",
    "DLogStateMachine",
]
