"""dLog: a distributed shared log with atomic multi-log appends (Section 6.2)."""

from repro.services.dlog.state import DLogStateMachine
from repro.services.dlog.service import DLog

__all__ = ["DLogStateMachine", "DLog"]
