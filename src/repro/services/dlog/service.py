"""dLog deployment builder and client library.

The dLog service maps every log to one multicast group (one ring); replicas
subscribe to the rings of the logs they host, plus an optional shared ring
used for atomic multi-log appends.  This mirrors the paper's deployments:

* Figure 5 uses two rings with three acceptors each, learners subscribing to
  both rings, synchronous acceptor disk writes;
* Figure 6 varies the number of rings from 1 to 5 with one disk per ring, the
  learners subscribing to every ring plus a common ring, asynchronous writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import BatchingConfig, MultiRingConfig, RecoveryConfig
from repro.errors import ConfigurationError, ServiceError
from repro.multiring.deployment import Deployment, RingSpec
from repro.runtime.interfaces import Runtime, StorageMode
from repro.smr.client import Request
from repro.smr.frontend import ProposerFrontend
from repro.smr.replica import Replica
from repro.services.dlog.state import DLogStateMachine
from repro.types import GroupId

__all__ = ["DLog"]


class DLog:
    """A complete, runnable dLog deployment."""

    GLOBAL_GROUP: GroupId = "dlog-global"

    def __init__(
        self,
        world: Runtime,
        logs: Sequence[str] = ("log-0",),
        replicas: int = 1,
        acceptors_per_log: int = 3,
        storage_mode: StorageMode = StorageMode.SYNC_SSD,
        use_global_ring: bool = True,
        config: Optional[MultiRingConfig] = None,
        recovery_config: Optional[RecoveryConfig] = None,
        batching: Optional[BatchingConfig] = None,
        coordinator_batching: Optional[BatchingConfig] = None,
        pipeline_depth: Optional[int] = None,
        enable_recovery: bool = False,
        replica_cache_bytes: int = 200 * 1024 * 1024,
    ) -> None:
        if not logs:
            raise ConfigurationError("dLog needs at least one log")
        self.world = world
        self.logs = list(logs)
        self.config = config or MultiRingConfig.datacenter()
        self.recovery_config = recovery_config or RecoveryConfig()
        self.batching = batching or BatchingConfig(enabled=False)
        self.use_global_ring = use_global_ring
        self.storage_mode = storage_mode
        # Per-ring protocol configuration: coordinator-side batching and the
        # pipelined instance window (None keeps the MultiRingConfig defaults).
        self._ring_config = self.config.ring.with_storage(storage_mode)
        if coordinator_batching is not None:
            self._ring_config = self._ring_config.with_batching(coordinator_batching)
        if pipeline_depth is not None:
            self._ring_config = self._ring_config.with_pipeline_depth(pipeline_depth)
        self.deployment = Deployment(world, self.config)

        self.groups: Dict[str, GroupId] = {log: f"dlog-{log}" for log in self.logs}
        self.replica_nodes: List[Replica] = []
        self.frontends: Dict[GroupId, List[str]] = {}

        self._build(replicas, acceptors_per_log, replica_cache_bytes, enable_recovery)
        self.deployment.registry.store_partition_map("dlog", dict(self.groups))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(
        self,
        replica_count: int,
        acceptors_per_log: int,
        replica_cache_bytes: int,
        enable_recovery: bool,
    ) -> None:
        # Replicas host *all* logs (the paper's learners subscribe to every
        # ring in the vertical-scalability experiment).
        replica_names = [f"dlog-rep{i}" for i in range(replica_count)]
        for name in replica_names:
            state_machine = DLogStateMachine(
                logs=tuple(self.logs),
                cache_bytes=replica_cache_bytes,
                disk=self.world.new_store(StorageMode.ASYNC_SSD),
                synchronous_disk=False,
            )
            replica = Replica(
                self.world,
                self.deployment.registry,
                name,
                state_machine=state_machine,
                partition="dlog",
                config=self.config,
                monitor_series="dlog",
            )
            self.deployment.nodes[name] = replica
            self.replica_nodes.append(replica)

        all_acceptors: List[str] = []
        for log in self.logs:
            group = self.groups[log]
            acceptor_names = [f"{log}-acc{i}" for i in range(acceptors_per_log)]
            all_acceptors.extend(acceptor_names)
            self.deployment.add_ring(
                RingSpec(
                    group=group,
                    members=acceptor_names + replica_names,
                    acceptors=acceptor_names,
                    proposers=acceptor_names,
                    learners=replica_names,
                    storage_mode=self.storage_mode,
                ),
                ring_config=self._ring_config,
            )
            self.frontends[group] = acceptor_names
            for name in acceptor_names:
                ProposerFrontend(self.deployment.node(name), batching=self.batching)

        if self.use_global_ring:
            global_acceptors = [self.frontends[self.groups[log]][0] for log in self.logs]
            self.deployment.add_ring(
                RingSpec(
                    group=self.GLOBAL_GROUP,
                    members=global_acceptors + replica_names,
                    acceptors=global_acceptors,
                    proposers=global_acceptors,
                    learners=replica_names,
                    storage_mode=self.storage_mode,
                ),
                ring_config=self._ring_config,
            )
            self.frontends[self.GLOBAL_GROUP] = global_acceptors

        if enable_recovery:
            for replica in self.replica_nodes:
                disk = self.world.new_store(StorageMode.SYNC_SSD)
                replica.enable_recovery(self.recovery_config, checkpoint_disk=disk)
            # Acceptor side of the trim protocol (rounds run at ring coordinators,
            # TrimCommands executed by every acceptor).
            from repro.recovery.trimming import TrimProtocol

            for acceptor_name in set(all_acceptors):
                TrimProtocol(self.deployment.node(acceptor_name), self.recovery_config).start()

    # ------------------------------------------------------------------
    # client library (Table 2)
    # ------------------------------------------------------------------
    def _group_of(self, log: str) -> GroupId:
        try:
            return self.groups[log]
        except KeyError:
            raise ServiceError(f"unknown log {log!r}") from None

    def append(self, log: str, size: int, series: Optional[str] = None) -> Request:
        return Request(("append", log, size), 64 + size, self._group_of(log), 1, series)

    def multi_append(self, logs: Sequence[str], size: int, series: Optional[str] = None) -> Request:
        if not self.use_global_ring:
            raise ServiceError("multi-append needs the shared (global) ring")
        for log in logs:
            self._group_of(log)
        return Request(
            ("multi-append", tuple(logs), size),
            64 + size,
            self.GLOBAL_GROUP,
            1,
            series,
        )

    def read(self, log: str, position: int, series: Optional[str] = None) -> Request:
        return Request(("read", log, position), 72, self._group_of(log), 1, series)

    def trim(self, log: str, position: int, series: Optional[str] = None) -> Request:
        return Request(("trim", log, position), 72, self._group_of(log), 1, series)

    # ------------------------------------------------------------------
    # deployment access
    # ------------------------------------------------------------------
    def frontends_for_client(self, client_index: int = 0) -> Dict[GroupId, str]:
        mapping: Dict[GroupId, str] = {}
        for group, names in self.frontends.items():
            mapping[group] = names[client_index % len(names)]
        return mapping

    def open_loop_target(
        self,
        append_size: int = 1024,
        series: str = "openloop",
        client_index: int = 0,
    ):
        """A :class:`~repro.workloads.engine.ServiceTarget` over this dLog.

        Arrival-event key indices pick the destination log (modulo the log
        count) and become fixed-size appends -- the open-loop counterpart of
        :class:`~repro.workloads.simple.AppendWorkload`.
        """
        from repro.workloads.engine import ServiceTarget

        def _request(event):
            log = self.logs[event.key % len(self.logs)]
            return self.append(log, event.size_bytes or append_size, series=series)

        return ServiceTarget(
            request_for=_request,
            frontends=self.frontends_for_client(client_index),
        )

    def ring_disk_of(self, log: str, acceptor_index: int = 0):
        """The stable-storage device of one of a log's acceptors (Figure 6 metric)."""
        group = self._group_of(log)
        acceptor = self.frontends[group][acceptor_index]
        return self.deployment.ring_disk(group, acceptor)

    def start(self) -> None:
        self.world.start()
