"""The dLog replica state machine.

Each replica keeps, per log, the next append position, the total bytes ever
appended, and an in-memory cache of the most recent appends (200 MB in the
paper, Section 7.3); older data is flushed to the replica's disk
asynchronously.  Entry *contents* are not materialized -- an entry is its
position and size, which is all the benchmarks and consistency checks need.

Operations (Table 2) are tuples:

* ``("append", log, size)`` -- returns the position the entry was stored at,
* ``("multi-append", (log, ...), size)`` -- atomically appends to several logs
  and returns the per-log positions,
* ``("read", log, position)`` -- returns the entry's size, if still available,
* ``("trim", log, position)`` -- drops everything up to ``position``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.runtime.interfaces import StableStore
from repro.smr.state_machine import StateMachine
from repro.types import GroupId

__all__ = ["DLogStateMachine"]


class _Log:
    """Per-log bookkeeping."""

    __slots__ = ("next_position", "total_bytes", "trimmed_up_to", "entries")

    def __init__(self) -> None:
        self.next_position = 0
        self.total_bytes = 0
        self.trimmed_up_to = -1
        #: position -> size for entries still in the in-memory cache.
        self.entries: "OrderedDict[int, int]" = OrderedDict()


class DLogStateMachine(StateMachine):
    """Deterministic shared-log state machine."""

    def __init__(
        self,
        logs: Tuple[str, ...] = (),
        cache_bytes: int = 200 * 1024 * 1024,
        disk: Optional[StableStore] = None,
        synchronous_disk: bool = False,
    ) -> None:
        self._logs: Dict[str, _Log] = {name: _Log() for name in logs}
        self.cache_bytes = cache_bytes
        self.cached_bytes = 0
        self.disk = disk
        self.synchronous_disk = synchronous_disk
        self.operations = 0

    # ------------------------------------------------------------------
    # StateMachine interface
    # ------------------------------------------------------------------
    def execute(self, operation: Any, group: GroupId) -> Tuple[Any, int]:
        if not isinstance(operation, tuple) or not operation:
            raise ServiceError(f"malformed dLog operation: {operation!r}")
        self.operations += 1
        op = operation[0]
        if op == "append":
            return self._append(operation[1], operation[2])
        if op == "multi-append":
            return self._multi_append(tuple(operation[1]), operation[2])
        if op == "read":
            return self._read(operation[1], operation[2])
        if op == "trim":
            return self._trim(operation[1], operation[2])
        raise ServiceError(f"unknown dLog operation {op!r}")

    def snapshot(self) -> Tuple[Any, int]:
        state = {
            name: (log.next_position, log.total_bytes, log.trimmed_up_to, dict(log.entries))
            for name, log in self._logs.items()
        }
        size = sum(64 + sum(log.entries.values()) for log in self._logs.values())
        return state, max(64, size)

    def install(self, state: Any) -> None:
        self._logs = {}
        self.cached_bytes = 0
        if state is None:
            return
        for name, (next_position, total_bytes, trimmed, entries) in state.items():
            log = _Log()
            log.next_position = next_position
            log.total_bytes = total_bytes
            log.trimmed_up_to = trimmed
            log.entries = OrderedDict(sorted(entries.items()))
            self._logs[name] = log
            self.cached_bytes += sum(entries.values())

    def execution_cost_bytes(self, operation: Any) -> int:
        if isinstance(operation, tuple) and operation and operation[0] in ("append", "multi-append"):
            return int(operation[-1])
        return 32

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _log(self, name: str, create: bool = True) -> Optional[_Log]:
        log = self._logs.get(name)
        if log is None and create:
            log = _Log()
            self._logs[name] = log
        return log

    def _append_one(self, name: str, size: int) -> int:
        log = self._log(name)
        position = log.next_position
        log.next_position += 1
        log.total_bytes += size
        log.entries[position] = size
        self.cached_bytes += size
        self._evict_if_needed()
        if self.disk is not None:
            if self.synchronous_disk:
                self.disk.write(size)
            else:
                self.disk.write_async(size)
        return position

    def _append(self, name: str, size: int) -> Tuple[Any, int]:
        position = self._append_one(name, int(size))
        return ("appended", name, position), 16

    def _multi_append(self, names: Tuple[str, ...], size: int) -> Tuple[Any, int]:
        positions = {name: self._append_one(name, int(size)) for name in names}
        return ("appended", positions), 16 * max(1, len(names))

    def _read(self, name: str, position: int) -> Tuple[Any, int]:
        log = self._log(name, create=False)
        if log is None or position >= log.next_position or position <= log.trimmed_up_to:
            return ("miss", name, position), 16
        size = log.entries.get(position)
        if size is None:
            # Evicted from the cache: served from disk in the real system.
            if self.disk is not None:
                self.disk.read(1024)
            return ("value", name, position), 1024
        return ("value", name, position), size

    def _trim(self, name: str, position: int) -> Tuple[Any, int]:
        log = self._log(name, create=False)
        if log is None:
            return ("miss", name, position), 16
        log.trimmed_up_to = max(log.trimmed_up_to, position)
        for existing in [p for p in log.entries if p <= position]:
            self.cached_bytes -= log.entries.pop(existing)
        return ("trimmed", name, position), 16

    def _evict_if_needed(self) -> None:
        """Drop the oldest cached entries once the 200 MB cache overflows."""
        while self.cached_bytes > self.cache_bytes:
            for log in self._logs.values():
                if log.entries:
                    _position, size = log.entries.popitem(last=False)
                    self.cached_bytes -= size
                    break
            else:
                break

    # ------------------------------------------------------------------
    # inspection helpers
    # ------------------------------------------------------------------
    def logs(self) -> Tuple[str, ...]:
        return tuple(sorted(self._logs))

    def next_position(self, name: str) -> int:
        log = self._logs.get(name)
        return log.next_position if log is not None else 0

    def total_bytes(self, name: str) -> int:
        log = self._logs.get(name)
        return log.total_bytes if log is not None else 0
