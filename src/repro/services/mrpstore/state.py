"""The MRP-Store replica state machine.

Each replica keeps its partition's entries in an in-memory ordered tree
(Section 7.2: "database entries are stored in an in-memory tree at every
replica").  The simulator does not materialize real values: an entry is its
key plus the value's size and a version counter, which is all the timing
model and the consistency checks need.

Operations (Table 1) are tuples:

* ``("read", key)``
* ``("scan", start_key, end_key)``
* ``("update", key, value_size)``
* ``("insert", key, value_size)``
* ``("delete", key)``
* ``("rmw", key, value_size)`` -- read-modify-write, used by YCSB workload F.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.services.mrpstore.partitioning import PartitionMap
from repro.smr.state_machine import StateMachine
from repro.types import GroupId

__all__ = ["MRPStoreStateMachine"]

#: Approximate per-entry metadata overhead when sizing snapshots.
_ENTRY_OVERHEAD_BYTES = 48


class MRPStoreStateMachine(StateMachine):
    """Deterministic key-value state machine for one partition's replicas."""

    def __init__(self, partition: str, partition_map: PartitionMap) -> None:
        self.partition = partition
        self.partition_map = partition_map
        # Sorted key list plus a dict for O(log n) scans and O(1) point access.
        self._keys: List[str] = []
        self._entries: Dict[str, Tuple[int, int]] = {}  # key -> (value_size, version)
        self.operations = 0

    # ------------------------------------------------------------------
    # StateMachine interface
    # ------------------------------------------------------------------
    def execute(self, operation: Any, group: GroupId) -> Tuple[Any, int]:
        if not isinstance(operation, tuple) or not operation:
            raise ServiceError(f"malformed MRP-Store operation: {operation!r}")
        self.operations += 1
        op = operation[0]
        if op == "read":
            return self._read(operation[1])
        if op == "scan":
            return self._scan(operation[1], operation[2])
        if op == "update":
            return self._update(operation[1], operation[2])
        if op == "insert":
            return self._insert(operation[1], operation[2])
        if op == "delete":
            return self._delete(operation[1])
        if op == "rmw":
            self._read(operation[1])
            return self._update(operation[1], operation[2])
        raise ServiceError(f"unknown MRP-Store operation {op!r}")

    def snapshot(self) -> Tuple[Any, int]:
        state = {
            "entries": dict(self._entries),
            # The partition-map epoch is part of the replica state: a replica
            # recovering from this checkpoint must route/own exactly the key
            # ranges it owned when the checkpoint was taken (reconfiguration
            # commands replayed above the cursor then bring it up to date).
            "partition_map": self.partition_map,
        }
        size = sum(
            len(key) + value_size + _ENTRY_OVERHEAD_BYTES
            for key, (value_size, _version) in self._entries.items()
        )
        return state, size

    def install(self, state: Any) -> None:
        if state is None:
            self._entries = {}
            self._keys = []
            return
        if isinstance(state, dict) and "entries" in state and "partition_map" in state:
            self._entries = dict(state["entries"])
            self.partition_map = state["partition_map"]
        else:  # pre-reconfig snapshot format: a bare entries dict
            self._entries = dict(state)
        self._keys = sorted(self._entries)

    def execution_cost_bytes(self, operation: Any) -> int:
        # Point operations are cheap; scans touch every matching entry.
        if isinstance(operation, tuple) and operation and operation[0] == "scan":
            return 1024
        return 64

    # ------------------------------------------------------------------
    # reconfiguration support
    # ------------------------------------------------------------------
    def set_partition_map(self, partition_map: PartitionMap) -> None:
        """Adopt a newer partition-map version (stale versions are ignored)."""
        if partition_map.version < self.partition_map.version:
            return
        self.partition_map = partition_map

    def extract_owned_by(self, new_map: PartitionMap, partition: str) -> Dict[str, Tuple[int, int]]:
        """Remove and return every entry that ``partition`` owns under ``new_map``.

        This is the source side of a key-range handoff: called at the agreed
        migration point, it is a deterministic function of the replica state,
        so all source replicas extract exactly the same entries.
        """
        moved = {
            key: entry
            for key, entry in self._entries.items()
            if new_map.partition_of(key) == partition
        }
        for key in moved:
            del self._entries[key]
        self._keys = sorted(self._entries)
        return moved

    def absorb_entries(self, entries: Dict[str, Tuple[int, int]]) -> None:
        """Install migrated entries (value sizes and versions are preserved)."""
        for key, (value_size, version) in entries.items():
            self._entries[key] = (int(value_size), int(version))
        self._keys = sorted(self._entries)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _owns(self, key: str) -> bool:
        return self.partition_map.owns(self.partition, key)

    def _read(self, key: str) -> Tuple[Any, int]:
        if not self._owns(key):
            # Delivered through the global group but owned elsewhere: stay
            # silent, the owning partition's replicas answer.
            return None, 0
        entry = self._entries.get(key)
        if entry is None:
            return ("miss", key), 16
        value_size, version = entry
        return ("value", key, version), value_size

    def _scan(self, start_key: str, end_key: str) -> Tuple[Any, int]:
        low = bisect.bisect_left(self._keys, start_key)
        high = bisect.bisect_right(self._keys, end_key)
        matched = self._keys[low:high]
        total = sum(self._entries[key][0] for key in matched)
        return ("scan", self.partition, len(matched)), max(16, total)

    def _update(self, key: str, value_size: int) -> Tuple[Any, int]:
        if not self._owns(key):
            return None, 0
        entry = self._entries.get(key)
        if entry is None:
            return ("miss", key), 16
        _old_size, version = entry
        self._entries[key] = (int(value_size), version + 1)
        return ("ok", key, version + 1), 16

    def _insert(self, key: str, value_size: int) -> Tuple[Any, int]:
        if not self._owns(key):
            return None, 0
        if key not in self._entries:
            bisect.insort(self._keys, key)
            self._entries[key] = (int(value_size), 1)
        else:
            version = self._entries[key][1]
            self._entries[key] = (int(value_size), version + 1)
        return ("ok", key, 1), 16

    def _delete(self, key: str) -> Tuple[Any, int]:
        if not self._owns(key):
            return None, 0
        if key in self._entries:
            del self._entries[key]
            index = bisect.bisect_left(self._keys, key)
            if index < len(self._keys) and self._keys[index] == key:
                del self._keys[index]
            return ("ok", key, 0), 16
        return ("miss", key), 16

    # ------------------------------------------------------------------
    # inspection helpers (used by tests and examples)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, key: str) -> bool:
        return key in self._entries

    def version_of(self, key: str) -> Optional[int]:
        entry = self._entries.get(key)
        return entry[1] if entry is not None else None

    def value_size_of(self, key: str) -> Optional[int]:
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def keys(self) -> List[str]:
        return list(self._keys)
