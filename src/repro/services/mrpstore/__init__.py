"""MRP-Store: a strongly consistent, partitioned key-value store (Section 6.1)."""

from repro.services.mrpstore.partitioning import PartitionMap
from repro.services.mrpstore.state import MRPStoreStateMachine
from repro.services.mrpstore.service import MRPStore

__all__ = ["PartitionMap", "MRPStoreStateMachine", "MRPStore"]
