"""MRP-Store deployment builder and client library.

This module wires a complete MRP-Store deployment on top of
:class:`~repro.multiring.deployment.Deployment`:

* one Ring Paxos ring per partition, with its acceptor/proposer nodes and its
  replicas (the learners),
* optionally a *global* ring that every replica subscribes to, carrying
  cross-partition commands (scans under hash partitioning); disabling it gives
  the paper's "independent rings" configuration, which orders commands within
  partitions only,
* proposer front-ends on the acceptor nodes (clients connect to them), with
  optional 32 KB command batching,
* a client library translating Table 1 operations into
  :class:`~repro.smr.client.Request` objects routed to the right group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import BatchingConfig, MultiRingConfig, RecoveryConfig
from repro.errors import ConfigurationError, CoordinationError, ServiceError
from repro.multiring.deployment import Deployment, RingSpec
from repro.reconfig.migration import MigrationAgent
from repro.runtime.interfaces import Runtime, StableStore, StorageMode
from repro.smr.client import Request
from repro.smr.command import Command
from repro.smr.frontend import ProposerFrontend
from repro.smr.replica import Replica
from repro.services.mrpstore.partitioning import PartitionMap
from repro.services.mrpstore.state import MRPStoreStateMachine
from repro.types import GroupId

__all__ = ["MRPStore"]

#: Registry key under which the store's partition map is published.
SERVICE_NAME = "mrp-store"

#: Single-key operations: ``(op, key, ...)``.
_POINT_OPS = ("read", "update", "insert", "delete", "rmw")


@dataclass
class _Partition:
    name: str
    group: GroupId
    acceptors: List[str]
    replicas: List[Replica]
    frontends: List[ProposerFrontend]


class MRPStore:
    """A complete, runnable MRP-Store deployment."""

    GLOBAL_GROUP: GroupId = "ring-global"

    def __init__(
        self,
        world: Runtime,
        partitions: int = 3,
        replicas_per_partition: int = 3,
        acceptors_per_partition: int = 3,
        use_global_ring: bool = True,
        scheme: str = "hash",
        storage_mode: StorageMode = StorageMode.ASYNC_SSD,
        config: Optional[MultiRingConfig] = None,
        recovery_config: Optional[RecoveryConfig] = None,
        batching: Optional[BatchingConfig] = None,
        coordinator_batching: Optional[BatchingConfig] = None,
        pipeline_depth: Optional[int] = None,
        partition_sites: Optional[Dict[str, str]] = None,
        enable_recovery: bool = False,
        key_space: int = 100000,
        rings: Optional[int] = None,
    ) -> None:
        if partitions < 1:
            raise ConfigurationError("MRP-Store needs at least one partition")
        if rings is not None and not 1 <= rings <= partitions:
            raise ConfigurationError(
                "the ring count must be between 1 and the partition count"
            )
        self.world = world
        self.config = config or MultiRingConfig.datacenter()
        self.recovery_config = recovery_config or RecoveryConfig()
        self.batching = batching or BatchingConfig(enabled=False)
        self.use_global_ring = use_global_ring
        self.storage_mode = storage_mode
        self.key_space = key_space
        self.enable_recovery = enable_recovery
        # Per-ring protocol configuration: coordinator-side batching and the
        # pipelined instance window (None keeps the MultiRingConfig defaults).
        self._ring_config = self.config.ring.with_storage(storage_mode)
        if coordinator_batching is not None:
            self._ring_config = self._ring_config.with_batching(coordinator_batching)
        if pipeline_depth is not None:
            self._ring_config = self._ring_config.with_pipeline_depth(pipeline_depth)
        self.deployment = Deployment(world, self.config)

        partition_names = [f"p{i}" for i in range(partitions)]
        # With fewer rings than partitions, contiguous blocks of partitions
        # share a ring (the elastic starting point: e.g. 2 partitions on one
        # ring, later migrated apart by the reconfiguration subsystem).
        ring_count = partitions if rings is None else rings
        if ring_count == partitions:
            groups = {name: f"ring-{name}" for name in partition_names}
        else:
            groups = {
                name: f"ring-g{index * ring_count // partitions}"
                for index, name in enumerate(partition_names)
            }
        if scheme == "range":
            bounds = tuple(
                self._key(int(self.key_space * (i + 1) / partitions))
                for i in range(partitions - 1)
            )
            self.partition_map = PartitionMap.ranged(
                partition_names,
                groups,
                bounds,
                global_group=self.GLOBAL_GROUP if use_global_ring else None,
            )
        else:
            self.partition_map = PartitionMap.hashed(
                partition_names,
                groups,
                global_group=self.GLOBAL_GROUP if use_global_ring else None,
            )

        self.partitions: Dict[str, _Partition] = {}
        self._build(
            partition_names,
            replicas_per_partition,
            acceptors_per_partition,
            partition_sites or {},
            enable_recovery,
        )
        self.deployment.registry.store_partition_map("mrp-store", self.partition_map)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(
        self,
        partition_names: Sequence[str],
        replicas_per_partition: int,
        acceptors_per_partition: int,
        partition_sites: Dict[str, str],
        enable_recovery: bool,
    ) -> None:
        global_members: List[str] = []
        global_acceptors: List[str] = []
        global_learners: List[str] = []

        # Partitions sharing a multicast group share that group's ring (its
        # acceptors order commands for all of them; every replica of every
        # partition on the ring learns them and filters by ownership).
        group_partitions: Dict[GroupId, List[str]] = {}
        for partition_name in partition_names:
            group = self.partition_map.group_of_partition(partition_name)
            group_partitions.setdefault(group, []).append(partition_name)

        for group, names in group_partitions.items():
            site = partition_sites.get(names[0])
            prefix = names[0] if len(names) == 1 else group
            acceptor_names = [f"{prefix}-acc{i}" for i in range(acceptors_per_partition)]

            # Replica nodes must exist before the ring is added so we can use
            # the Replica subclass (the deployment would otherwise create
            # plain MultiRingNode learners).
            ring_replica_names: List[str] = []
            partition_replicas: Dict[str, List[Replica]] = {}
            for partition_name in names:
                replicas: List[Replica] = []
                for index in range(replicas_per_partition):
                    replica_name = f"{partition_name}-rep{index}"
                    state_machine = MRPStoreStateMachine(partition_name, self.partition_map)
                    replica = Replica(
                        self.world,
                        self.deployment.registry,
                        replica_name,
                        state_machine=state_machine,
                        partition=partition_name,
                        config=self.config,
                        site=site,
                        monitor_series=partition_name,
                    )
                    self.deployment.nodes[replica_name] = replica
                    MigrationAgent(replica, service=SERVICE_NAME)
                    replicas.append(replica)
                    ring_replica_names.append(replica_name)
                partition_replicas[partition_name] = replicas

            for acceptor_name in acceptor_names:
                self.deployment.add_node(acceptor_name, site=site)

            members = acceptor_names + ring_replica_names
            self.deployment.add_ring(
                RingSpec(
                    group=group,
                    members=members,
                    acceptors=acceptor_names,
                    proposers=acceptor_names,
                    learners=ring_replica_names,
                    storage_mode=self.storage_mode,
                ),
                sites={name: site for name in members} if site else None,
                ring_config=self._ring_config,
            )

            frontends = [
                ProposerFrontend(
                    self.deployment.node(name),
                    batching=self.batching,
                    router=self.route_by_epoch,
                )
                for name in acceptor_names
            ]
            for partition_name in names:
                self.partitions[partition_name] = _Partition(
                    name=partition_name,
                    group=group,
                    acceptors=acceptor_names,
                    replicas=partition_replicas[partition_name],
                    frontends=frontends,
                )

            global_members.append(acceptor_names[0])
            global_acceptors.append(acceptor_names[0])
            global_learners.extend(ring_replica_names)

        if self.use_global_ring:
            self.deployment.add_ring(
                RingSpec(
                    group=self.GLOBAL_GROUP,
                    members=global_members + global_learners,
                    acceptors=global_acceptors,
                    proposers=global_acceptors,
                    learners=global_learners,
                    storage_mode=self.storage_mode,
                ),
                ring_config=self._ring_config,
            )

        if enable_recovery:
            for partition in self.partitions.values():
                for replica in partition.replicas:
                    disk = self.world.new_store(StorageMode.SYNC_SSD)
                    replica.enable_recovery(self.recovery_config, checkpoint_disk=disk)
            # The trim protocol also needs the acceptor side: ring coordinators
            # run the periodic trim rounds and every acceptor executes the
            # resulting TrimCommand against its stable log.
            from repro.recovery.trimming import TrimProtocol

            for partition in self.partitions.values():
                for acceptor_name in partition.acceptors:
                    TrimProtocol(self.deployment.node(acceptor_name), self.recovery_config).start()

    # ------------------------------------------------------------------
    # reconfiguration support
    # ------------------------------------------------------------------
    @property
    def current_map(self) -> PartitionMap:
        """The latest partition-map version published in the registry.

        Falls back to the construction-time map when nothing is published
        (cannot happen after ``__init__``, but keeps the property total).
        """
        try:
            return self.deployment.registry.partition_map(SERVICE_NAME)
        except CoordinationError:
            return self.partition_map

    def route_by_epoch(self, command: Command, group: GroupId) -> GroupId:
        """Front-end router: correct a stale target group for point operations."""
        operation = command.operation
        if (
            isinstance(operation, tuple)
            and len(operation) >= 2
            and operation[0] in _POINT_OPS
            and isinstance(operation[1], str)
        ):
            return self.current_map.group_of_key(operation[1])
        return group

    def register_partition(
        self,
        name: str,
        group: GroupId,
        acceptors: List[str],
        replicas: List[Replica],
        frontends: List[ProposerFrontend],
    ) -> None:
        """Attach a partition added at runtime (elastic scale-out)."""
        if name in self.partitions:
            raise ServiceError(f"partition {name!r} already exists")
        self.partitions[name] = _Partition(
            name=name, group=group, acceptors=list(acceptors), replicas=list(replicas),
            frontends=list(frontends),
        )

    # ------------------------------------------------------------------
    # key helpers
    # ------------------------------------------------------------------
    def _key(self, index: int) -> str:
        return f"user{index:012d}"

    def key(self, index: int) -> str:
        """The canonical key for record ``index`` (YCSB-style ``userNNN`` keys)."""
        return self._key(index)

    # ------------------------------------------------------------------
    # data loading (bypasses consensus, used to pre-populate the database)
    # ------------------------------------------------------------------
    def load(self, record_count: int, value_size: int = 1024) -> None:
        """Populate every replica with ``record_count`` records of ``value_size`` bytes."""
        for index in range(record_count):
            key = self._key(index)
            partition_name = self.current_map.partition_of(key)
            for replica in self.partitions[partition_name].replicas:
                replica.state_machine.execute(("insert", key, value_size), "load")

    # ------------------------------------------------------------------
    # client library (Table 1)
    # ------------------------------------------------------------------
    def read(self, key: str, series: Optional[str] = None) -> Request:
        return Request(("read", key), 64 + len(key), self.current_map.group_of_key(key), 1, series)

    def update(self, key: str, value_size: int, series: Optional[str] = None) -> Request:
        return Request(
            ("update", key, value_size),
            64 + len(key) + value_size,
            self.current_map.group_of_key(key),
            1,
            series,
        )

    def insert(self, key: str, value_size: int, series: Optional[str] = None) -> Request:
        return Request(
            ("insert", key, value_size),
            64 + len(key) + value_size,
            self.current_map.group_of_key(key),
            1,
            series,
        )

    def delete(self, key: str, series: Optional[str] = None) -> Request:
        return Request(("delete", key), 64 + len(key), self.current_map.group_of_key(key), 1, series)

    def read_modify_write(self, key: str, value_size: int, series: Optional[str] = None) -> Request:
        return Request(
            ("rmw", key, value_size),
            64 + len(key) + value_size,
            self.current_map.group_of_key(key),
            1,
            series,
        )

    def scan(self, start_key: str, end_key: str, series: Optional[str] = None) -> Request:
        group, expected = self.current_map.scan_group(start_key, end_key)
        return Request(("scan", start_key, end_key), 96 + len(start_key), group, expected, series)

    # ------------------------------------------------------------------
    # deployment access
    # ------------------------------------------------------------------
    def frontends_for_client(self, client_index: int = 0) -> Dict[GroupId, str]:
        """A group -> front-end-node mapping for one client (spread round-robin)."""
        mapping: Dict[GroupId, str] = {}
        for partition in self.partitions.values():
            mapping[partition.group] = partition.acceptors[client_index % len(partition.acceptors)]
        if self.use_global_ring:
            # Cross-partition commands can be submitted through any partition's
            # first acceptor (they are all proposers of the global ring).
            names = [p.acceptors[0] for p in self.partitions.values()]
            mapping[self.GLOBAL_GROUP] = names[client_index % len(names)]
        return mapping

    def open_loop_target(
        self,
        value_size: int = 1024,
        series: str = "openloop",
        client_index: int = 0,
    ):
        """A :class:`~repro.workloads.engine.ServiceTarget` over this store.

        Arrival-event key indices map to canonical store keys and become
        update requests; the target re-reads the frontend map on a routing
        miss, so open-loop traffic follows elastic re-partitioning (new
        partitions appear mid-run) without a restart.
        """
        from repro.workloads.engine import ServiceTarget

        def _request(event):
            key = self.key(event.key % self.key_space)
            size = event.size_bytes or value_size
            if event.op == "read":
                return self.read(key, series=series)
            return self.update(key, size, series=series)

        return ServiceTarget(
            request_for=_request,
            frontends=self.frontends_for_client(client_index),
            refresh=lambda: self.frontends_for_client(client_index),
        )

    def all_replicas(self) -> List[Replica]:
        return [replica for partition in self.partitions.values() for replica in partition.replicas]

    def replicas_of(self, partition: str) -> List[Replica]:
        try:
            return list(self.partitions[partition].replicas)
        except KeyError:
            raise ServiceError(f"unknown partition {partition!r}") from None

    def groups(self) -> List[GroupId]:
        groups = [partition.group for partition in self.partitions.values()]
        if self.use_global_ring:
            groups.append(self.GLOBAL_GROUP)
        return groups

    def start(self) -> None:
        self.world.start()
