"""Partitioning schemes for MRP-Store.

Section 6.1: *"The database is divided into l partitions P0 ... Pl such that
each partition Pi is responsible for a subset of keys in the key space.
Applications can decide whether the data is hash- or range-partitioned, and
clients must know the partitioning scheme."*  The scheme is stored in the
coordination registry (Zookeeper in the paper) so every client and replica can
evaluate it locally.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PartitioningError
from repro.types import GroupId

__all__ = ["PartitionMap"]


@dataclass(frozen=True)
class PartitionMap:
    """Maps keys (strings) to partitions and partitions to multicast groups.

    ``scheme`` is ``"hash"`` or ``"range"``.  With range partitioning the key
    space is split lexicographically into equal slices over ``range_min`` /
    ``range_max`` prefixes; with hash partitioning a key's partition is a hash
    of the key modulo the partition count.
    """

    partitions: Tuple[str, ...]
    groups: Dict[str, GroupId]
    scheme: str = "hash"
    #: Sorted upper bounds (exclusive) for range partitioning, one per
    #: partition except the last (which is unbounded).
    range_bounds: Tuple[str, ...] = ()
    #: Group carrying cross-partition commands, or ``None`` when the
    #: deployment runs "independent rings" (no global ordering).
    global_group: Optional[GroupId] = None
    #: Epoch of the partitioning schema.  Bumped by every reconfiguration
    #: (:meth:`split_partition`); replicas checkpoint it with their state and
    #: front-ends route by the latest version published in the registry.
    version: int = 0

    def __post_init__(self) -> None:
        if not self.partitions:
            raise PartitioningError("a partition map needs at least one partition")
        if self.scheme not in ("hash", "range"):
            raise PartitioningError(f"unknown partitioning scheme {self.scheme!r}")
        for partition in self.partitions:
            if partition not in self.groups:
                raise PartitioningError(f"partition {partition!r} has no multicast group")
        if self.scheme == "range" and len(self.range_bounds) != len(self.partitions) - 1:
            raise PartitioningError(
                "range partitioning needs exactly len(partitions) - 1 bounds"
            )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def hashed(
        cls,
        partitions: Sequence[str],
        groups: Dict[str, GroupId],
        global_group: Optional[GroupId] = None,
    ) -> "PartitionMap":
        return cls(tuple(partitions), dict(groups), "hash", (), global_group)

    @classmethod
    def ranged(
        cls,
        partitions: Sequence[str],
        groups: Dict[str, GroupId],
        bounds: Sequence[str],
        global_group: Optional[GroupId] = None,
    ) -> "PartitionMap":
        return cls(tuple(partitions), dict(groups), "range", tuple(bounds), global_group)

    # ------------------------------------------------------------------
    # reconfiguration (elastic re-partitioning)
    # ------------------------------------------------------------------
    def partition_range(self, partition: str) -> Tuple[str, Optional[str]]:
        """``[lower, upper)`` key range of ``partition`` (range scheme only)."""
        if self.scheme != "range":
            raise PartitioningError("only range-partitioned maps have key ranges")
        try:
            index = self.partitions.index(partition)
        except ValueError:
            raise PartitioningError(f"unknown partition {partition!r}") from None
        lower = self.range_bounds[index - 1] if index > 0 else ""
        upper = self.range_bounds[index] if index < len(self.range_bounds) else None
        return lower, upper

    def split_partition(
        self,
        source: str,
        split_key: str,
        new_partition: str,
        new_group: GroupId,
    ) -> "PartitionMap":
        """The next map version: ``[split_key, upper)`` of ``source`` moves to
        ``new_partition`` on ``new_group``.

        Only range-partitioned maps support key-range migration (hash
        partitioning would remap nearly every key when the partition count
        changes).  The new partition is inserted right after the source so the
        bounds stay sorted; the version is bumped by one.
        """
        if self.scheme != "range":
            raise PartitioningError(
                "only range-partitioned maps support key-range migration"
            )
        if new_partition in self.partitions:
            raise PartitioningError(f"partition {new_partition!r} already exists")
        lower, upper = self.partition_range(source)
        if split_key <= lower or (upper is not None and split_key >= upper):
            raise PartitioningError(
                f"split key {split_key!r} is outside the range of {source!r} "
                f"([{lower!r}, {upper!r}))"
            )
        index = self.partitions.index(source)
        partitions = (
            self.partitions[: index + 1] + (new_partition,) + self.partitions[index + 1 :]
        )
        bounds = self.range_bounds[:index] + (split_key,) + self.range_bounds[index:]
        groups = dict(self.groups)
        groups[new_partition] = new_group
        return PartitionMap(
            partitions, groups, "range", bounds, self.global_group, self.version + 1
        )

    # ------------------------------------------------------------------
    # key routing
    # ------------------------------------------------------------------
    def partition_of(self, key: str) -> str:
        """The partition responsible for ``key``."""
        if self.scheme == "hash":
            digest = hashlib.md5(key.encode("utf-8")).digest()
            index = int.from_bytes(digest[:4], "big") % len(self.partitions)
            return self.partitions[index]
        for index, bound in enumerate(self.range_bounds):
            if key < bound:
                return self.partitions[index]
        return self.partitions[-1]

    def group_of_key(self, key: str) -> GroupId:
        """The multicast group a single-key command on ``key`` must be sent to."""
        return self.groups[self.partition_of(key)]

    def group_of_partition(self, partition: str) -> GroupId:
        try:
            return self.groups[partition]
        except KeyError:
            raise PartitioningError(f"unknown partition {partition!r}") from None

    def partitions_for_scan(self, start_key: str, end_key: str) -> List[str]:
        """Partitions that may hold keys in ``[start_key, end_key]``.

        With hash partitioning every partition may hold matching keys; with
        range partitioning only the slices overlapping the interval do
        (Section 6.1).
        """
        if self.scheme == "hash":
            return list(self.partitions)
        result: List[str] = []
        lower_bounds = ("",) + self.range_bounds
        upper_bounds = self.range_bounds + (None,)
        for partition, low, high in zip(self.partitions, lower_bounds, upper_bounds):
            if high is not None and start_key >= high:
                continue
            if end_key < low:
                continue
            result.append(partition)
        return result

    def scan_group(self, start_key: str, end_key: str) -> Tuple[GroupId, int]:
        """The group a scan is multicast to, and how many partition responses to expect.

        With a global group, scans are multicast once to it and every involved
        partition responds.  Without one ("independent rings"), the caller must
        issue one command per involved partition instead; this method then
        returns the first involved partition's group with a single expected
        response, and :meth:`partitions_for_scan` enumerates the rest.
        """
        involved = self.partitions_for_scan(start_key, end_key)
        if self.global_group is not None:
            return self.global_group, len(involved)
        return self.groups[involved[0]], 1

    def owns(self, partition: str, key: str) -> bool:
        """Does ``partition`` store ``key``?"""
        return self.partition_of(key) == partition
