"""Documentation link checker: ``python -m repro.docscheck``.

Walks the repo's markdown (README.md, CONTRIBUTING.md, docs/) and fails on:

* **dead intra-repo links** — ``[text](relative/path)`` whose target file
  does not exist, or whose ``#anchor`` matches no heading in the target
  (external ``http(s)://``/``mailto:`` links are not fetched);
* **references to deleted modules** — inline ``repro.foo.bar`` dotted names
  that no longer resolve to a module, package, or attribute of one under
  ``src/repro``.

The CI docs job runs this over the checkout; ``tests/test_docs.py`` runs
the same checks as part of tier 1, so a PR that deletes a module or a docs
page cannot leave a dangling reference behind.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable

__all__ = ["check_file", "check_tree", "github_slug", "main"]

# [text](target) — target up to the first closing paren (no nested parens
# in our docs); images share the syntax via a leading ! which we ignore.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Dotted module references such as ``repro.bench.analytics`` in prose or
# code blocks.  A trailing dotted segment may be an attribute (class or
# function) of the last resolvable module.
_MODULE_REF = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _strip_fences(text: str) -> str:
    """Remove fenced code blocks (their '#' lines are not headings)."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def _anchors_of(path: Path) -> set[str]:
    text = _strip_fences(path.read_text(encoding="utf-8"))
    return {github_slug(m.group(1)) for m in _HEADING.finditer(text)}


def _module_resolves(dotted: str, src: Path) -> bool:
    parts = dotted.split(".")[1:]  # drop the leading "repro"
    node = src / "repro"
    for index, part in enumerate(parts):
        if (node / part).is_dir():
            node = node / part
        elif (node / f"{part}.py").is_file():
            node = node / f"{part}.py"
        else:
            # Unresolved tail: allowed only for a single final component
            # hanging off a module/package we did resolve (an attribute).
            return index == len(parts) - 1
    return True


def check_file(path: Path, repo_root: Path) -> list[str]:
    """Return human-readable problems found in one markdown file."""
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(repo_root)

    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        base, _, anchor = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if not dest.exists():
            problems.append(f"{rel}: dead link -> {target}")
            continue
        if anchor and dest.suffix == ".md" and anchor not in _anchors_of(dest):
            problems.append(f"{rel}: missing anchor -> {target}")

    src = repo_root / "src"
    for dotted in sorted({m.group(0) for m in _MODULE_REF.finditer(text)}):
        if not _module_resolves(dotted, src):
            problems.append(f"{rel}: reference to missing module -> {dotted}")
    return problems


def default_files(repo_root: Path) -> list[Path]:
    files = [repo_root / "README.md", repo_root / "CONTRIBUTING.md"]
    files.extend(sorted((repo_root / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_tree(repo_root: Path, files: Iterable[Path] | None = None) -> list[str]:
    problems: list[str] = []
    for path in files if files is not None else default_files(repo_root):
        problems.extend(check_file(path, repo_root))
    return problems


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    repo_root = Path(args[0]).resolve() if args else Path.cwd()
    files = default_files(repo_root)
    problems = check_tree(repo_root, files)
    for problem in problems:
        print(problem)
    print(f"checked {len(files)} files: {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
