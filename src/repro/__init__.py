"""Reproduction of *Building global and scalable systems with Atomic Multicast*.

The library implements the paper's full stack on a deterministic
discrete-event simulator:

* :mod:`repro.sim` -- the simulation substrate (network, disks, CPUs, failures);
* :mod:`repro.paxos`, :mod:`repro.ringpaxos` -- the consensus substrate and
  Ring Paxos atomic broadcast;
* :mod:`repro.multiring` -- Multi-Ring Paxos atomic multicast (the paper's
  primary contribution): deterministic merge and rate leveling;
* :mod:`repro.recovery` -- checkpointing, acceptor-log trimming and replica
  recovery;
* :mod:`repro.smr` -- state-machine replication, clients and front-ends;
* :mod:`repro.services` -- MRP-Store (key-value store) and dLog (shared log);
* :mod:`repro.baselines` -- the Cassandra/MySQL/Bookkeeper-like comparators;
* :mod:`repro.workloads` -- YCSB and the paper's other load generators;
* :mod:`repro.bench` -- the harness regenerating every figure of Section 8.
"""

from repro.config import BatchingConfig, MultiRingConfig, RecoveryConfig, RingConfig
from repro.errors import ReproError
from repro.multiring import Deployment, MultiRingNode, RingSpec
from repro.sim import World
from repro.sim.disk import StorageMode
from repro.types import Value

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "World",
    "StorageMode",
    "Value",
    "ReproError",
    "MultiRingConfig",
    "RingConfig",
    "RecoveryConfig",
    "BatchingConfig",
    "Deployment",
    "RingSpec",
    "MultiRingNode",
]
