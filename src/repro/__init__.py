"""Reproduction of *Building global and scalable systems with Atomic Multicast*.

The library implements the paper's full stack behind a runtime abstraction
layer (:mod:`repro.runtime`) with two backends -- the deterministic
discrete-event simulator and a live asyncio/TCP runtime:

* :mod:`repro.api` -- the public entry point: backend-agnostic deployments
  (:class:`~repro.api.AtomicMulticast`);
* :mod:`repro.runtime` -- the runtime interfaces (Clock, Transport,
  StableStore, Runtime), the actor base class, the wire codec and the live
  TCP backend;
* :mod:`repro.sim` -- the simulation substrate (network, disks, CPUs, failures);
* :mod:`repro.paxos`, :mod:`repro.ringpaxos` -- the consensus substrate and
  Ring Paxos atomic broadcast;
* :mod:`repro.multiring` -- Multi-Ring Paxos atomic multicast (the paper's
  primary contribution): deterministic merge and rate leveling;
* :mod:`repro.recovery` -- checkpointing, acceptor-log trimming and replica
  recovery;
* :mod:`repro.smr` -- state-machine replication, clients and front-ends;
* :mod:`repro.services` -- MRP-Store (key-value store) and dLog (shared log);
* :mod:`repro.baselines` -- the Cassandra/MySQL/Bookkeeper-like comparators;
* :mod:`repro.workloads` -- YCSB and the paper's other load generators;
* :mod:`repro.bench` -- the harness regenerating every figure of Section 8;
* :mod:`repro.live` -- the launcher running deployments over real TCP.
"""

from repro.api import AtomicMulticast
from repro.config import BatchingConfig, MultiRingConfig, RecoveryConfig, RingConfig
from repro.errors import ReproError
from repro.multiring import Deployment, MultiRingNode, RingSpec
from repro.runtime import StorageMode
from repro.sim import World
from repro.types import Value

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AtomicMulticast",
    "World",
    "StorageMode",
    "Value",
    "ReproError",
    "MultiRingConfig",
    "RingConfig",
    "RecoveryConfig",
    "BatchingConfig",
    "Deployment",
    "RingSpec",
    "MultiRingNode",
]
