"""Configuration objects for Multi-Ring Paxos and the experiments.

The paper's Section 8.2 gives two reference configurations:

* within a datacenter: ``M = 1``, ``Δ = 5 ms``, ``λ = 9000`` messages/second,
* across datacenters: ``M = 1``, ``Δ = 20 ms``, ``λ = 2000`` messages/second.

Both are provided as constructors on :class:`MultiRingConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.runtime.cpu import CPUConfig
from repro.runtime.interfaces import StorageMode

__all__ = ["RingConfig", "MultiRingConfig", "RecoveryConfig", "BatchingConfig"]


@dataclass(frozen=True)
class BatchingConfig:
    """Batching of application commands into consensus values.

    Used in two places:

    * client-side: proposer front-ends batch small commands into packets of
      up to 32 KB before submitting them to Multi-Ring Paxos (Sections 7.2,
      8.4) -- only the byte cap and the flush delay apply there;
    * coordinator-side: when :attr:`RingConfig.batching` is enabled, the ring
      coordinator packs multiple proposed values into one Paxos instance
      (URingPaxos amortizes per-instance protocol cost this way).  The batch
      flushes when it reaches ``max_batch_values`` values or
      ``max_batch_bytes`` bytes, or ``max_batch_delay`` seconds after the
      first value entered the batch, whichever comes first.
    """

    enabled: bool = False
    max_batch_bytes: int = 32 * 1024
    max_batch_delay: float = 1e-3
    #: Maximum number of values packed into one consensus instance
    #: (coordinator-side batching only).
    max_batch_values: int = 16

    def __post_init__(self) -> None:
        if self.max_batch_bytes <= 0:
            raise ConfigurationError("max_batch_bytes must be positive")
        if self.max_batch_delay < 0:
            raise ConfigurationError("max_batch_delay cannot be negative")
        if self.max_batch_values < 1:
            raise ConfigurationError("max_batch_values must be at least 1")

    @classmethod
    def coordinator(
        cls,
        max_batch_values: int = 16,
        max_batch_bytes: int = 32 * 1024,
        max_batch_delay: float = 0.5e-3,
    ) -> "BatchingConfig":
        """Convenience constructor for coordinator-side batching."""
        return cls(
            enabled=True,
            max_batch_bytes=max_batch_bytes,
            max_batch_delay=max_batch_delay,
            max_batch_values=max_batch_values,
        )


@dataclass(frozen=True)
class RingConfig:
    """Configuration of a single Ring Paxos instance (one multicast group)."""

    #: Storage mode of the acceptors' stable log.
    storage_mode: StorageMode = StorageMode.MEMORY
    #: Size of the acceptors' pre-allocated in-memory buffer, in slots
    #: (the paper uses 15000 slots of 32 KB).
    memory_slots: int = 15000
    #: Size of one in-memory slot in bytes.
    slot_bytes: int = 32 * 1024
    #: Coordinator-side batching: pack several proposed values into one
    #: consensus instance (see :class:`BatchingConfig`).
    batching: BatchingConfig = field(default_factory=BatchingConfig)
    #: CPU cost model used by ring members.
    cpu: CPUConfig = field(default_factory=CPUConfig)
    #: Pipelined instance window: how many consensus instances the
    #: coordinator keeps open (started but not yet decided) concurrently.
    #: Further starts queue until a decision closes an open instance.
    #: ``0`` disables the limit.
    pipeline_depth: int = 128
    #: Instance-repair interval in seconds; ``0`` disables repair.  When
    #: enabled, the coordinator periodically re-executes Phase 2 for
    #: instances it started whose decision it never learned (messages lost
    #: to crashes or partitions), and learners with a gap in their in-order
    #: delivery cursor fetch the missing decided instances from an acceptor.
    #: Required for rings to stay live across the chaos scenarios' injected
    #: faults; disabled by default so the fault-free benchmarks keep their
    #: exact message counts.
    repair_interval: float = 0.0
    #: Maximum instances re-proposed / re-fetched per repair tick.
    repair_batch: int = 128

    def with_batching(self, batching: BatchingConfig) -> "RingConfig":
        return replace(self, batching=batching)

    def with_pipeline_depth(self, depth: int) -> "RingConfig":
        return replace(self, pipeline_depth=depth)

    def with_storage(self, mode: StorageMode) -> "RingConfig":
        return replace(self, storage_mode=mode)

    def with_repair(self, interval: float, batch: int = 128) -> "RingConfig":
        return replace(self, repair_interval=interval, repair_batch=batch)


@dataclass(frozen=True)
class MultiRingConfig:
    """Global Multi-Ring Paxos parameters (Section 4)."""

    #: Number of consensus instances delivered from each ring per merge round.
    m: int = 1
    #: Interval at which coordinators evaluate rate leveling, in seconds (Δ).
    delta: float = 5e-3
    #: Maximum expected per-ring message rate, messages/second (λ).
    lam: float = 9000.0
    #: Whether rate leveling (skip proposals) is enabled at all.  Disabling it
    #: is used by the ablation benchmark.
    rate_leveling: bool = True
    #: Default per-ring configuration.
    ring: RingConfig = field(default_factory=RingConfig)

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ConfigurationError("M must be at least 1")
        if self.delta <= 0:
            raise ConfigurationError("Δ must be positive")
        if self.lam <= 0:
            raise ConfigurationError("λ must be positive")

    @classmethod
    def datacenter(cls, **overrides) -> "MultiRingConfig":
        """The paper's intra-datacenter configuration: M=1, Δ=5 ms, λ=9000."""
        config = cls(m=1, delta=5e-3, lam=9000.0)
        return replace(config, **overrides) if overrides else config

    @classmethod
    def wide_area(cls, **overrides) -> "MultiRingConfig":
        """The paper's cross-datacenter configuration: M=1, Δ=20 ms, λ=2000."""
        config = cls(m=1, delta=20e-3, lam=2000.0)
        return replace(config, **overrides) if overrides else config

    @property
    def skip_quota_per_interval(self) -> int:
        """Maximum instances expected per ring per Δ interval (λ·Δ)."""
        return max(1, int(round(self.lam * self.delta)))


@dataclass(frozen=True)
class RecoveryConfig:
    """Checkpointing, trimming and recovery parameters (Section 5)."""

    #: Interval between replica checkpoints, seconds.
    checkpoint_interval: float = 30.0
    #: Interval at which group coordinators run the trim protocol, seconds.
    trim_interval: float = 60.0
    #: Size of the trim quorum Q_T as a fraction of the partition's replicas.
    trim_quorum_fraction: float = 0.51
    #: Size of the recovery quorum Q_R as a fraction of the partition's replicas.
    recovery_quorum_fraction: float = 0.51
    #: Whether checkpoints are written synchronously to disk.
    synchronous_checkpoints: bool = True
    #: If a recovering replica is missing more than this many instances it
    #: fetches a remote checkpoint instead of replaying from the acceptors.
    max_replay_instances: int = 10000

    def __post_init__(self) -> None:
        if self.checkpoint_interval <= 0 or self.trim_interval <= 0:
            raise ConfigurationError("checkpoint and trim intervals must be positive")
        for fraction in (self.trim_quorum_fraction, self.recovery_quorum_fraction):
            if not 0.0 < fraction <= 1.0:
                raise ConfigurationError("quorum fractions must be in (0, 1]")
        if self.trim_quorum_fraction + self.recovery_quorum_fraction <= 1.0:
            raise ConfigurationError(
                "trim and recovery quorums must intersect "
                "(their fractions must sum to more than 1)"
            )

    def quorum_size(self, replicas: int, fraction: float) -> int:
        """Smallest quorum of ``replicas`` satisfying ``fraction``."""
        if replicas <= 0:
            raise ConfigurationError("a partition needs at least one replica")
        size = int(replicas * fraction)
        if size < replicas * fraction:
            size += 1
        return max(1, min(replicas, size))

    def trim_quorum_size(self, replicas: int) -> int:
        return self.quorum_size(replicas, self.trim_quorum_fraction)

    def recovery_quorum_size(self, replicas: int) -> int:
        return self.quorum_size(replicas, self.recovery_quorum_fraction)
