"""The service replica: a Multi-Ring Paxos learner executing commands.

A :class:`Replica` subscribes to the multicast groups replicating its
partition, executes delivered commands against its
:class:`~repro.smr.state_machine.StateMachine` in delivery order, and sends
responses straight back to the issuing clients (over UDP in the paper).  It
also owns the recovery machinery of Section 5: periodic checkpoints, trim
participation, and the full recovery sequence after a restart.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import MultiRingConfig, RecoveryConfig
from repro.coordination.registry import Registry
from repro.multiring.merge import Delivery
from repro.multiring.node import MultiRingNode
from repro.recovery.checkpoint import CheckpointStore
from repro.recovery.replica_recovery import ReplicaRecovery
from repro.recovery.trimming import TrimProtocol
from repro.runtime.cpu import CPUConfig
from repro.runtime.interfaces import Runtime, StableStore
from repro.smr.command import Command, CommandBatch, Response
from repro.smr.state_machine import StateMachine
from repro.types import GroupId, Value, ValueBatch

__all__ = ["Replica"]


class Replica(MultiRingNode):
    """A state-machine-replication replica on top of atomic multicast."""

    def __init__(
        self,
        world: Runtime,
        registry: Registry,
        name: str,
        state_machine: StateMachine,
        partition: str,
        config: Optional[MultiRingConfig] = None,
        site: Optional[str] = None,
        cpu_config: Optional[CPUConfig] = None,
        respond_to_clients: bool = True,
        monitor_series: Optional[str] = None,
    ) -> None:
        super().__init__(world, registry, name, config=config, site=site, cpu_config=cpu_config)
        self.state_machine = state_machine
        self.partition = partition
        self.respond_to_clients = respond_to_clients
        self.monitor_series = monitor_series
        self.commands_executed = 0
        self.recovery: Optional[ReplicaRecovery] = None
        self.trim: Optional[TrimProtocol] = None
        #: Reconfiguration hook: called before executing each delivered
        #: command; returning False suppresses local execution (the command is
        #: buffered or forwarded by a migration agent).  Must be a
        #: deterministic function of the delivery sequence.
        self.command_gate: Optional[Callable[[Command, GroupId], bool]] = None
        self.on_deliver(self._execute_delivery)

    # ------------------------------------------------------------------
    # recovery wiring
    # ------------------------------------------------------------------
    def enable_recovery(
        self,
        recovery_config: Optional[RecoveryConfig] = None,
        checkpoint_disk: Optional[StableStore] = None,
    ) -> ReplicaRecovery:
        """Attach checkpointing, trimming and replica recovery to this replica."""
        recovery_config = recovery_config or RecoveryConfig()
        store = CheckpointStore(
            self.world.sim,
            disk=checkpoint_disk,
            synchronous=recovery_config.synchronous_checkpoints,
        )
        self.recovery = ReplicaRecovery(
            self,
            store=store,
            snapshot_provider=self.state_machine.snapshot,
            snapshot_installer=self.state_machine.install,
            config=recovery_config,
        )
        self.trim = TrimProtocol(
            self,
            config=recovery_config,
            safe_instance_provider=self.recovery.safe_instance,
        )
        return self.recovery

    def on_start(self) -> None:
        super().on_start()
        if self.recovery is not None:
            self.recovery.start()
        if self.trim is not None:
            self.trim.start()

    def on_crash(self) -> None:
        super().on_crash()
        # The in-memory database/state machine is volatile.
        self.state_machine.install(None)

    def on_recover(self) -> None:
        super().on_recover()
        if self.recovery is not None:
            self.recovery.begin_recovery()
        if self.trim is not None:
            self.trim.start()

    # ------------------------------------------------------------------
    # command execution
    # ------------------------------------------------------------------
    def _execute_delivery(self, delivery: Delivery) -> None:
        for command in self._commands_of(delivery.value.payload):
            self._execute_command(command, delivery.group)

    def _commands_of(self, payload) -> List[Command]:
        """Flatten a delivered payload into its application commands.

        Handles plain commands, client-side 32 KB command batches, and
        coordinator-side value batches (normally unpacked by the merge, but a
        batch value can still reach the replica through direct decision
        feeds, e.g. in tests) -- including client batches nested inside a
        coordinator batch.
        """
        if isinstance(payload, CommandBatch):
            return list(payload.commands)
        if isinstance(payload, Command):
            return [payload]
        if isinstance(payload, ValueBatch):
            commands: List[Command] = []
            for inner in payload.values:
                commands.extend(self._commands_of(inner.payload))
            return commands
        return []  # not an SMR value (e.g. a dummy-service payload)

    def _metric_samples(self):
        samples = super()._metric_samples()
        samples.append(
            (
                "mrp_commands_executed_total",
                {"node": self.name, "partition": self.partition},
                self.commands_executed,
            )
        )
        return samples

    def _execute_command(self, command: Command, group: GroupId) -> None:
        if self.command_gate is not None and not self.command_gate(command, group):
            return
        result, result_size = self.state_machine.execute(command.operation, group)
        self.commands_executed += 1
        cost = self.state_machine.execution_cost_bytes(command.operation)
        if cost:
            self.cpu.charge(nbytes=cost)
        if self.monitor_series is not None:
            self.world.monitor.increment(f"executed/{self.monitor_series}")
        if result is None or not self.respond_to_clients:
            return
        response = Response(
            command_id=command.command_id,
            replica=self.name,
            partition=self.partition,
            result=result,
            result_size_bytes=result_size,
        )
        if self.world.has_process(command.client):
            self.send_direct(command.client, response)
