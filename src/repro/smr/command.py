"""Commands and client-facing messages."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.net.message import ProtocolMessage
from repro.types import GroupId

__all__ = ["Command", "CommandBatch", "SubmitCommand", "Response"]

_command_ids = itertools.count(1)


@dataclass(frozen=True)
class Command:
    """One application command submitted by a client.

    ``operation`` is service-specific (an MRP-Store read/update, a dLog
    append, ...).  ``size_bytes`` is the serialized size used by the network,
    disk and CPU models.  ``expected_responses`` tells the client how many
    replica responses complete the command (one for single-partition
    commands, one per partition for scans / multi-appends).
    """

    command_id: int
    client: str
    operation: Any
    size_bytes: int
    created_at: float
    expected_responses: int = 1

    @classmethod
    def create(
        cls,
        client: str,
        operation: Any,
        size_bytes: int,
        created_at: float,
        expected_responses: int = 1,
    ) -> "Command":
        return cls(
            command_id=next(_command_ids),
            client=client,
            operation=operation,
            size_bytes=max(1, int(size_bytes)),
            created_at=created_at,
            expected_responses=expected_responses,
        )


@dataclass(frozen=True)
class CommandBatch:
    """Several commands grouped into one multicast value (32 KB client batching)."""

    commands: Tuple[Command, ...]

    @property
    def size_bytes(self) -> int:
        return sum(command.size_bytes for command in self.commands) + 16 * len(self.commands)

    def __len__(self) -> int:
        return len(self.commands)


@dataclass(frozen=True)
class SubmitCommand(ProtocolMessage):
    """A client hands a command to a proposer front-end for multicast to ``group``."""

    group: GroupId
    command: Command

    @property
    def size_bytes(self) -> int:  # type: ignore[override]
        return 64 + self.command.size_bytes


@dataclass(frozen=True)
class Response(ProtocolMessage):
    """A replica's response to a client (sent over UDP in the paper)."""

    command_id: int
    replica: str
    partition: str
    result: Any
    result_size_bytes: int = 64

    @property
    def size_bytes(self) -> int:  # type: ignore[override]
        return 64 + self.result_size_bytes
