"""The proposer front-end clients connect to.

In the paper's implementation clients talk Thrift to proposer processes,
which submit the commands to Multi-Ring Paxos; small commands can be batched,
grouped by partition, into packets of up to 32 KB before being multicast
(Sections 7.2 and 8.4).  :class:`ProposerFrontend` reproduces that component:
it is attached to a node that is a proposer of one or more groups, receives
:class:`~repro.smr.command.SubmitCommand` messages, optionally batches them
per group, and multicasts the resulting value.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import BatchingConfig
from repro.errors import ServiceError
from repro.smr.command import Command, CommandBatch, SubmitCommand
from repro.types import GroupId

__all__ = ["ProposerFrontend"]

#: Epoch router: maps ``(command, group-the-client-chose)`` to the group the
#: command should go to under the *current* partition map.
Router = Callable[[Command, GroupId], GroupId]


class ProposerFrontend:
    """Receives client commands on a node and multicasts them.

    With a ``router`` the front-end re-routes commands whose target group is
    stale (the client built the request under an older partition-map epoch).
    Re-routing only happens when this front-end can propose to the corrected
    group; otherwise the command proceeds on the stale group and the
    migration agents forward it to the new owner -- either way nothing is
    lost.
    """

    def __init__(
        self,
        node,
        batching: Optional[BatchingConfig] = None,
        router: Optional[Router] = None,
    ) -> None:
        self.node = node
        self.batching = batching or BatchingConfig(enabled=False)
        self.router = router
        self.rerouted_commands = 0
        self._pending: Dict[GroupId, List[Command]] = {}
        self._pending_bytes: Dict[GroupId, int] = {}
        self._flush_timers: Dict[GroupId, object] = {}
        self.commands_received = 0
        self.batches_sent = 0
        node.register_handler(SubmitCommand, self._on_submit)

    # ------------------------------------------------------------------
    def _on_submit(self, sender: str, msg: SubmitCommand) -> None:
        self.submit(msg.group, msg.command)

    def submit(self, group: GroupId, command: Command) -> None:
        """Submit ``command`` for multicast to ``group`` (local API, same path as messages)."""
        if self.router is not None:
            routed = self.router(command, group)
            if routed != group and routed in self.node.roles:
                self.rerouted_commands += 1
                group = routed
        if group not in self.node.roles:
            raise ServiceError(
                f"front-end {self.node.name} is not a proposer for group {group!r}"
            )
        self.commands_received += 1
        if not self.batching.enabled:
            self._multicast(group, [command])
            return
        pending = self._pending.setdefault(group, [])
        pending.append(command)
        self._pending_bytes[group] = self._pending_bytes.get(group, 0) + command.size_bytes
        if self._pending_bytes[group] >= self.batching.max_batch_bytes:
            self._flush(group)
        elif group not in self._flush_timers:
            self._flush_timers[group] = self.node.set_timer(
                self.batching.max_batch_delay, self._flush, group
            )

    def _flush(self, group: GroupId) -> None:
        timer = self._flush_timers.pop(group, None)
        if timer is not None:
            timer.cancel()
        pending = self._pending.get(group)
        if not pending:
            return
        self._pending[group] = []
        self._pending_bytes[group] = 0
        self._multicast(group, pending)

    def _multicast(self, group: GroupId, commands: List[Command]) -> None:
        batch = CommandBatch(commands=tuple(commands))
        self.batches_sent += 1
        self.node.multicast(group, batch, batch.size_bytes)

    def flush_all(self) -> None:
        """Flush every pending batch immediately (used at the end of experiments)."""
        for group in list(self._pending):
            self._flush(group)
