"""The deterministic state machine replicated by the services."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Tuple

from repro.types import GroupId

__all__ = ["StateMachine", "NullStateMachine"]


class StateMachine(ABC):
    """Interface implemented by MRP-Store and dLog replicas.

    Execution must be deterministic: every replica of a partition applies the
    same sequence of commands (guaranteed by atomic multicast plus the
    deterministic merge) and must reach the same state.
    """

    @abstractmethod
    def execute(self, operation: Any, group: GroupId) -> Tuple[Any, int]:
        """Apply ``operation`` delivered from ``group``.

        Returns ``(result, result_size_bytes)``.  Returning ``None`` as the
        result suppresses the response (used by replicas that are not
        responsible for the command, e.g. a hash-partitioned scan that matched
        nothing locally still responds, but a partition that should not even
        execute the command returns ``None``).
        """

    @abstractmethod
    def snapshot(self) -> Tuple[Any, int]:
        """Return ``(opaque_state, serialized_size_bytes)`` for checkpointing."""

    @abstractmethod
    def install(self, state: Any) -> None:
        """Replace the current state with a snapshot (``None`` means empty state)."""

    def execution_cost_bytes(self, operation: Any) -> int:
        """Bytes of CPU work charged for executing ``operation`` (default: tiny)."""
        return 0


class NullStateMachine(StateMachine):
    """The paper's "dummy service": commands do not execute any operation.

    Used by the Figure 3 baseline to measure raw Multi-Ring Paxos performance.
    """

    def __init__(self) -> None:
        self.executed = 0

    def execute(self, operation: Any, group: GroupId) -> Tuple[Any, int]:
        self.executed += 1
        return ("ok", 8)

    def snapshot(self) -> Tuple[Any, int]:
        return (self.executed, 8)

    def install(self, state: Any) -> None:
        self.executed = int(state) if state is not None else 0
