"""Closed-loop clients.

The paper's benchmarks drive the services with multi-threaded closed-loop
clients: each thread keeps exactly one request outstanding and issues the next
one as soon as the previous one completes.  :class:`ClosedLoopClient` models
one such client machine with ``threads`` concurrent streams; the requests it
issues come from a :class:`Workload` object (YCSB mixes, append-only streams,
update-only streams, ...).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence

from repro.errors import WorkloadError
from repro.runtime.actor import Process
from repro.runtime.interfaces import Runtime
from repro.smr.command import Command, Response, SubmitCommand
from repro.types import GroupId

__all__ = ["Request", "Workload", "ClosedLoopClient"]


@dataclass(frozen=True)
class Request:
    """One logical client request produced by a workload."""

    #: Service-specific operation payload (e.g. ``("update", key, value_size)``).
    operation: object
    #: Serialized request size in bytes.
    size_bytes: int
    #: The multicast group the request must be submitted to.
    group: GroupId
    #: How many replica responses complete the request (1, or one per partition
    #: for scans / multi-appends).
    expected_responses: int = 1
    #: Label under which the completion is recorded in the monitor.
    series: Optional[str] = None


class Workload(Protocol):
    """Anything that can produce the next request for a client thread."""

    def next_request(self, rng: random.Random) -> Request:  # pragma: no cover - protocol
        ...


class ClosedLoopClient(Process):
    """A client machine running ``threads`` closed-loop request streams."""

    def __init__(
        self,
        world: Runtime,
        name: str,
        workload: Workload,
        frontends: Dict[GroupId, str],
        threads: int = 1,
        site: Optional[str] = None,
        series: str = "client",
        think_time: float = 0.0,
        rng: Optional[random.Random] = None,
        retry_timeout: float = 0.0,
    ) -> None:
        super().__init__(world, name, site)
        if threads < 1:
            raise WorkloadError("a client needs at least one thread")
        if retry_timeout < 0:
            raise WorkloadError("the retry timeout cannot be negative")
        self.workload = workload
        self.frontends = dict(frontends)
        self.threads = threads
        self.series = series
        self.think_time = think_time
        #: When positive, a request outstanding longer than this many seconds
        #: is re-submitted (same command, so replicas stay consistent).  Needed
        #: under fault injection: a command lost to a crash or partition would
        #: otherwise block its closed-loop thread forever.
        self.retry_timeout = retry_timeout
        self.rng = rng or world.rng.stream(f"client:{name}")
        self._outstanding: Dict[int, Request] = {}
        self._responses_seen: Dict[int, set] = {}
        self._sent_at: Dict[int, float] = {}
        self._retry_timers: Dict[int, object] = {}
        self.completed = 0
        self.issued = 0
        self.retries = 0

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        for _ in range(self.threads):
            self._issue_next()

    def _issue_next(self) -> None:
        if not self.alive:
            return
        request = self.workload.next_request(self.rng)
        frontend = self.frontends.get(request.group)
        if frontend is None:
            raise WorkloadError(f"no front-end configured for group {request.group!r}")
        command = Command.create(
            client=self.name,
            operation=request.operation,
            size_bytes=request.size_bytes,
            created_at=self.now,
            expected_responses=request.expected_responses,
        )
        self._outstanding[command.command_id] = request
        self._responses_seen[command.command_id] = set()
        self._sent_at[command.command_id] = self.now
        self.issued += 1
        self.send(frontend, SubmitCommand(group=request.group, command=command))
        if self.retry_timeout > 0:
            self._retry_timers[command.command_id] = self.set_timer(
                self.retry_timeout, self._maybe_retry, command, request.group, frontend
            )

    def _maybe_retry(self, command, group: GroupId, frontend: str) -> None:
        """Re-submit a request that has been outstanding past the timeout.

        The *same* command object is re-sent (same command id): replicas
        execute whatever the decided sequence contains, so a duplicate that
        makes it through consensus twice is applied identically everywhere,
        and the client ignores responses after the first completion.
        """
        if command.command_id not in self._outstanding or not self.alive:
            return
        self.retries += 1
        self.send(frontend, SubmitCommand(group=group, command=command))
        self._retry_timers[command.command_id] = self.set_timer(
            self.retry_timeout, self._maybe_retry, command, group, frontend
        )

    # ------------------------------------------------------------------
    def on_message(self, sender: str, payload) -> None:
        if not isinstance(payload, Response):
            return
        request = self._outstanding.get(payload.command_id)
        if request is None:
            return  # duplicate response after completion
        seen = self._responses_seen[payload.command_id]
        # For single-partition commands the first response completes the
        # request; for scans the client waits for one response per partition.
        seen.add(payload.partition)
        if len(seen) < request.expected_responses:
            return
        sent_at = self._sent_at.pop(payload.command_id)
        del self._outstanding[payload.command_id]
        del self._responses_seen[payload.command_id]
        timer = self._retry_timers.pop(payload.command_id, None)
        if timer is not None:
            timer.cancel()
        self.completed += 1
        latency = self.now - sent_at
        series = request.series or self.series
        self.world.monitor.record_operation(
            series, completion_time=self.now, latency=latency, size_bytes=request.size_bytes
        )
        if self.think_time > 0:
            self.set_timer(self.think_time, self._issue_next)
        else:
            self._issue_next()

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._outstanding)
