"""State-machine replication on top of atomic multicast.

Both services in the paper (MRP-Store and dLog) replicate each partition with
the state-machine approach: clients submit commands to proposers, commands are
atomically multicast to the group(s) replicating the data they touch, and
replicas -- the learners -- execute them in delivery order (Sections 6 and 7).

* :mod:`repro.smr.command` -- commands, batches, client/replica messages;
* :mod:`repro.smr.state_machine` -- the deterministic state-machine interface
  services implement;
* :mod:`repro.smr.replica` -- the replica node: executes delivered commands,
  answers clients, checkpoints its state and recovers after failures;
* :mod:`repro.smr.frontend` -- the proposer front-end clients connect to
  (the Thrift proxy of the paper), including 32 KB client-command batching;
* :mod:`repro.smr.client` -- closed-loop clients driving a workload.
"""

from repro.smr.command import Command, CommandBatch, Response, SubmitCommand
from repro.smr.state_machine import StateMachine, NullStateMachine
from repro.smr.frontend import ProposerFrontend
from repro.smr.replica import Replica
from repro.smr.client import ClosedLoopClient, Request, Workload

__all__ = [
    "Command",
    "CommandBatch",
    "SubmitCommand",
    "Response",
    "StateMachine",
    "NullStateMachine",
    "ProposerFrontend",
    "Replica",
    "ClosedLoopClient",
    "Request",
    "Workload",
]
