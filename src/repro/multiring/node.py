"""The Multi-Ring Paxos node.

A :class:`MultiRingNode` is a :class:`~repro.ringpaxos.node.RingHost` that
additionally

* subscribes to multicast groups as a learner and merges their decision
  streams deterministically (:class:`~repro.multiring.merge.DeterministicMerge`),
* runs the rate-leveling policy for every ring it coordinates, and
* exposes the atomic multicast API of the paper: ``multicast(group, message)``
  on the sending side and a delivery callback on the receiving side.

In a typical deployment (Section 5.1) clients act as proposers and replicas
as learners; :mod:`repro.smr` builds the replication layer on top of the
delivery callback provided here.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.config import MultiRingConfig, RingConfig
from repro.coordination.registry import Registry
from repro.errors import MulticastError
from repro.multiring.leveling import RateLeveler
from repro.multiring.merge import Delivery, DeterministicMerge
from repro.reconfig.commands import ControlCommand, ProposeControl, SpliceRing
from repro.ringpaxos.node import RingHost
from repro.ringpaxos.role import RingRole
from repro.runtime.cpu import CPUConfig
from repro.runtime.interfaces import Runtime, StableStore
from repro.types import GroupId, InstanceId, Value

__all__ = ["MultiRingNode"]

DeliveryCallback = Callable[[Delivery], None]


class MultiRingNode(RingHost):
    """A process participating in Multi-Ring Paxos."""

    def __init__(
        self,
        world: Runtime,
        registry: Registry,
        name: str,
        config: Optional[MultiRingConfig] = None,
        site: Optional[str] = None,
        cpu_config: Optional[CPUConfig] = None,
    ) -> None:
        super().__init__(world, registry, name, site=site, cpu_config=cpu_config)
        self.config = config or MultiRingConfig.datacenter()
        self.merge = DeterministicMerge(groups=[], m=self.config.m, deliver=self._on_merged_delivery)
        self.merge.keep_history = False
        self._delivery_callbacks: List[DeliveryCallback] = []
        #: Callbacks registered for a single group only (``on_deliver`` with
        #: ``group=``); spares every other ring's deliveries the call.
        self._group_delivery_callbacks: Dict[GroupId, List[DeliveryCallback]] = {}
        self._control_callbacks: List[DeliveryCallback] = []
        self._levelers: Dict[GroupId, RateLeveler] = {}
        self._subscribed: List[GroupId] = []
        #: Subscription schedule: group -> round at which it entered (or will
        #: enter) this learner's merge; ``None`` while a splice is pending.
        #: Survives crashes (in a real system it lives in the registry) so the
        #: merge can be rebuilt with the same round structure.
        self._join_rounds: Dict[GroupId, Optional[int]] = {}
        self.register_handler(ProposeControl, self._on_propose_control)
        self.deliveries_count = 0
        self.control_deliveries_count = 0
        # True once on_start armed the leveling timers; lets join_ring tell a
        # running node joining a new ring apart from a not-yet-started node.
        self._leveling_started = False
        #: Set by the recovery manager: hold deliveries after a restart until
        #: a checkpoint has been installed.  Nodes without a recovery manager
        #: simply resume delivering from instance 0.
        self.pause_on_recover = False

    # ------------------------------------------------------------------
    # ring membership and subscriptions
    # ------------------------------------------------------------------
    def join_ring(
        self,
        group: GroupId,
        ring_config: Optional[RingConfig] = None,
        disk: Optional[StableStore] = None,
        defer_subscribe: bool = False,
    ) -> RingRole:
        """Take up this node's roles in ``group``'s ring.

        With ``defer_subscribe`` a learner joins the ring (decisions start
        being buffered) but does not yet deliver from it: the merge splice
        happens later, at the round boundary agreed through a
        :class:`~repro.reconfig.commands.SpliceRing` control command.
        """
        role = super().join_ring(group, ring_config or self.config.ring, disk=disk)
        if role.is_coordinator and group not in self._levelers:
            self._levelers[group] = RateLeveler(role, self.config)
            if self._leveling_started:
                # This node is already running and joined a new ring: arm the
                # leveling timer now.  (A node *created* at runtime instead has
                # its on_start pending, which arms every leveler exactly once.)
                self.set_periodic_timer(self.config.delta, self._levelers[group].on_interval)
        if role.is_learner:
            if defer_subscribe:
                self._prepare_splice(group)
            else:
                self._subscribe_group(group)
        return role

    def _subscribe_group(self, group: GroupId) -> None:
        if group in self._subscribed:
            return
        self._subscribed.append(group)
        self.merge.add_group(group)
        self._join_rounds[group] = self.merge.join_round(group)
        self.registry.subscribe(self.name, [group])

    def _prepare_splice(self, group: GroupId) -> None:
        """Buffer decisions from ``group`` without delivering (splice pending)."""
        if group in self._subscribed or group in self._join_rounds:
            return
        self.merge.add_pending_group(group)
        self._join_rounds[group] = None

    def activate_splice(self, group: GroupId) -> int:
        """Splice a pending ``group`` into the merge at the next round boundary.

        Called when the :class:`~repro.reconfig.commands.SpliceRing` control
        command is delivered; the boundary is derived from the merge position
        at that delivery, so all learners of a partition pick the same round.
        Returns the join round.
        """
        if group in self._subscribed:
            return self._join_rounds[group]  # type: ignore[return-value]
        if group not in self._join_rounds:
            raise MulticastError(
                f"{self.name} cannot splice {group!r}: it never joined that ring"
            )
        join_round = self.merge.current_round + 1
        self.merge.set_join_round(group, join_round)
        self._join_rounds[group] = join_round
        self._subscribed.append(group)
        self.registry.subscribe(self.name, [group])
        return join_round

    @property
    def subscriptions(self) -> List[GroupId]:
        """Groups this node delivers from, in group-identifier order."""
        return sorted(self._subscribed)

    @property
    def pending_subscriptions(self) -> List[GroupId]:
        """Groups joined with a deferred subscription (splice not yet agreed)."""
        return sorted(g for g, r in self._join_rounds.items() if r is None)

    # ------------------------------------------------------------------
    # multicast API
    # ------------------------------------------------------------------
    def multicast(self, group: GroupId, payload, size_bytes: int) -> Value:
        """Atomically multicast ``payload`` to ``group`` (the paper's ``multicast(γ, m)``)."""
        if group not in self.roles:
            raise MulticastError(
                f"{self.name} cannot multicast to {group!r}: it is not a proposer of that ring"
            )
        return self.propose(group, payload, size_bytes)

    def on_deliver(self, callback: DeliveryCallback, group: Optional[GroupId] = None) -> None:
        """Register the application-level delivery callback (``deliver(m)``).

        With ``group`` the callback only fires for that group's deliveries
        (cheaper than filtering inside the callback when a node subscribes
        to many rings).
        """
        if group is None:
            self._delivery_callbacks.append(callback)
        else:
            self._group_delivery_callbacks.setdefault(group, []).append(callback)

    def on_control(self, callback: DeliveryCallback) -> None:
        """Register a callback for delivered reconfiguration control commands."""
        self._control_callbacks.append(callback)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def notify_decision(self, group: GroupId, instance: InstanceId, value: Value) -> None:
        # Overrides the RingHost hook: decision -> merge routing runs once
        # per decided instance on every learner, so it is inlined here ahead
        # of the generic sink fan-out (which is usually empty on multi-ring
        # nodes -- the merge was previously just the first sink).
        merge = self.merge
        if merge.has_group(group):
            merge.on_decision(group, instance, value)
        sinks = self._decision_sinks
        if sinks:
            for sink in sinks:
                sink(group, instance, value)

    def _on_merged_delivery(self, delivery: Delivery) -> None:
        if isinstance(delivery.value.payload, ControlCommand):
            self._on_control_delivery(delivery)
            return
        self.deliveries_count += 1
        trace_id = delivery.value.trace
        if trace_id is not None and self._tracer.enabled:
            self._trace_delivery(trace_id, delivery)
            return
        for callback in self._delivery_callbacks:
            callback(delivery)
        group_callbacks = self._group_delivery_callbacks.get(delivery.group)
        if group_callbacks is not None:
            for callback in group_callbacks:
                callback(delivery)

    def _trace_delivery(self, trace_id: str, delivery: Delivery) -> None:
        """Close the merge-wait span, then run the callbacks inside ``apply``.

        The apply span is zero-width under the simulator (callbacks cannot
        advance simulated time synchronously) but measures real execution
        time on the live backend, where ``now`` tracks the wall clock.
        """
        tracer = self._tracer
        released_at = self._sim._now
        learned_at = tracer.take_mark(trace_id, f"merge:{self.name}")
        if learned_at is not None:
            tracer.record(
                trace_id, "merge-wait", self.name, learned_at, released_at,
                group=delivery.group, instance=delivery.instance,
            )
        for callback in self._delivery_callbacks:
            callback(delivery)
        group_callbacks = self._group_delivery_callbacks.get(delivery.group)
        if group_callbacks is not None:
            for callback in group_callbacks:
                callback(delivery)
        tracer.record(
            trace_id, "apply", self.name, released_at, self._sim._now,
            group=delivery.group, instance=delivery.instance,
        )

    def _on_control_delivery(self, delivery: Delivery) -> None:
        """Handle a reconfiguration control command at its agreed position."""
        self.control_deliveries_count += 1
        payload = delivery.value.payload
        if isinstance(payload, SpliceRing):
            if self.name in payload.learners and payload.group in self._join_rounds:
                self.activate_splice(payload.group)
        for callback in self._control_callbacks:
            callback(delivery)

    def _on_propose_control(self, sender: str, msg: ProposeControl) -> None:
        """Multicast a control payload on behalf of a non-member (controller)."""
        role = self.roles.get(msg.group)
        if role is None or not (role.is_proposer or role.is_coordinator):
            return
        size = msg.payload_bytes
        if size is None:
            size = getattr(msg.payload, "size_bytes", 256)
        self.multicast(msg.group, msg.payload, size)

    # ------------------------------------------------------------------
    # rate leveling
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        super().on_start()
        self._leveling_started = True
        for group, leveler in self._levelers.items():
            self.set_periodic_timer(self.config.delta, leveler.on_interval)

    def leveler(self, group: GroupId) -> Optional[RateLeveler]:
        return self._levelers.get(group)

    def skip_statistics(self) -> Dict[GroupId, int]:
        """Total skip instances proposed per coordinated ring."""
        return {group: leveler.total_skips for group, leveler in self._levelers.items()}

    def batching_statistics(self) -> Dict[GroupId, Dict[str, int]]:
        """Coordinator batcher counters per coordinated ring (empty if disabled)."""
        stats: Dict[GroupId, Dict[str, int]] = {}
        for group, role in self.roles.items():
            if role.batcher is None:
                continue
            batcher = role.batcher
            stats[group] = {
                "values_offered": batcher.values_offered,
                "batches_flushed": batcher.batches_flushed,
                "size_flushes": batcher.size_flushes,
                "timeout_flushes": batcher.timeout_flushes,
                "control_flushes": batcher.control_flushes,
                "window_stalls": role.window_stalls,
                "max_inflight": role.max_inflight,
            }
        return stats

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _metric_samples(self):
        samples = super()._metric_samples()
        node = self.name
        merge = self.merge
        samples.append(("mrp_merge_deliveries_total", {"node": node}, merge.delivered_count))
        samples.append(("mrp_merge_skips_total", {"node": node}, merge.skipped_count))
        samples.append(("mrp_deliveries_total", {"node": node}, self.deliveries_count))
        for group in self._subscribed:
            # Cursor lag: decided-but-undelivered instances buffered behind
            # the deterministic merge's round-robin cursor.
            samples.append(
                ("mrp_merge_cursor_lag", {"node": node, "group": group}, merge.pending(group))
            )
        for group, leveler in self._levelers.items():
            samples.append(
                ("mrp_skip_instances_total", {"node": node, "group": group}, leveler.total_skips)
            )
        return samples

    # ------------------------------------------------------------------
    # recovery hooks used by :mod:`repro.recovery`
    # ------------------------------------------------------------------
    def delivery_cursor(self) -> Dict[GroupId, InstanceId]:
        """The per-group next-instance tuple identifying the node's current state."""
        return self.merge.delivery_cursor()

    def fast_forward(self, cursor: Dict[GroupId, InstanceId]) -> None:
        """Jump the merge (and the ring roles' learner bookkeeping) to ``cursor``.

        The checkpoint behind ``cursor`` covers every instance below it, so
        the roles' in-order delivery cursors jump there directly -- those
        instances will never circulate again and must not be waited for.
        """
        self.merge.fast_forward(cursor)
        for group, next_instance in cursor.items():
            role = self.roles.get(group)
            if role is None:
                continue
            role.fast_forward_delivery(next_instance)

    def on_crash(self) -> None:
        super().on_crash()
        # Everything the learner holds in memory is gone: the merge buffers,
        # its cursor, and the roles' learned-instance bookkeeping.  Stable
        # acceptor logs (handled in RingRole.on_host_crash) survive.  The
        # subscription schedule (which ring joined at which round) is restored
        # from the node's configuration view so that the rebuilt merge has the
        # same round structure as before the crash.
        self.merge = DeterministicMerge(
            groups=self.subscriptions,
            m=self.config.m,
            deliver=self._on_merged_delivery,
            join_rounds=dict(self._join_rounds),
        )
        self.merge.keep_history = False

    def on_recover(self) -> None:
        super().on_recover()
        # Hold back deliveries until the recovery manager has installed a
        # checkpoint and fast-forwarded the merge; live decisions arriving in
        # the meantime are buffered.
        if self.pause_on_recover:
            self.merge.pause()
        # Timers for rate leveling must be re-armed because crash() cancelled them.
        for group, leveler in self._levelers.items():
            self.set_periodic_timer(self.config.delta, leveler.on_interval)
