"""Rate leveling.

Section 4: *"at regular Δ intervals, a coordinator compares the number of
messages proposed in the interval with the maximum expected rate λ for the
group and proposes enough skip instances to reach the maximum rate.  To skip
an instance, the coordinator proposes null values in Phase 2A messages.  For
performance, the coordinator can propose to skip several consensus instances
in a single message."*

Without rate leveling the deterministic merge forces every learner to advance
at the pace of its *slowest* subscribed ring; the ablation benchmark
(``benchmarks/test_ablation_rate_leveling.py``) demonstrates that collapse.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.config import MultiRingConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ringpaxos.role import RingRole

__all__ = ["RateLeveler"]


class RateLeveler:
    """Per-coordinator rate-leveling policy for one ring."""

    def __init__(self, role: "RingRole", config: MultiRingConfig) -> None:
        self.role = role
        self.config = config
        self.intervals = 0
        self.total_skips = 0

    @property
    def quota_per_interval(self) -> int:
        """λ·Δ -- the number of *instances* each ring must start per interval.

        The quota is the system-wide instance rate contract that keeps the
        deterministic merge advancing: every ring, batched or not, tops up to
        the same λ·Δ instances per interval.  Coordinator-side batching is
        accounted for in the *counter*, not the quota:
        ``proposals_since_level`` counts instances started (a flushed batch
        of any size is one instance), so a batched busy ring correctly skips
        the instances its batching saved.  Dividing the quota by the batch
        factor instead would let a partially-batched ring outpace its
        skip-topped peers and grow the merge backlog without bound.  Skip
        ranges cost one message and one log write regardless of size, so the
        extra skips are cheap.
        """
        return self.config.skip_quota_per_interval

    def on_interval(self) -> int:
        """Evaluate one Δ interval; returns the number of instances skipped."""
        self.intervals += 1
        proposed = self.role.reset_level_counter()
        if not self.config.rate_leveling:
            return 0
        # Skips from previous intervals still waiting for the pipeline window
        # count against the deficit: re-proposing them every interval would
        # grow the start queue without bound under window backpressure.
        queued_skips = getattr(self.role, "queued_skip_instances", 0)
        deficit = self.quota_per_interval - proposed - queued_skips
        if deficit <= 0:
            return 0
        # One Phase 2 message covers the whole skip range (paper: "the
        # coordinator can propose to skip several consensus instances in a
        # single message").
        self.role.propose_skip(deficit)
        self.total_skips += deficit
        return deficit
