"""Rate leveling.

Section 4: *"at regular Δ intervals, a coordinator compares the number of
messages proposed in the interval with the maximum expected rate λ for the
group and proposes enough skip instances to reach the maximum rate.  To skip
an instance, the coordinator proposes null values in Phase 2A messages.  For
performance, the coordinator can propose to skip several consensus instances
in a single message."*

Without rate leveling the deterministic merge forces every learner to advance
at the pace of its *slowest* subscribed ring; the ablation benchmark
(``benchmarks/test_ablation_rate_leveling.py``) demonstrates that collapse.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.config import MultiRingConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ringpaxos.role import RingRole

__all__ = ["RateLeveler"]


class RateLeveler:
    """Per-coordinator rate-leveling policy for one ring."""

    def __init__(self, role: "RingRole", config: MultiRingConfig) -> None:
        self.role = role
        self.config = config
        self.intervals = 0
        self.total_skips = 0

    @property
    def quota_per_interval(self) -> int:
        """λ·Δ -- the number of instances each ring is expected to start per interval."""
        return self.config.skip_quota_per_interval

    def on_interval(self) -> int:
        """Evaluate one Δ interval; returns the number of instances skipped."""
        self.intervals += 1
        proposed = self.role.reset_level_counter()
        if not self.config.rate_leveling:
            return 0
        deficit = self.quota_per_interval - proposed
        if deficit <= 0:
            return 0
        # One Phase 2 message covers the whole skip range (paper: "the
        # coordinator can propose to skip several consensus instances in a
        # single message").
        self.role.propose_skip(deficit)
        self.total_skips += deficit
        return deficit
