"""Deployment builder for Multi-Ring Paxos topologies.

Experiments and services need to wire many rings across many nodes: each ring
has an ordered member list, per-member roles, a storage mode and possibly its
own disk (Figure 6 attaches one disk per ring).  :class:`Deployment` keeps
that wiring declarative:

* :meth:`Deployment.add_node` creates (or returns) a named
  :class:`~repro.multiring.node.MultiRingNode`, optionally placed on a WAN
  site;
* :meth:`Deployment.add_ring` registers a ring in the coordination registry
  and joins every member node to it;
* :meth:`Deployment.multicast` submits values through a proposer of the
  target group (round-robin over proposers, like a client choosing a
  proposer).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import MultiRingConfig, RingConfig
from repro.coordination.registry import Registry, RingDescriptor
from repro.errors import ConfigurationError, MulticastError
from repro.multiring.node import MultiRingNode
from repro.runtime.cpu import CPUConfig
from repro.runtime.interfaces import Runtime, StableStore, StorageMode
from repro.types import GroupId, Value

__all__ = ["RingSpec", "Deployment"]


@dataclass
class RingSpec:
    """Declarative description of one ring (one multicast group)."""

    group: GroupId
    #: Ring members in ring order.  Every name must be (or become) a node.
    members: List[str]
    #: Acceptors; defaults to all members.
    acceptors: Optional[List[str]] = None
    #: Proposers; defaults to all members.
    proposers: Optional[List[str]] = None
    #: Learners; defaults to all members.
    learners: Optional[List[str]] = None
    #: Storage mode of this ring's acceptor logs.
    storage_mode: StorageMode = StorageMode.MEMORY
    #: Force a specific coordinator (defaults to the first acceptor in ring order).
    coordinator: Optional[str] = None
    #: If True, all acceptors of the ring share a single disk; otherwise each
    #: acceptor gets its own device (the paper's Figure 6 uses one disk per
    #: ring on every machine).
    share_disk: bool = False

    def resolved_acceptors(self) -> List[str]:
        return list(self.acceptors) if self.acceptors is not None else list(self.members)

    def resolved_proposers(self) -> List[str]:
        return list(self.proposers) if self.proposers is not None else list(self.members)

    def resolved_learners(self) -> List[str]:
        return list(self.learners) if self.learners is not None else list(self.members)


class Deployment:
    """A set of Multi-Ring Paxos nodes and the rings connecting them."""

    def __init__(
        self,
        world: Runtime,
        config: Optional[MultiRingConfig] = None,
        registry: Optional[Registry] = None,
    ) -> None:
        self.world = world
        self.config = config or MultiRingConfig.datacenter()
        self.registry = registry or Registry()
        self.nodes: Dict[str, MultiRingNode] = {}
        self.rings: Dict[GroupId, RingDescriptor] = {}
        self.ring_specs: Dict[GroupId, RingSpec] = {}
        self._proposer_rr: Dict[GroupId, "itertools.cycle"] = {}
        self._ring_disks: Dict[GroupId, Dict[str, StableStore]] = {}

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        site: Optional[str] = None,
        cpu_config: Optional[CPUConfig] = None,
    ) -> MultiRingNode:
        """Create a node (idempotent: an existing node with that name is returned)."""
        if name in self.nodes:
            return self.nodes[name]
        node = MultiRingNode(
            self.world,
            self.registry,
            name,
            config=self.config,
            site=site,
            cpu_config=cpu_config,
        )
        self.nodes[name] = node
        return node

    def node(self, name: str) -> MultiRingNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    # ------------------------------------------------------------------
    # rings
    # ------------------------------------------------------------------
    def add_ring(
        self,
        spec: RingSpec,
        sites: Optional[Dict[str, str]] = None,
        ring_config: Optional[RingConfig] = None,
        defer_learners: Optional[Sequence[str]] = None,
    ) -> RingDescriptor:
        """Register and wire the ring described by ``spec``.

        Missing member nodes are created on the fly (placed on ``sites`` when
        given).  Returns the ring descriptor.

        ``defer_learners`` names learners that join the ring but do not yet
        deliver from it: their merge splice happens later, at the round
        boundary agreed through the reconfiguration subsystem.  Used when a
        ring is added to a *running* deployment whose learners already
        subscribe to other rings.
        """
        if spec.group in self.rings:
            raise ConfigurationError(f"ring {spec.group!r} already exists")
        deferred = set(defer_learners or ())
        acceptors = spec.resolved_acceptors()
        descriptor = self.registry.register_ring(
            spec.group,
            members_in_ring_order=spec.members,
            proposers=spec.resolved_proposers(),
            acceptors=acceptors,
            learners=spec.resolved_learners(),
            coordinator=spec.coordinator,
        )
        config = ring_config or self.config.ring.with_storage(spec.storage_mode)

        shared_disk = self.world.new_store(spec.storage_mode) if spec.share_disk else None
        disks: Dict[str, StableStore] = {}
        for member in spec.members:
            site = sites.get(member) if sites else None
            node = self.add_node(member, site=site)
            disk = None
            if member in acceptors:
                disk = shared_disk if spec.share_disk else self.world.new_store(spec.storage_mode)
                if disk is not None:
                    disks[member] = disk
            node.join_ring(
                spec.group,
                ring_config=config,
                disk=disk,
                defer_subscribe=member in deferred,
            )
        self.rings[spec.group] = descriptor
        self.ring_specs[spec.group] = spec
        self._ring_disks[spec.group] = disks
        self._proposer_rr[spec.group] = itertools.cycle(spec.resolved_proposers())
        return descriptor

    def ring(self, group: GroupId) -> RingDescriptor:
        try:
            return self.rings[group]
        except KeyError:
            raise ConfigurationError(f"unknown ring {group!r}") from None

    def groups(self) -> List[GroupId]:
        return list(self.rings)

    def ring_disk(self, group: GroupId, member: str) -> Optional[StableStore]:
        return self._ring_disks.get(group, {}).get(member)

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def multicast(self, group: GroupId, payload, size_bytes: int, via: Optional[str] = None) -> Value:
        """Multicast through a proposer of ``group`` (round-robin unless ``via`` is given)."""
        if group not in self.rings:
            raise MulticastError(f"unknown group {group!r}")
        proposer = via or next(self._proposer_rr[group])
        return self.node(proposer).multicast(group, payload, size_bytes)

    def learners_of(self, group: GroupId) -> List[MultiRingNode]:
        return [self.node(name) for name in self.ring(group).learners]

    def coordinator_of(self, group: GroupId) -> MultiRingNode:
        return self.node(self.ring(group).coordinator)

    def start(self) -> None:
        self.world.start()

    def run(self, until: Optional[float] = None) -> float:
        return self.world.run(until=until)
