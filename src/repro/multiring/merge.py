"""Deterministic merge of per-ring decision streams.

Section 4: *"Learners deliver messages from rings they subscribe to in
round-robin, following the order given by the ring identifier.  More
precisely, a learner delivers messages decided in M consensus instances from
the first ring, then delivers messages decided in M consensus instances from
the second ring, and so on."*

:class:`DeterministicMerge` implements exactly that.  Decisions arrive per
ring (possibly out of instance order during recovery); the merge buffers them
and releases deliveries only in the globally deterministic order, so that any
two learners subscribing to the same set of groups deliver the same sequence.
Skip instances (rate leveling) are consumed by the merge but not delivered to
the application.  Batched instances (coordinator-side batching packs several
values into one consensus instance) are unpacked here: each inner value
becomes its own application delivery, in packing order, while the instance
still counts as a single slot of the M-per-ring round-robin quota.

The merge also exposes the *delivery cursor* -- for every group, the next
consensus instance to deliver -- which is precisely the checkpoint tuple
``k_p`` used by the recovery protocol (Section 5.2, Predicate 1).

Subscription sets are **versioned**, not static: the reconfiguration
subsystem (:mod:`repro.reconfig`) splices new rings into the merge at an
agreed *round boundary*.  A group registered with
:meth:`add_pending_group` buffers decisions without delivering them; once
:meth:`set_join_round` fixes its join round ``R``, the group participates in
the round-robin from round ``R`` onwards, delivering from its instance 0.
Because the join round is derived from the position of a reconfiguration
command in the delivery sequence itself, every learner of a partition splices
the ring at exactly the same point and determinism is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import MulticastError
from repro.types import GroupId, InstanceId, Value, ValueBatch

__all__ = ["Delivery", "DeterministicMerge"]


@dataclass(slots=True)
class Delivery:
    """One application-visible delivery.

    Slotted and non-frozen (one is allocated per delivered value, where the
    frozen ``object.__setattr__`` init cost is measurable); treat instances
    as immutable.
    """

    group: GroupId
    instance: InstanceId
    value: Value


class DeterministicMerge:
    """Round-robin merge of decided instances from multiple rings."""

    __slots__ = (
        "_groups",
        "m",
        "_deliver",
        "_buffers",
        "_next_instance",
        "_join_round",
        "_round",
        "_round_index",
        "_delivered_in_round",
        "_active_cache",
        "subscription_version",
        "delivered_count",
        "skipped_count",
        "batched_instances",
        "deliveries",
        "keep_history",
        "paused",
        "_advancing",
    )

    def __init__(
        self,
        groups: Sequence[GroupId],
        m: int = 1,
        deliver: Optional[Callable[[Delivery], None]] = None,
        join_rounds: Optional[Dict[GroupId, Optional[int]]] = None,
    ) -> None:
        if m < 1:
            raise MulticastError("the merge granularity M must be at least 1")
        #: Groups in delivery order (the paper orders them by ring identifier).
        self._groups: List[GroupId] = sorted(dict.fromkeys(groups))
        self.m = m
        self._deliver = deliver
        self._buffers: Dict[GroupId, Dict[InstanceId, Value]] = {g: {} for g in self._groups}
        self._next_instance: Dict[GroupId, InstanceId] = {g: 0 for g in self._groups}
        #: Round at which each group joined the round-robin.  ``None`` marks a
        #: *pending* group: decisions are buffered but never delivered until a
        #: join round is fixed with :meth:`set_join_round`.
        self._join_round: Dict[GroupId, Optional[int]] = {g: 0 for g in self._groups}
        if join_rounds:
            for group, round_ in join_rounds.items():
                if group not in self._buffers:
                    self._groups = sorted(self._groups + [group])
                    self._buffers[group] = {}
                    self._next_instance[group] = 0
                self._join_round[group] = round_
        self._round = 0
        self._round_index = 0
        self._delivered_in_round = 0
        self._active_cache: Optional[List[GroupId]] = None
        #: Bumped on every subscription-set change (add/splice); lets nodes and
        #: the registry track which configuration epoch a learner runs.
        self.subscription_version = 0
        self.delivered_count = 0
        self.skipped_count = 0
        #: Instances that carried more than one application value
        #: (coordinator-side batching).
        self.batched_instances = 0
        self.deliveries: List[Delivery] = []
        #: When True, deliveries are appended to :attr:`deliveries` (useful in
        #: tests); large experiments disable it to save memory.
        self.keep_history = True
        #: While paused, decisions are buffered but nothing is delivered.
        #: Used during replica recovery: live decisions keep arriving while
        #: the checkpoint is being installed and must not be applied early.
        self.paused = False
        # Re-entrancy guard: delivery callbacks (e.g. splice activation) may
        # call back into advance(); the outer loop picks up the new state.
        self._advancing = False

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def groups(self) -> List[GroupId]:
        """Every known group, including pending (not yet spliced) ones."""
        return list(self._groups)

    def has_group(self, group: GroupId) -> bool:
        """O(1) subscription check (``groups`` builds a list; this does not)."""
        return group in self._buffers

    @property
    def active_groups(self) -> List[GroupId]:
        """Groups participating in the round-robin at the current round."""
        return list(self._active())

    @property
    def current_round(self) -> int:
        return self._round

    def join_round(self, group: GroupId) -> Optional[int]:
        return self._join_round[group]

    def subscription_schedule(self) -> Dict[GroupId, Optional[int]]:
        """``group -> join round`` (``None`` for pending groups)."""
        return dict(self._join_round)

    def add_group(self, group: GroupId) -> None:
        """Subscribe to an additional group (only before any delivery from it)."""
        if group in self._join_round and self._join_round[group] is not None:
            return
        self._register(group, self._round)
        # Restart the round-robin deterministically from the first group.
        self._round_index = 0
        self._delivered_in_round = 0

    def add_pending_group(self, group: GroupId) -> None:
        """Start buffering ``group``'s decisions without delivering them.

        Used while a ring is being added live: the learner already receives
        decisions from the new ring, but delivery only starts at the splice
        round agreed through :meth:`set_join_round`.
        """
        if group in self._buffers:
            return
        self._register(group, None)

    def set_join_round(self, group: GroupId, round_: int) -> None:
        """Fix the round at which a pending ``group`` enters the round-robin."""
        if group not in self._buffers:
            self._register(group, round_)
        existing = self._join_round[group]
        if existing is not None:
            if existing != round_:
                raise MulticastError(
                    f"group {group!r} already joined at round {existing}, "
                    f"cannot re-join at round {round_}"
                )
            return
        if round_ <= self._round:
            raise MulticastError(
                f"group {group!r} cannot join at round {round_}: "
                f"the merge is already at round {self._round}"
            )
        self._join_round[group] = round_
        self._invalidate_active()
        self.subscription_version += 1
        self.advance()

    def _register(self, group: GroupId, round_: Optional[int]) -> None:
        if group not in self._buffers:
            self._groups = sorted(self._groups + [group])
            self._buffers[group] = {}
            self._next_instance[group] = 0
        self._join_round[group] = round_
        self._invalidate_active()
        self.subscription_version += 1

    def set_deliver_callback(self, deliver: Callable[[Delivery], None]) -> None:
        self._deliver = deliver

    # ------------------------------------------------------------------
    # input
    # ------------------------------------------------------------------
    def on_decision(self, group: GroupId, instance: InstanceId, value: Value) -> None:
        """Feed one decided instance from ``group``; drains whatever became deliverable."""
        buffer = self._buffers.get(group)
        if buffer is None:
            raise MulticastError(f"not subscribed to group {group!r}")
        next_instance = self._next_instance[group]
        if instance < next_instance:
            return  # duplicate (e.g. redelivered during recovery)
        buffer[instance] = value
        # Only a decision at the group's cursor can unblock delivery right
        # now; instances buffered ahead of the cursor are consumed inside a
        # later advance loop when the cursor reaches them.  (advance()
        # inlined: this is the single hottest merge entry point.)
        if instance == next_instance and not self.paused and not self._advancing:
            self._advancing = True
            try:
                self._advance_loop()
            finally:
                self._advancing = False

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Suspend deliveries (decisions are still buffered)."""
        self.paused = True

    def resume(self) -> int:
        """Resume deliveries and drain whatever became deliverable while paused."""
        self.paused = False
        return self.advance()

    def _invalidate_active(self) -> None:
        self._active_cache = None

    def _active(self) -> List[GroupId]:
        if self._active_cache is None:
            self._active_cache = [
                g
                for g in self._groups
                if self._join_round[g] is not None and self._join_round[g] <= self._round
            ]
        return self._active_cache

    def advance(self) -> int:
        """Deliver everything currently deliverable; return how many instances advanced."""
        if self.paused or self._advancing:
            return 0
        self._advancing = True
        try:
            return self._advance_loop()
        finally:
            self._advancing = False

    def _advance_loop(self) -> int:
        advanced = 0
        # Hot-path bindings: this loop runs once per decided instance on
        # every learner.  The outer dicts are only ever mutated in place, so
        # the references stay valid across delivery callbacks.
        buffers = self._buffers
        next_instance = self._next_instance
        deliver = self._deliver
        keep_history = self.keep_history
        history = self.deliveries
        m = self.m
        while True:
            active = self._active_cache
            if active is None:
                active = self._active()
            if not active:
                break
            if self._round_index >= len(active):
                # Defensive: the active set shrank (cannot happen today, groups
                # never leave mid-round); realign at the next round boundary.
                self._round_index = 0
                self._round += 1
                self._invalidate_active()
                continue
            group = active[self._round_index]
            buffer = buffers[group]
            instance = next_instance[group]
            if instance not in buffer:
                break  # the current ring is behind: wait (this is what rate leveling unblocks)
            value = buffer.pop(instance)
            next_instance[group] = instance + 1
            advanced += 1
            if value.is_skip:
                self.skipped_count += 1
            else:
                # A batched instance (coordinator-side batching) unpacks into
                # several application deliveries, but still consumes exactly
                # one slot of the M-instances-per-ring round-robin quota:
                # the round structure is defined over consensus instances,
                # not over the values they carry.
                payload = value.payload
                if isinstance(payload, ValueBatch):
                    inner_values = payload.values
                    if len(inner_values) > 1:
                        self.batched_instances += 1
                else:
                    inner_values = (value,)
                for inner in inner_values:
                    self.delivered_count += 1
                    # Statistics-only runs (no history, no callback) skip
                    # the Delivery allocation entirely.
                    if keep_history or deliver is not None:
                        delivery = Delivery(group, instance, inner)
                        if keep_history:
                            history.append(delivery)
                        if deliver is not None:
                            deliver(delivery)
            self._delivered_in_round += 1
            if self._delivered_in_round >= m:
                self._delivered_in_round = 0
                self._round_index += 1
                if self._round_index >= len(active):
                    self._round_index = 0
                    self._round += 1
                    self._invalidate_active()
        return advanced

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------
    def delivery_cursor(self) -> Dict[GroupId, InstanceId]:
        """For each active group, the next instance that will be delivered.

        A checkpoint taken now is identified by this tuple: it reflects the
        effect of every instance strictly below the cursor, per group.
        Pending groups (registered but not yet spliced) are excluded: no
        instance of theirs has been delivered.
        """
        return {
            g: self._next_instance[g]
            for g in self._groups
            if self._join_round[g] is not None
        }

    def next_instance(self, group: GroupId) -> InstanceId:
        return self._next_instance[group]

    def fast_forward(self, cursor: Dict[GroupId, InstanceId]) -> None:
        """Skip directly to ``cursor`` (used after installing a checkpoint).

        Buffered decisions below the new cursor are discarded.  The round-robin
        pointer is recomputed from the cursor so that the post-recovery
        delivery order is exactly the one a replica that never crashed would
        follow (Predicate 1 guarantees the cursor is a valid merge prefix:
        ``x < y  =>  k[x] >= k[y]`` among groups with equal join rounds).
        """
        for group, instance in cursor.items():
            if group not in self._buffers:
                raise MulticastError(f"not subscribed to group {group!r}")
            if instance < self._next_instance[group]:
                raise MulticastError(
                    f"cannot fast-forward group {group!r} backwards "
                    f"({self._next_instance[group]} -> {instance})"
                )
            self._next_instance[group] = instance
            self._buffers[group] = {
                i: v for i, v in self._buffers[group].items() if i >= instance
            }
        self._recompute_round_position()
        self.advance()

    def _recompute_round_position(self) -> None:
        """Derive ``(_round, _round_index, _delivered_in_round)`` from the cursor.

        A group ``g`` that joined at round ``R_g`` and whose next instance is
        ``n_g`` has completed ``R_g + n_g // M`` rounds; the merge's current
        round is the minimum over the non-pending groups.  Within that round,
        the active group is the first (in identifier order) that has not
        finished its M instances of the round.
        """
        scheduled = [g for g in self._groups if self._join_round[g] is not None]
        if not scheduled:
            self._round = 0
            self._round_index = 0
            self._delivered_in_round = 0
            self._invalidate_active()
            return
        self._round = min(
            self._join_round[g] + self._next_instance[g] // self.m for g in scheduled
        )
        self._invalidate_active()
        active = self._active()
        for index, group in enumerate(active):
            done_in_round = self._next_instance[group] - (
                self._round - self._join_round[group]
            ) * self.m
            if done_in_round < self.m:
                self._round_index = index
                self._delivered_in_round = done_in_round
                return
        # Every active group finished the round (only possible when the cursor
        # is exactly at a round boundary): start the next round.
        self._round += 1
        self._round_index = 0
        self._delivered_in_round = 0
        self._invalidate_active()

    def pending(self, group: GroupId) -> int:
        """Number of buffered (decided but not yet deliverable) instances for ``group``."""
        return len(self._buffers[group])
