"""Deterministic merge of per-ring decision streams.

Section 4: *"Learners deliver messages from rings they subscribe to in
round-robin, following the order given by the ring identifier.  More
precisely, a learner delivers messages decided in M consensus instances from
the first ring, then delivers messages decided in M consensus instances from
the second ring, and so on."*

:class:`DeterministicMerge` implements exactly that.  Decisions arrive per
ring (possibly out of instance order during recovery); the merge buffers them
and releases deliveries only in the globally deterministic order, so that any
two learners subscribing to the same set of groups deliver the same sequence.
Skip instances (rate leveling) are consumed by the merge but not delivered to
the application.

The merge also exposes the *delivery cursor* -- for every group, the next
consensus instance to deliver -- which is precisely the checkpoint tuple
``k_p`` used by the recovery protocol (Section 5.2, Predicate 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import MulticastError
from repro.types import GroupId, InstanceId, Value

__all__ = ["Delivery", "DeterministicMerge"]


@dataclass(frozen=True)
class Delivery:
    """One application-visible delivery."""

    group: GroupId
    instance: InstanceId
    value: Value


class DeterministicMerge:
    """Round-robin merge of decided instances from multiple rings."""

    def __init__(
        self,
        groups: Sequence[GroupId],
        m: int = 1,
        deliver: Optional[Callable[[Delivery], None]] = None,
    ) -> None:
        if m < 1:
            raise MulticastError("the merge granularity M must be at least 1")
        #: Groups in delivery order (the paper orders them by ring identifier).
        self._groups: List[GroupId] = sorted(dict.fromkeys(groups))
        self.m = m
        self._deliver = deliver
        self._buffers: Dict[GroupId, Dict[InstanceId, Value]] = {g: {} for g in self._groups}
        self._next_instance: Dict[GroupId, InstanceId] = {g: 0 for g in self._groups}
        self._round_index = 0
        self._delivered_in_round = 0
        self.delivered_count = 0
        self.skipped_count = 0
        self.deliveries: List[Delivery] = []
        #: When True, deliveries are appended to :attr:`deliveries` (useful in
        #: tests); large experiments disable it to save memory.
        self.keep_history = True
        #: While paused, decisions are buffered but nothing is delivered.
        #: Used during replica recovery: live decisions keep arriving while
        #: the checkpoint is being installed and must not be applied early.
        self.paused = False

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def groups(self) -> List[GroupId]:
        return list(self._groups)

    def add_group(self, group: GroupId) -> None:
        """Subscribe to an additional group (only before any delivery from it)."""
        if group in self._groups:
            return
        self._groups = sorted(self._groups + [group])
        self._buffers.setdefault(group, {})
        self._next_instance.setdefault(group, 0)
        # Restart the round-robin deterministically from the first group.
        self._round_index = 0
        self._delivered_in_round = 0

    def set_deliver_callback(self, deliver: Callable[[Delivery], None]) -> None:
        self._deliver = deliver

    # ------------------------------------------------------------------
    # input
    # ------------------------------------------------------------------
    def on_decision(self, group: GroupId, instance: InstanceId, value: Value) -> None:
        """Feed one decided instance from ``group``; drains whatever became deliverable."""
        if group not in self._buffers:
            raise MulticastError(f"not subscribed to group {group!r}")
        if instance < self._next_instance[group]:
            return  # duplicate (e.g. redelivered during recovery)
        self._buffers[group][instance] = value
        self.advance()

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Suspend deliveries (decisions are still buffered)."""
        self.paused = True

    def resume(self) -> int:
        """Resume deliveries and drain whatever became deliverable while paused."""
        self.paused = False
        return self.advance()

    def advance(self) -> int:
        """Deliver everything currently deliverable; return how many instances advanced."""
        if not self._groups or self.paused:
            return 0
        advanced = 0
        while True:
            group = self._groups[self._round_index]
            buffer = self._buffers[group]
            instance = self._next_instance[group]
            if instance not in buffer:
                break  # the current ring is behind: wait (this is what rate leveling unblocks)
            value = buffer.pop(instance)
            self._next_instance[group] = instance + 1
            advanced += 1
            if value.is_skip:
                self.skipped_count += 1
            else:
                self.delivered_count += 1
                delivery = Delivery(group, instance, value)
                if self.keep_history:
                    self.deliveries.append(delivery)
                if self._deliver is not None:
                    self._deliver(delivery)
            self._delivered_in_round += 1
            if self._delivered_in_round >= self.m:
                self._delivered_in_round = 0
                self._round_index = (self._round_index + 1) % len(self._groups)
        return advanced

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------
    def delivery_cursor(self) -> Dict[GroupId, InstanceId]:
        """For each group, the next instance that will be delivered.

        A checkpoint taken now is identified by this tuple: it reflects the
        effect of every instance strictly below the cursor, per group.
        """
        return dict(self._next_instance)

    def next_instance(self, group: GroupId) -> InstanceId:
        return self._next_instance[group]

    def fast_forward(self, cursor: Dict[GroupId, InstanceId]) -> None:
        """Skip directly to ``cursor`` (used after installing a checkpoint).

        Buffered decisions below the new cursor are discarded.  The round-robin
        pointer is recomputed from the cursor so that the post-recovery
        delivery order is exactly the one a replica that never crashed would
        follow (Predicate 1 guarantees the cursor is a valid merge prefix:
        ``x < y  =>  k[x] >= k[y]``).
        """
        for group, instance in cursor.items():
            if group not in self._buffers:
                raise MulticastError(f"not subscribed to group {group!r}")
            if instance < self._next_instance[group]:
                raise MulticastError(
                    f"cannot fast-forward group {group!r} backwards "
                    f"({self._next_instance[group]} -> {instance})"
                )
            self._next_instance[group] = instance
            self._buffers[group] = {
                i: v for i, v in self._buffers[group].items() if i >= instance
            }
        self._recompute_round_position()
        self.advance()

    def _recompute_round_position(self) -> None:
        """Derive ``(_round_index, _delivered_in_round)`` from the per-group cursor.

        The merge delivers M instances from group 0, then M from group 1, and
        so on; therefore any reachable cursor has the shape "a prefix of groups
        finished round r, one group is partway through it, the rest have not
        started it".  The current round is ``min(cursor) // M`` and the active
        group is the first one that has not finished that round.
        """
        if not self._groups:
            self._round_index = 0
            self._delivered_in_round = 0
            return
        round_number = min(self._next_instance[g] for g in self._groups) // self.m
        for index, group in enumerate(self._groups):
            if self._next_instance[group] < (round_number + 1) * self.m:
                self._round_index = index
                self._delivered_in_round = self._next_instance[group] - round_number * self.m
                return
        # Every group finished round ``round_number`` (only possible when the
        # cursor is exactly at a round boundary): start the next round.
        self._round_index = 0
        self._delivered_in_round = 0

    def pending(self, group: GroupId) -> int:
        """Number of buffered (decided but not yet deliverable) instances for ``group``."""
        return len(self._buffers[group])
