"""Multi-Ring Paxos: atomic multicast from coordinated Ring Paxos rings.

This package is the paper's primary contribution (Section 4).  A deployment
consists of one Ring Paxos ring per multicast group; learners subscribe to any
subset of groups ("inverted" group addressing) and coordinate the rings with
two techniques:

* **deterministic merge** (:mod:`repro.multiring.merge`): learners deliver
  messages from the rings they subscribe to in round-robin, ``M`` consensus
  instances per ring, in group-identifier order -- this yields the acyclic
  delivery order atomic multicast requires;
* **rate leveling** (:mod:`repro.multiring.leveling`): coordinators of slow
  rings periodically (every ``Δ``) propose *skip* instances so that all rings
  progress at the maximum expected rate ``λ``, preventing replicas from being
  throttled by their slowest subscribed ring.

:class:`~repro.multiring.node.MultiRingNode` is the host process combining
ring roles, the merge engine and rate-leveling timers;
:class:`~repro.multiring.deployment.Deployment` wires whole topologies and is
the entry point used by the services, examples and benchmarks.
"""

from repro.multiring.merge import DeterministicMerge, Delivery
from repro.multiring.leveling import RateLeveler
from repro.multiring.node import MultiRingNode
from repro.multiring.deployment import Deployment, RingSpec

__all__ = [
    "DeterministicMerge",
    "Delivery",
    "RateLeveler",
    "MultiRingNode",
    "Deployment",
    "RingSpec",
]
