"""A MySQL-like single-node store.

The paper's second Figure 4 baseline: a single server providing strong
consistency trivially (there is only one copy of the data), with synchronous
commits for writes.  It has no replication and cannot scale horizontally,
which is exactly the property the paper contrasts MRP-Store against.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.services.mrpstore.partitioning import PartitionMap
from repro.services.mrpstore.state import MRPStoreStateMachine
from repro.runtime.cpu import CPU, CPUConfig
from repro.sim.disk import Disk, StorageMode, disk_for_mode
from repro.runtime.actor import Process
from repro.sim.world import World
from repro.smr.client import Request
from repro.smr.command import Command, Response, SubmitCommand
from repro.types import GroupId

__all__ = ["SingleServerStore"]

_WRITE_OPS = ("update", "insert", "delete", "rmw")


class _Server(Process):
    """The single database server."""

    def __init__(
        self,
        world: World,
        name: str,
        partition_map: PartitionMap,
        disk: Optional[Disk],
        site: Optional[str] = None,
    ) -> None:
        super().__init__(world, name, site)
        self.state = MRPStoreStateMachine("db", partition_map)
        self.cpu = CPU(world.sim, CPUConfig())
        self.disk = disk
        self.commands = 0

    def on_message(self, sender: str, payload) -> None:
        if not isinstance(payload, SubmitCommand):
            return
        self._execute(payload.command)

    def _execute(self, command: Command) -> None:
        self.commands += 1
        operation = command.operation
        result, size = self.state.execute(operation, "db")
        cpu_done = self.cpu.charge(nbytes=command.size_bytes + self.state.execution_cost_bytes(operation))
        if operation[0] in _WRITE_OPS and self.disk is not None:
            # Synchronous commit: the response waits for the redo-log fsync.
            done = self.disk.write(command.size_bytes + 128)
            done = max(done, cpu_done)
        else:
            done = cpu_done
        self.world.sim.schedule_at(
            max(done, self.now), self._reply, command, result if result is not None else ("miss",), size
        )

    def _reply(self, command: Command, result, size: int) -> None:
        if self.alive and self.world.has_process(command.client):
            self.send(
                command.client,
                Response(
                    command_id=command.command_id,
                    replica=self.name,
                    partition="db",
                    result=result,
                    result_size_bytes=size,
                ),
            )


class SingleServerStore:
    """A single-server SQL-like store with the MRP-Store client surface."""

    GROUP: GroupId = "sql"

    def __init__(
        self,
        world: World,
        storage_mode: StorageMode = StorageMode.SYNC_SSD,
        server_name: str = "mysql",
        site: Optional[str] = None,
    ) -> None:
        self.world = world
        # A single-partition map: every key lives on the one server.
        self.partition_map = PartitionMap.hashed(["db"], {"db": self.GROUP})
        self.server = _Server(
            world,
            server_name,
            self.partition_map,
            disk=disk_for_mode(world.sim, storage_mode),
            site=site,
        )

    # ------------------------------------------------------------------
    def key(self, index: int) -> str:
        return f"user{index:012d}"

    def read(self, key: str, series: Optional[str] = None) -> Request:
        return Request(("read", key), 64 + len(key), self.GROUP, 1, series)

    def update(self, key: str, value_size: int, series: Optional[str] = None) -> Request:
        return Request(("update", key, value_size), 64 + len(key) + value_size, self.GROUP, 1, series)

    def insert(self, key: str, value_size: int, series: Optional[str] = None) -> Request:
        return Request(("insert", key, value_size), 64 + len(key) + value_size, self.GROUP, 1, series)

    def delete(self, key: str, series: Optional[str] = None) -> Request:
        return Request(("delete", key), 64 + len(key), self.GROUP, 1, series)

    def read_modify_write(self, key: str, value_size: int, series: Optional[str] = None) -> Request:
        return Request(("rmw", key, value_size), 64 + len(key) + value_size, self.GROUP, 1, series)

    def scan(self, start_key: str, end_key: str, series: Optional[str] = None) -> Request:
        return Request(("scan", start_key, end_key), 96, self.GROUP, 1, series)

    def frontends_for_client(self, client_index: int = 0) -> Dict[GroupId, str]:
        return {self.GROUP: self.server.name}

    def load(self, record_count: int, value_size: int = 1024) -> None:
        for index in range(record_count):
            self.server.state.execute(("insert", self.key(index), value_size), "load")
