"""Baseline systems the paper compares against.

The paper's Figure 4 compares MRP-Store against Apache Cassandra and MySQL
under YCSB, and Figure 5 compares dLog against Apache Bookkeeper.  Those
systems are closed substrates from this reproduction's point of view, so each
is modelled by a small simulator-native system exhibiting the property the
paper uses it to contrast (the substitutions are documented in DESIGN.md):

* :mod:`repro.baselines.eventual_store` -- a Cassandra-like partitioned store:
  per-replica ordering only, consistency level ONE, asynchronous replication,
  no cross-partition ordering, expensive range scans;
* :mod:`repro.baselines.single_server` -- a MySQL-like single-node store:
  strong consistency trivially, synchronous commit, but no horizontal scaling;
* :mod:`repro.baselines.ensemble_log` -- a Bookkeeper-like ensemble log:
  entries written to an ensemble of bookies with a 2-of-3 ack quorum and
  aggressive write batching (large commit latency).
"""

from repro.baselines.eventual_store import EventualStore
from repro.baselines.single_server import SingleServerStore
from repro.baselines.ensemble_log import EnsembleLog

__all__ = ["EventualStore", "SingleServerStore", "EnsembleLog"]
