"""A Cassandra-like eventually consistent partitioned store.

Used as the Figure 4 baseline that "does not impose any ordering on requests":

* the client sends a request to the coordinator replica of the key's
  partition, which executes it locally and answers immediately (consistency
  level ONE);
* writes are replicated to the other replicas of the partition
  asynchronously, off the client's latency path;
* range scans have no global index: the coordinator fans the scan out to one
  replica of every partition and only answers once all of them responded,
  which is why Cassandra loses workload E in the paper.

The store reuses the MRP-Store client-library surface (``key``, ``read``,
``update``, ``insert``, ``scan``, ``read_modify_write``,
``frontends_for_client``) so the same YCSB generator drives both systems.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.net.message import ProtocolMessage
from repro.services.mrpstore.partitioning import PartitionMap
from repro.services.mrpstore.state import MRPStoreStateMachine
from repro.runtime.cpu import CPU, CPUConfig
from repro.sim.disk import Disk, StorageMode, disk_for_mode
from repro.runtime.actor import Process
from repro.sim.world import World
from repro.smr.client import Request
from repro.smr.command import Command, Response, SubmitCommand
from repro.types import GroupId

__all__ = ["EventualStore"]


@dataclass(frozen=True)
class _Replicate(ProtocolMessage):
    """Asynchronous replication of a write to the partition's other replicas."""

    operation: tuple
    operation_size: int


@dataclass(frozen=True)
class _ScanFanout(ProtocolMessage):
    """Coordinator-to-partition scan request."""

    request_id: int
    operation: tuple
    reply_to: str


@dataclass(frozen=True)
class _ScanPartial(ProtocolMessage):
    """Partition response to a fanned-out scan."""

    request_id: int
    partition: str
    result_size: int


class _EventualReplica(Process):
    """One replica of one partition."""

    def __init__(
        self,
        world: World,
        name: str,
        partition: str,
        partition_map: PartitionMap,
        peers: Sequence[str],
        scan_peers: Dict[str, str],
        disk: Optional[Disk],
        site: Optional[str] = None,
    ) -> None:
        super().__init__(world, name, site)
        self.partition = partition
        self.state = MRPStoreStateMachine(partition, partition_map)
        self.cpu = CPU(world.sim, CPUConfig())
        self.peers = list(peers)
        #: partition name -> replica to contact for fanned-out scans.
        self.scan_peers = dict(scan_peers)
        self.disk = disk
        self._pending_scans: Dict[int, Tuple[Command, str, set, int]] = {}

    # ------------------------------------------------------------------
    def on_message(self, sender: str, payload) -> None:
        if isinstance(payload, SubmitCommand):
            self._on_client_command(payload.command)
        elif isinstance(payload, _Replicate):
            self._apply_locally(payload.operation, charge_disk=True)
        elif isinstance(payload, _ScanFanout):
            self._on_scan_fanout(sender, payload)
        elif isinstance(payload, _ScanPartial):
            self._on_scan_partial(payload)

    def _apply_locally(self, operation: tuple, charge_disk: bool) -> Tuple[object, int]:
        result, size = self.state.execute(operation, "direct")
        self.cpu.charge(nbytes=self.state.execution_cost_bytes(operation))
        if charge_disk and self.disk is not None and operation[0] in ("update", "insert", "delete", "rmw"):
            # Commit-log append, asynchronous (memtable + commit log in Cassandra).
            self.disk.write_async(operation[2] if len(operation) > 2 else 64)
        return result, size

    def _on_client_command(self, command: Command) -> None:
        operation = command.operation
        if operation[0] == "scan":
            self._start_scan(command)
            return
        result, size = self._apply_locally(operation, charge_disk=True)
        if operation[0] in ("update", "insert", "delete", "rmw"):
            for peer in self.peers:
                self.send(peer, _Replicate(operation=operation, operation_size=command.size_bytes))
        done = self.cpu.charge(nbytes=command.size_bytes)
        self.world.sim.schedule_at(
            max(done, self.now),
            self._reply,
            command,
            result if result is not None else ("miss",),
            size,
        )

    def _reply(self, command: Command, result, size: int) -> None:
        if self.alive and self.world.has_process(command.client):
            self.send(
                command.client,
                Response(
                    command_id=command.command_id,
                    replica=self.name,
                    partition=self.partition,
                    result=result,
                    result_size_bytes=size,
                ),
            )

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def _start_scan(self, command: Command) -> None:
        local_result, local_size = self._apply_locally(command.operation, charge_disk=False)
        others = {p: peer for p, peer in self.scan_peers.items() if p != self.partition}
        if not others:
            self._reply(command, local_result, local_size)
            return
        self._pending_scans[command.command_id] = (command, self.partition, set(), local_size)
        for partition, peer in others.items():
            self.send(
                peer,
                _ScanFanout(request_id=command.command_id, operation=command.operation, reply_to=self.name),
            )

    def _on_scan_fanout(self, sender: str, msg: _ScanFanout) -> None:
        _result, size = self._apply_locally(msg.operation, charge_disk=False)
        self.send(msg.reply_to, _ScanPartial(request_id=msg.request_id, partition=self.partition, result_size=size))

    def _on_scan_partial(self, msg: _ScanPartial) -> None:
        pending = self._pending_scans.get(msg.request_id)
        if pending is None:
            return
        command, _partition, seen, total_size = pending
        seen.add(msg.partition)
        total_size += msg.result_size
        self._pending_scans[msg.request_id] = (command, _partition, seen, total_size)
        if len(seen) >= len(self.scan_peers) - 1:
            del self._pending_scans[msg.request_id]
            self._reply(command, ("scan", "all", len(seen) + 1), total_size)


class EventualStore:
    """A partitioned, replication-factor-N, eventually consistent store."""

    def __init__(
        self,
        world: World,
        partitions: int = 3,
        replication_factor: int = 3,
        scheme: str = "hash",
        key_space: int = 100000,
        storage_mode: StorageMode = StorageMode.ASYNC_SSD,
    ) -> None:
        if partitions < 1 or replication_factor < 1:
            raise ConfigurationError("partitions and replication factor must be positive")
        self.world = world
        self.key_space = key_space
        partition_names = [f"c{i}" for i in range(partitions)]
        groups = {name: f"cass-{name}" for name in partition_names}
        self.partition_map = PartitionMap.hashed(partition_names, groups)
        self.replicas: Dict[str, List[_EventualReplica]] = {}

        # First build the name topology so every replica knows its peers.
        names: Dict[str, List[str]] = {
            partition: [f"{partition}-node{i}" for i in range(replication_factor)]
            for partition in partition_names
        }
        scan_peers = {partition: names[partition][0] for partition in partition_names}
        for partition in partition_names:
            replicas: List[_EventualReplica] = []
            for index, name in enumerate(names[partition]):
                peers = [other for other in names[partition] if other != name]
                replica = _EventualReplica(
                    world,
                    name,
                    partition,
                    self.partition_map,
                    peers=peers,
                    scan_peers=scan_peers,
                    disk=disk_for_mode(world.sim, storage_mode),
                )
                replicas.append(replica)
            self.replicas[partition] = replicas
        self._frontend_cycle = itertools.count()

    # ------------------------------------------------------------------
    # client-library surface (same as MRP-Store)
    # ------------------------------------------------------------------
    def key(self, index: int) -> str:
        return f"user{index:012d}"

    def _group_of(self, key: str) -> GroupId:
        return self.partition_map.group_of_key(key)

    def read(self, key: str, series: Optional[str] = None) -> Request:
        return Request(("read", key), 64 + len(key), self._group_of(key), 1, series)

    def update(self, key: str, value_size: int, series: Optional[str] = None) -> Request:
        return Request(("update", key, value_size), 64 + len(key) + value_size, self._group_of(key), 1, series)

    def insert(self, key: str, value_size: int, series: Optional[str] = None) -> Request:
        return Request(("insert", key, value_size), 64 + len(key) + value_size, self._group_of(key), 1, series)

    def delete(self, key: str, series: Optional[str] = None) -> Request:
        return Request(("delete", key), 64 + len(key), self._group_of(key), 1, series)

    def read_modify_write(self, key: str, value_size: int, series: Optional[str] = None) -> Request:
        return Request(("rmw", key, value_size), 64 + len(key) + value_size, self._group_of(key), 1, series)

    def scan(self, start_key: str, end_key: str, series: Optional[str] = None) -> Request:
        return Request(("scan", start_key, end_key), 96, self._group_of(start_key), 1, series)

    def frontends_for_client(self, client_index: int = 0) -> Dict[GroupId, str]:
        mapping: Dict[GroupId, str] = {}
        for partition, replicas in self.replicas.items():
            group = self.partition_map.group_of_partition(partition)
            mapping[group] = replicas[client_index % len(replicas)].name
        return mapping

    def load(self, record_count: int, value_size: int = 1024) -> None:
        for index in range(record_count):
            key = self.key(index)
            partition = self.partition_map.partition_of(key)
            for replica in self.replicas[partition]:
                replica.state.execute(("insert", key, value_size), "load")

    def all_replicas(self) -> List[_EventualReplica]:
        return [replica for replicas in self.replicas.values() for replica in replicas]
