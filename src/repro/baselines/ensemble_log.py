"""A Bookkeeper-like ensemble log.

The Figure 5 baseline.  Apache Bookkeeper appends every entry to an ensemble
of bookies and acknowledges the client once a write quorum has made the entry
durable; bookies aggressively batch journal writes to maximise disk
utilization, which the paper identifies as the source of its large latency
("its aggressive batching mechanism ... attempts to maximize disk use by
writing in large chunks").

The model has two process kinds:

* the **gateway** (Bookkeeper's client library, co-located with the ledger
  writer): receives appends from the benchmark clients, fans each entry out
  to the ensemble, and answers the client once ``ack_quorum`` bookies
  acknowledged it;
* the **bookies**: buffer incoming entries and flush them to the journal disk
  in large synchronous batches (by size or by timer), acknowledging every
  entry in the batch only after the fsync completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import ConfigurationError
from repro.net.message import ProtocolMessage
from repro.runtime.cpu import CPU, CPUConfig
from repro.sim.disk import Disk, StorageMode, disk_for_mode
from repro.runtime.actor import Process
from repro.sim.world import World
from repro.smr.client import Request
from repro.smr.command import Command, Response, SubmitCommand
from repro.types import GroupId

__all__ = ["EnsembleLog"]


@dataclass(frozen=True)
class _AddEntry(ProtocolMessage):
    """Gateway -> bookie: append one entry to the journal."""

    entry_id: int
    size: int
    reply_to: str


@dataclass(frozen=True)
class _AddAck(ProtocolMessage):
    """Bookie -> gateway: the entry is durable in the journal."""

    entry_id: int
    bookie: str


class _Bookie(Process):
    """A storage node batching journal writes."""

    def __init__(
        self,
        world: World,
        name: str,
        disk: Disk,
        flush_bytes: int,
        flush_interval: float,
        site: Optional[str] = None,
    ) -> None:
        super().__init__(world, name, site)
        self.disk = disk
        self.flush_bytes = flush_bytes
        self.flush_interval = flush_interval
        self.cpu = CPU(world.sim, CPUConfig())
        self._pending: List[_AddEntry] = []
        self._pending_bytes = 0
        self._flush_timer = None
        self.entries_stored = 0

    def on_message(self, sender: str, payload) -> None:
        if not isinstance(payload, _AddEntry):
            return
        self.cpu.charge(nbytes=payload.size)
        self._pending.append(payload)
        self._pending_bytes += payload.size
        if self._pending_bytes >= self.flush_bytes:
            self._flush()
        elif self._flush_timer is None or not self._flush_timer.active:
            self._flush_timer = self.set_timer(self.flush_interval, self._flush)

    def _flush(self) -> None:
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        nbytes, self._pending_bytes = self._pending_bytes, 0
        self.entries_stored += len(batch)
        # One big synchronous journal write for the whole batch; every entry
        # in it is acknowledged when the fsync completes.
        self.disk.write(nbytes + 512, lambda batch=batch: self._acknowledge(batch))

    def _acknowledge(self, batch: List[_AddEntry]) -> None:
        if not self.alive:
            return
        for entry in batch:
            self.send(entry.reply_to, _AddAck(entry_id=entry.entry_id, bookie=self.name))


class _Gateway(Process):
    """The Bookkeeper client library: ensemble fan-out and quorum tracking."""

    def __init__(
        self,
        world: World,
        name: str,
        bookies: Sequence[str],
        ack_quorum: int,
        site: Optional[str] = None,
    ) -> None:
        super().__init__(world, name, site)
        self.bookies = list(bookies)
        self.ack_quorum = ack_quorum
        self.cpu = CPU(world.sim, CPUConfig())
        self._next_entry = 0
        self._pending: Dict[int, Command] = {}
        self._acks: Dict[int, Set[str]] = {}
        self.appends_completed = 0

    def on_message(self, sender: str, payload) -> None:
        if isinstance(payload, SubmitCommand):
            self._on_append(payload.command)
        elif isinstance(payload, _AddAck):
            self._on_ack(payload)

    def _on_append(self, command: Command) -> None:
        entry_id = self._next_entry
        self._next_entry += 1
        self._pending[entry_id] = command
        self._acks[entry_id] = set()
        self.cpu.charge(nbytes=command.size_bytes)
        size = command.operation[2] if len(command.operation) > 2 else command.size_bytes
        for bookie in self.bookies:
            self.send(bookie, _AddEntry(entry_id=entry_id, size=size, reply_to=self.name))

    def _on_ack(self, ack: _AddAck) -> None:
        command = self._pending.get(ack.entry_id)
        if command is None:
            return
        acks = self._acks[ack.entry_id]
        acks.add(ack.bookie)
        if len(acks) < self.ack_quorum:
            return
        del self._pending[ack.entry_id]
        del self._acks[ack.entry_id]
        self.appends_completed += 1
        if self.world.has_process(command.client):
            self.send(
                command.client,
                Response(
                    command_id=command.command_id,
                    replica=self.name,
                    partition="bookkeeper",
                    result=("appended", ack.entry_id),
                    result_size_bytes=16,
                ),
            )


class EnsembleLog:
    """A Bookkeeper-like log exposing the dLog client surface for appends."""

    GROUP: GroupId = "bookkeeper"

    def __init__(
        self,
        world: World,
        bookies: int = 3,
        ack_quorum: int = 2,
        storage_mode: StorageMode = StorageMode.SYNC_SSD,
        flush_bytes: int = 4 * 1024 * 1024,
        flush_interval: float = 0.1,
    ) -> None:
        if ack_quorum > bookies:
            raise ConfigurationError("the ack quorum cannot exceed the ensemble size")
        self.world = world
        bookie_names = [f"bookie-{i}" for i in range(bookies)]
        self.bookies = [
            _Bookie(
                world,
                name,
                disk=disk_for_mode(world.sim, storage_mode),
                flush_bytes=flush_bytes,
                flush_interval=flush_interval,
            )
            for name in bookie_names
        ]
        self.gateway = _Gateway(world, "bk-gateway", bookie_names, ack_quorum)

    # ------------------------------------------------------------------
    # dLog-compatible client surface (appends only)
    # ------------------------------------------------------------------
    def append(self, log: str, size: int, series: Optional[str] = None) -> Request:
        return Request(("append", log, size), 64 + size, self.GROUP, 1, series)

    def frontends_for_client(self, client_index: int = 0) -> Dict[GroupId, str]:
        return {self.GROUP: self.gateway.name}
