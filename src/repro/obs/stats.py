"""Statistics primitives shared by the observability layer and the benches.

These used to live in :mod:`repro.sim.monitor`; they are backend-neutral
(pure functions of recorded samples) so they now live here, next to the
metrics registry and tracer that consume them.  ``repro.sim.monitor``
re-exports them for backward compatibility.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["LatencyStats", "ThroughputTimeline", "percentile"]


@dataclass
class LatencyStats:
    """Summary statistics over a set of latency samples (seconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 0.50),
            p90=percentile(ordered, 0.90),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
            minimum=ordered[0],
            maximum=ordered[-1],
        )

    def as_millis(self) -> Dict[str, float]:
        """Return the statistics converted to milliseconds (for reports)."""
        return {
            "count": float(self.count),
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.p50 * 1e3,
            "p90_ms": self.p90 * 1e3,
            "p95_ms": self.p95 * 1e3,
            "p99_ms": self.p99 * 1e3,
            "min_ms": self.minimum * 1e3,
            "max_ms": self.maximum * 1e3,
        }


def percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already *sorted* sequence."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lower = int(math.floor(pos))
    upper = int(math.ceil(pos))
    if lower == upper:
        return ordered[lower]
    frac = pos - lower
    return ordered[lower] * (1.0 - frac) + ordered[upper] * frac


class ThroughputTimeline:
    """Operation completions bucketed into fixed-width time windows.

    Used for Figure 8 (throughput over runtime during a recovery) and for
    steady-state throughput computations that exclude warm-up and cool-down.
    """

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._ops: Dict[int, int] = defaultdict(int)
        self._bytes: Dict[int, int] = defaultdict(int)

    def record(self, time: float, size_bytes: int = 0) -> None:
        bucket = int(time // self.window)
        self._ops[bucket] += 1
        self._bytes[bucket] += size_bytes

    def buckets(self) -> List[Tuple[float, int, int]]:
        """Return ``(window_start_time, ops, bytes)`` tuples in time order."""
        if not self._ops:
            return []
        first = min(self._ops)
        last = max(self._ops)
        return [
            (bucket * self.window, self._ops.get(bucket, 0), self._bytes.get(bucket, 0))
            for bucket in range(first, last + 1)
        ]

    def ops_series(self) -> List[Tuple[float, float]]:
        """Return ``(time, ops_per_second)`` points for plotting/reporting."""
        return [(start, ops / self.window) for start, ops, _ in self.buckets()]

    def total_ops(self) -> int:
        return sum(self._ops.values())

    def total_bytes(self) -> int:
        return sum(self._bytes.values())
