"""A small, backend-agnostic metrics registry.

Design constraints, in order:

1. **Zero hot-path cost.**  The protocol hot paths (PR 4) already maintain
   plain integer counters on the node/role/merge objects -- the registry does
   not shadow them with instrument objects.  Instead, instrumented components
   register *collectors*: callables invoked only at :meth:`MetricsRegistry.
   snapshot` time that read those plain attributes and return samples.  A run
   that never snapshots pays nothing; a run that snapshots once pays once.
2. **Direct instruments only off the hot path.**  :class:`Counter`,
   :class:`Gauge` and :class:`Histogram` exist for cold paths (batch flushes,
   fsyncs, fault events) where an attribute-increment-per-event is fine.
3. **Deterministic export.**  Snapshots sort sample names so Prometheus text
   output and the JSON embedded in ``BENCH_*.json`` are stable across runs.

Sample names follow Prometheus conventions (``mrp_decisions_learned_total``)
with labels rendered as ``name{node="n0",group="g1"}``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: A single exported sample: (name, labels, value).
MetricSample = Tuple[str, Tuple[Tuple[str, str], ...], float]

#: Fixed bucket bounds (seconds) for latency histograms: 100us .. 10s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Fixed bucket bounds for size/count histograms (values, bytes, batch sizes).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536,
)


def _labels(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count (cold-path instrument)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def samples(self) -> List[MetricSample]:
        return [(self.name, (), self.value)]


class Gauge:
    """A value that can go up and down (queue depth, cursor lag, ...)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def samples(self) -> List[MetricSample]:
        return [(self.name, (), self.value)]


class Histogram:
    """A fixed-bucket histogram (cumulative counts, Prometheus-style).

    Buckets are chosen at construction; observations binary-search the
    upper-bound list.  The export carries cumulative ``_bucket`` samples with
    ``le`` labels plus ``_sum`` and ``_count``.
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(buckets)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def samples(self) -> List[MetricSample]:
        out: List[MetricSample] = []
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            out.append((f"{self.name}_bucket", (("le", _format_bound(bound)),), float(cumulative)))
        out.append((f"{self.name}_bucket", (("le", "+Inf"),), float(self.count)))
        out.append((f"{self.name}_sum", (), self.sum))
        out.append((f"{self.name}_count", (), float(self.count)))
        return out


def _format_bound(bound: float) -> str:
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


class MetricsRegistry:
    """Per-node (or per-world) registry of instruments, collectors and events.

    ``labels`` (typically ``{"node": name}``) are attached to every exported
    sample.  Collectors are ``() -> iterable of (name, value)`` or
    ``() -> iterable of (name, labels_dict, value)`` callables, invoked only
    at snapshot time.
    """

    def __init__(self, labels: Optional[Mapping[str, str]] = None) -> None:
        self.labels: Dict[str, str] = dict(labels or {})
        self._instruments: Dict[str, object] = {}
        self._collectors: List[Callable[[], Iterable]] = []
        self._events: List[Tuple[float, str, str]] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(name, lambda: Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._register(name, lambda: Histogram(name, help, buckets))

    def _register(self, name: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        return instrument

    def add_collector(self, collector: Callable[[], Iterable]) -> None:
        """Register a pull-collector read only at snapshot time."""
        self._collectors.append(collector)

    # ------------------------------------------------------------------
    # event log
    # ------------------------------------------------------------------
    def record_event(self, time: float, kind: str, detail: str = "") -> None:
        """Append a timestamped event (fault injections, reconfigurations...)."""
        self._events.append((time, kind, detail))

    def events(self) -> List[Dict[str, object]]:
        return [
            {"time": time, "kind": kind, "detail": detail}
            for time, kind, detail in self._events
        ]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def collect(self) -> List[MetricSample]:
        """All current samples (instruments + collectors), sorted by name."""
        samples: List[MetricSample] = []
        for name in sorted(self._instruments):
            samples.extend(self._instruments[name].samples())  # type: ignore[attr-defined]
        for collector in self._collectors:
            for item in collector():
                if len(item) == 2:
                    name, value = item
                    samples.append((name, (), float(value)))
                else:
                    name, labels, value = item
                    samples.append((name, _labels(labels), float(value)))
        base = tuple(sorted(self.labels.items()))
        if base:
            samples = [(name, base + labels, value) for name, labels, value in samples]
        samples.sort(key=lambda s: (s[0], s[1]))
        return samples

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe snapshot: flat metric map plus the event log."""
        metrics: Dict[str, float] = {}
        for name, labels, value in self.collect():
            extra = [(k, v) for k, v in labels if k not in self.labels]
            if extra:
                rendered = ",".join(f'{k}="{v}"' for k, v in extra)
                key = f"{name}{{{rendered}}}"
            else:
                key = name
            metrics[key] = value
        return {"labels": dict(self.labels), "metrics": metrics, "events": self.events()}

    def render_prometheus(self) -> str:
        """Render all samples in the Prometheus text exposition format."""
        lines: List[str] = []
        seen_help: set = set()
        for name, labels, value in self.collect():
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix):
                    candidate = family[: -len(suffix)]
                    if candidate in self._instruments and isinstance(
                        self._instruments[candidate], Histogram
                    ):
                        family = candidate
                        break
            instrument = self._instruments.get(family)
            if instrument is not None and family not in seen_help:
                seen_help.add(family)
                help_text = getattr(instrument, "help", "")
                if help_text:
                    lines.append(f"# HELP {family} {help_text}")
                kind = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}[
                    type(instrument)
                ]
                lines.append(f"# TYPE {family} {kind}")
            if labels:
                rendered = ",".join(f'{k}="{v}"' for k, v in labels)
                lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def merge_snapshots(snapshots: Mapping[str, Dict[str, object]]) -> Dict[str, object]:
    """Combine per-node snapshots into one BENCH_*.json ``observability`` section."""
    return {"nodes": dict(snapshots)}
