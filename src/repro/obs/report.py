"""Render span waterfalls and per-stage latency tables from trace logs.

Usage::

    python -m repro.obs.report BENCH_live_trace.jsonl
    python -m repro.obs.report BENCH_live_trace.jsonl --trace n0-17 --width 72

The input is one JSON span per line (as written by
:meth:`repro.obs.tracing.Tracer.dump_jsonl`) or a JSON document with a
top-level ``"spans"`` list.  Output is plain ASCII so it reads fine in CI
logs and over SSH.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.stats import LatencyStats
from repro.obs.tracing import STAGES

__all__ = ["load_spans", "render_waterfall", "render_stage_table", "main"]

_STAGE_ORDER = {stage: index for index, stage in enumerate(STAGES)}


def load_spans(path: str) -> List[Dict[str, object]]:
    """Load spans from a JSONL trace log (or a JSON doc with a spans list)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    text = text.strip()
    if not text:
        return []
    if text.startswith("{") and "\n{" not in text:
        document = json.loads(text)
        if isinstance(document, dict) and "spans" in document:
            return list(document["spans"])
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    return spans


def _by_trace(spans: Iterable[Dict[str, object]]) -> Dict[str, List[Dict[str, object]]]:
    grouped: Dict[str, List[Dict[str, object]]] = defaultdict(list)
    for span in spans:
        grouped[str(span.get("trace_id", "?"))].append(span)
    return grouped


def _sort_key(span: Dict[str, object]):
    return (
        float(span.get("start", 0.0)),
        _STAGE_ORDER.get(str(span.get("stage", "")), len(STAGES)),
    )


def render_waterfall(trace_id: str, spans: Sequence[Dict[str, object]], width: int = 60) -> str:
    """One trace's spans as an indented ASCII bar chart over a shared axis."""
    ordered = sorted(spans, key=_sort_key)
    t0 = min(float(s.get("start", 0.0)) for s in ordered)
    t1 = max(float(s.get("end", 0.0)) for s in ordered)
    span_of_time = max(t1 - t0, 1e-12)
    scale = width / span_of_time
    lines = [f"trace {trace_id}  (total {(t1 - t0) * 1e3:.3f} ms)"]
    for span in ordered:
        start = float(span.get("start", 0.0))
        end = float(span.get("end", 0.0))
        left = int((start - t0) * scale)
        bar = max(1, int(round((end - start) * scale)))
        label = f"{span.get('stage', '?'):<10} {span.get('node', '?'):<8}"
        where = span.get("group")
        if where is not None:
            label += f" {where}"
            if span.get("instance") is not None:
                label += f"/{span['instance']}"
        lines.append(
            f"  {label:<24} |{' ' * left}{'#' * bar}"
            f"  {(end - start) * 1e3:.3f} ms"
        )
    return "\n".join(lines)


def render_stage_table(spans: Iterable[Dict[str, object]]) -> str:
    """Per-stage latency percentile table over every span in the log."""
    by_stage: Dict[str, List[float]] = defaultdict(list)
    for span in spans:
        duration = float(span.get("end", 0.0)) - float(span.get("start", 0.0))
        by_stage[str(span.get("stage", "?"))].append(max(0.0, duration))
    header = f"{'stage':<12} {'count':>6} {'mean':>9} {'p50':>9} {'p90':>9} {'p99':>9} {'max':>9}"
    lines = [header, "-" * len(header)]
    ordered_stages = sorted(by_stage, key=lambda s: _STAGE_ORDER.get(s, len(STAGES)))
    for stage in ordered_stages:
        stats = LatencyStats.from_samples(by_stage[stage])
        lines.append(
            f"{stage:<12} {stats.count:>6} "
            f"{stats.mean * 1e3:>8.3f}m {stats.p50 * 1e3:>8.3f}m "
            f"{stats.p90 * 1e3:>8.3f}m {stats.p99 * 1e3:>8.3f}m "
            f"{stats.maximum * 1e3:>8.3f}m"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render span waterfalls and per-stage latency tables from a trace log.",
    )
    parser.add_argument("trace_log", help="span JSONL file (Tracer.dump_jsonl output)")
    parser.add_argument("--trace", help="render only this trace id")
    parser.add_argument(
        "--limit", type=int, default=5, help="max waterfalls to render (default 5)"
    )
    parser.add_argument("--width", type=int, default=60, help="waterfall bar width")
    parser.add_argument(
        "--stages-only", action="store_true", help="print only the per-stage table"
    )
    args = parser.parse_args(argv)

    spans = load_spans(args.trace_log)
    if not spans:
        print(f"no spans found in {args.trace_log}", file=sys.stderr)
        return 1
    grouped = _by_trace(spans)

    if args.trace is not None:
        if args.trace not in grouped:
            print(f"unknown trace id {args.trace!r}", file=sys.stderr)
            return 1
        selected = {args.trace: grouped[args.trace]}
    else:
        selected = grouped

    if not args.stages_only:
        # Prefer complete traces (those covering the most stages) first.
        ranked = sorted(
            selected.items(),
            key=lambda item: (-len({s.get("stage") for s in item[1]}), item[0]),
        )
        for trace_id, trace_spans in ranked[: max(0, args.limit)]:
            print(render_waterfall(trace_id, trace_spans, width=args.width))
            print()
    print(render_stage_table(spans))
    print(f"\n{len(spans)} spans across {len(grouped)} traces from {args.trace_log}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
