"""A tiny asyncio HTTP/1.0 listener exposing one node's observability.

Dependency-free on purpose (the repro image carries no web framework):
each connection reads one request line plus headers, serves one response
and closes.  That is all ``curl``/Prometheus scraping needs.

Routes:

``GET /healthz``            ``{"status": "ok", "node": ..., "time": ...}``
``GET /metrics``            Prometheus text exposition from the registry
``GET /spans``              JSON list of known trace ids
``GET /spans/<trace_id>``   JSON span list for one trace
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Optional, Tuple

from repro.obs import Observability

__all__ = ["ObsHTTPServer"]

_MAX_REQUEST_BYTES = 8192


class ObsHTTPServer:
    """Serves one node's :class:`Observability` bundle over localhost HTTP."""

    def __init__(
        self,
        obs: Observability,
        node: str,
        now: Optional[Callable[[], float]] = None,
    ) -> None:
        self.obs = obs
        self.node = node
        self.now = now or (lambda: 0.0)
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self.requests_served = 0

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        self._server = await asyncio.start_server(self._handle, host, port)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=5.0)
            if len(request) > _MAX_REQUEST_BYTES:
                raise ValueError("request line too long")
            # Drain headers until the blank line; we never need their values.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request.decode("latin-1").split()
            method, path = (parts + ["", ""])[:2]
            status, content_type, body = self._route(method, path)
            self.requests_served += 1
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (asyncio.TimeoutError, ValueError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    def _route(self, method: str, path: str) -> Tuple[str, str, bytes]:
        if method != "GET":
            return "405 Method Not Allowed", "text/plain", b"only GET is supported\n"
        path = path.split("?", 1)[0]
        if path == "/healthz":
            body = json.dumps(
                {"status": "ok", "node": self.node, "time": self.now()}
            ).encode()
            return "200 OK", "application/json", body
        if path == "/metrics":
            text = self.obs.metrics.render_prometheus()
            return "200 OK", "text/plain; version=0.0.4", text.encode()
        if path == "/spans":
            body = json.dumps({"traces": self.obs.tracer.trace_ids()}).encode()
            return "200 OK", "application/json", body
        if path.startswith("/spans/"):
            trace_id = path[len("/spans/") :]
            spans = [span.as_dict() for span in self.obs.tracer.spans_for(trace_id)]
            if not spans:
                return "404 Not Found", "application/json", b'{"error": "unknown trace"}'
            body = json.dumps({"trace_id": trace_id, "spans": spans}).encode()
            return "200 OK", "application/json", body
        return "404 Not Found", "text/plain", b"not found\n"
