"""Sampled causal tracing for multicast values.

A *trace* follows one application value end to end: the client/proposer
stamps a sampled :class:`~repro.types.Value` with a ``trace`` id, the id
rides the wire inside Phase 2 and Decision messages (codec v2), and each
protocol stage closes a :class:`Span` against the shared :class:`Tracer`:

``propose``     value creation -> coordinator starts the instance
``phase2``      Phase 2 circulation until a quorum of votes
``decide``      decision circulation until a learner learns it
``merge-wait``  learned -> released by the deterministic merge
``apply``       merge delivery -> application callbacks return

Sampling is deterministic (every ``sample_interval``-th proposed value), so
sim runs with the same seed trace the same values.  When ``enabled`` is
False every entry point is a cheap attribute check and **no** value is ever
stamped -- the wire bytes and golden delivery traces are identical to a
build without tracing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer", "STAGES"]

#: Canonical stage order for waterfall rendering.
STAGES: Tuple[str, ...] = ("propose", "phase2", "decide", "merge-wait", "apply")


@dataclass(slots=True)
class Span:
    """One closed stage interval of a traced value on one node."""

    trace_id: str
    stage: str
    node: str
    start: float
    end: float
    group: Optional[str] = None
    instance: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "trace_id": self.trace_id,
            "stage": self.stage,
            "node": self.node,
            "start": self.start,
            "end": self.end,
        }
        if self.group is not None:
            record["group"] = self.group
        if self.instance is not None:
            record["instance"] = self.instance
        return record


class Tracer:
    """Collects spans for sampled values; shared by every node of a runtime.

    ``sample_interval=N`` traces every Nth non-skip proposed value (1 traces
    everything, 0/disabled traces nothing).  Trace ids are
    ``"<proposer>-<uid>"`` -- unique because value uids are, and readable in
    logs.
    """

    __slots__ = ("enabled", "sample_interval", "spans", "_marks", "_proposed", "max_spans")

    def __init__(
        self,
        enabled: bool = False,
        sample_interval: int = 64,
        max_spans: int = 100_000,
    ) -> None:
        self.enabled = enabled
        self.sample_interval = max(0, int(sample_interval))
        self.max_spans = max_spans
        self.spans: List[Span] = []
        #: Open interval starts keyed by (trace_id, key) -- e.g. merge-wait
        #: begins when a traced value is learned and ends at merge release.
        self._marks: Dict[Tuple[str, str], float] = {}
        self._proposed = 0

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self, proposer: Optional[str], uid: int) -> Optional[str]:
        """Return a trace id for this proposal if it is sampled, else None."""
        if not self.enabled or self.sample_interval <= 0:
            return None
        self._proposed += 1
        if self._proposed % self.sample_interval != 1 and self.sample_interval != 1:
            return None
        return f"{proposer or 'anon'}-{uid}"

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        trace_id: str,
        stage: str,
        node: str,
        start: float,
        end: float,
        group: Optional[str] = None,
        instance: Optional[int] = None,
    ) -> None:
        if len(self.spans) >= self.max_spans:
            return
        self.spans.append(Span(trace_id, stage, node, start, end, group, instance))

    def mark(self, trace_id: str, key: str, time: float) -> None:
        """Open an interval (kept until :meth:`take_mark` closes it)."""
        self._marks.setdefault((trace_id, key), time)

    def take_mark(self, trace_id: str, key: str) -> Optional[float]:
        """Close an interval opened by :meth:`mark`; returns its start time."""
        return self._marks.pop((trace_id, key), None)

    # ------------------------------------------------------------------
    # queries / export
    # ------------------------------------------------------------------
    def trace_ids(self) -> List[str]:
        seen: List[str] = []
        known = set()
        for span in self.spans:
            if span.trace_id not in known:
                known.add(span.trace_id)
                seen.append(span.trace_id)
        return seen

    def spans_for(self, trace_id: str) -> List[Span]:
        return [span for span in self.spans if span.trace_id == trace_id]

    def as_dicts(self) -> List[Dict[str, object]]:
        return [span.as_dict() for span in self.spans]

    def dump_jsonl(self, path: str) -> int:
        """Write one JSON object per span; returns the number written."""
        with open(path, "w", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.as_dict(), sort_keys=True))
                handle.write("\n")
        return len(self.spans)

    def clear(self) -> None:
        self.spans.clear()
        self._marks.clear()
        self._proposed = 0
