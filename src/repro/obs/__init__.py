"""Backend-agnostic observability: causal tracing, metrics, introspection.

The layer has three pillars, each usable on the simulator **and** on the
live asyncio/TCP backend:

* :mod:`repro.obs.tracing` -- sampled per-value causal traces whose spans
  decompose delivery latency into propose / phase2 / decide / merge-wait /
  apply stages (the latency breakdown of the paper's figures).
* :mod:`repro.obs.metrics` -- a pull-based metrics registry exporting
  Prometheus text and JSON snapshots with zero hot-path overhead.
* :mod:`repro.obs.http` -- a tiny asyncio HTTP listener serving
  ``/metrics``, ``/healthz`` and ``/spans/<trace_id>`` per live node.

Runtimes carry one :class:`Observability` bundle on their ``obs`` attribute;
:func:`obs_of` fetches it, attaching a disabled default to runtimes built
before this layer existed so instrumented code never needs a None check.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
)
from repro.obs.stats import LatencyStats, ThroughputTimeline, percentile
from repro.obs.tracing import Span, Tracer, STAGES

__all__ = [
    "Observability",
    "obs_of",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "Span",
    "STAGES",
    "LatencyStats",
    "ThroughputTimeline",
    "percentile",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]


class Observability:
    """One runtime's tracer + metrics registry, bundled.

    A sim :class:`~repro.sim.world.World` owns one bundle shared by every
    process (single-process runtime); each live node owns its own.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracing: bool = False,
        trace_sample: int = 64,
        labels: dict | None = None,
    ) -> None:
        self.tracer = Tracer(enabled=tracing, sample_interval=trace_sample)
        self.metrics = MetricsRegistry(labels=labels)

    def snapshot(self) -> dict:
        """JSON-safe combined snapshot for BENCH_*.json sections."""
        snap = self.metrics.snapshot()
        snap["trace"] = {
            "enabled": self.tracer.enabled,
            "sample_interval": self.tracer.sample_interval,
            "spans": len(self.tracer.spans),
            "traces": len(self.tracer.trace_ids()),
        }
        return snap


_DEFAULT_OBS = Observability()  # disabled fallback shared by legacy runtimes


def obs_of(runtime) -> Observability:
    """The runtime's observability bundle (a disabled default if absent)."""
    obs = getattr(runtime, "obs", None)
    if obs is None:
        obs = Observability()
        try:
            runtime.obs = obs
        except (AttributeError, TypeError):
            return _DEFAULT_OBS
    return obs
