"""The reconfiguration controller.

A :class:`ReconfigController` is the control-plane process (in the paper's
deployment it would run next to Zookeeper) that sequences reconfigurations:

1. **ring addition** -- register the new ring in the registry, create and
   start its member processes (the world supports late joiners), and splice
   existing learners into the new ring at an agreed round boundary by
   multicasting a :class:`~repro.reconfig.commands.SpliceRing` command through
   a ring they already deliver from;

2. **key-range migration** -- compute the next version of a service's
   partition map, multicast a :class:`~repro.reconfig.commands.
   MigrationPrepare` on the *source* ring (the atomic handoff point), and
   publish the new map in the registry so clients and front-ends re-route.

The controller itself never touches replica state: every state transition is
driven by control commands delivered through the rings, which is what makes
the reconfiguration safe under concurrent traffic.  The controller merely
*initiates* steps and records them; it is stateless enough to be restartable
(all durable state lives in the registry and in the rings).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.coordination.registry import Registry, RingDescriptor
from repro.errors import CoordinationError
from repro.reconfig.commands import (
    MigrationPrepare,
    ProposeControl,
    SpliceRing,
    next_migration_id,
)
from repro.runtime.actor import Process
from repro.runtime.interfaces import Runtime
from repro.types import GroupId

__all__ = ["ReconfigController"]


class ReconfigController(Process):
    """Coordinator-driven reconfiguration of a running deployment."""

    def __init__(
        self,
        world: Runtime,
        deployment,
        name: str = "reconfig-controller",
        site: Optional[str] = None,
    ) -> None:
        super().__init__(world, name, site)
        self.deployment = deployment
        self.registry: Registry = deployment.registry
        #: Chronological record of initiated reconfiguration steps.
        self.events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def propose_control(self, group: GroupId, payload, size_bytes: Optional[int] = None) -> str:
        """Inject a control payload into ``group`` through a live proposer."""
        descriptor = self.registry.ring(group)
        proposer = self._pick_live(descriptor.proposers)
        if proposer is None:
            raise CoordinationError(f"no live proposer for group {group!r}")
        if size_bytes is None:
            size_bytes = getattr(payload, "size_bytes", 256)
        self.send_direct(
            proposer, ProposeControl(group=group, payload=payload, payload_bytes=size_bytes)
        )
        return proposer

    def send_direct(self, dest: str, msg) -> None:
        self.send(dest, msg, size_bytes=getattr(msg, "size_bytes", 128))

    def _pick_live(self, names: Sequence[str]) -> Optional[str]:
        for name in names:
            if self.world.has_process(name) and self.world.process(name).alive:
                return name
        return None

    # ------------------------------------------------------------------
    # ring addition
    # ------------------------------------------------------------------
    def add_ring(
        self,
        spec,
        sites: Optional[Dict[str, str]] = None,
        ring_config=None,
        splice_via: Optional[GroupId] = None,
    ) -> RingDescriptor:
        """Add a ring to the running deployment.

        Learner members that already deliver from other rings are *spliced*:
        they join the ring immediately (buffering its decisions) but start
        delivering only at the round boundary agreed through a
        :class:`SpliceRing` command multicast on ``splice_via`` -- a ring
        every such learner already subscribes to.  Brand-new learners simply
        start delivering from the new ring's first instance.
        """
        spliced = [
            name
            for name in spec.resolved_learners()
            if name in self.deployment.nodes and self.deployment.nodes[name].subscriptions
        ]
        if spliced and splice_via is None:
            raise CoordinationError(
                f"ring {spec.group!r} has learners with existing subscriptions "
                f"({spliced}); a splice_via carrier group is required"
            )
        descriptor = self.deployment.add_ring(
            spec, sites=sites, ring_config=ring_config, defer_learners=spliced
        )
        if spliced:
            carrier = self.registry.ring(splice_via)  # validates the carrier exists
            for learner in spliced:
                if splice_via not in self.deployment.nodes[learner].subscriptions:
                    raise CoordinationError(
                        f"learner {learner!r} does not subscribe to the splice "
                        f"carrier {splice_via!r}"
                    )
            self.propose_control(
                carrier.group, SpliceRing(group=spec.group, learners=tuple(spliced))
            )
        self.events.append(
            {
                "type": "add-ring",
                "group": spec.group,
                "at": self.now,
                "spliced_learners": list(spliced),
            }
        )
        self.world.monitor.increment("reconfig/rings_added")
        return descriptor

    # ------------------------------------------------------------------
    # elastic re-partitioning
    # ------------------------------------------------------------------
    def migrate(
        self,
        service: str,
        source_partition: str,
        new_partition: str,
        split_key: str,
        destination_group: GroupId,
        designated: str,
    ) -> Tuple[int, Any]:
        """Migrate ``[split_key, upper)`` of ``source_partition`` to ``new_partition``.

        The new partition lives on ``destination_group``.  ``designated`` is
        the source replica that ships the state and forwards late commands.
        Returns ``(migration_id, new_partition_map)``.
        """
        current = self.registry.partition_map(service)
        new_map = current.split_partition(
            source_partition, split_key, new_partition, destination_group
        )
        source_group = current.group_of_partition(source_partition)
        migration_id = next_migration_id()
        prepare = MigrationPrepare(
            migration_id=migration_id,
            service=service,
            new_map=new_map,
            source=source_partition,
            dest=new_partition,
            designated=designated,
        )
        self.propose_control(source_group, prepare)
        # Publish the new map (the paper stores it in Zookeeper): clients and
        # front-ends re-route from here on; commands still in flight under the
        # old map are forwarded by the designated source replica.
        self.registry.store_partition_map(service, new_map)
        self.events.append(
            {
                "type": "migrate",
                "migration_id": migration_id,
                "service": service,
                "source": source_partition,
                "dest": new_partition,
                "split_key": split_key,
                "at": self.now,
                "map_version": new_map.version,
            }
        )
        self.world.monitor.increment("reconfig/migrations_started")
        return migration_id, new_map
