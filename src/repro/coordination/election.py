"""Coordinator election.

Ring Paxos elects one of the acceptors as coordinator.  The paper handles
this through Zookeeper; the reproduction uses the deterministic rule
"first live acceptor in ring order", which every process can evaluate locally
from the registry's membership view.  The rule is stable (the coordinator
only changes when the current one crashes) because ring order is fixed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.errors import CoordinationError

__all__ = ["elect_coordinator"]


def elect_coordinator(
    acceptors_in_ring_order: Sequence[str],
    is_alive: Optional[Callable[[str], bool]] = None,
) -> str:
    """Return the coordinator: the first acceptor in ring order that is alive.

    ``is_alive`` defaults to "everyone is alive", which matches initial ring
    construction; during a run the registry passes the world's liveness view.
    """
    if not acceptors_in_ring_order:
        raise CoordinationError("cannot elect a coordinator from an empty acceptor set")
    alive = is_alive or (lambda _name: True)
    for name in acceptors_in_ring_order:
        if alive(name):
            return name
    raise CoordinationError("no live acceptor available for coordinator election")
