"""The configuration registry (Zookeeper substitute).

The registry stores, per world:

* **ring descriptors** -- which multicast group maps to which ring, the ring's
  member processes and their roles, and the current coordinator;
* **subscriptions** -- which learners subscribe to which groups (the paper's
  "inverted" group-addressing semantics: a learner may subscribe to any set of
  groups);
* **partition maps** -- the data-partitioning schema of MRP-Store / dLog,
  "stored in Zookeeper and accessible to all processes" (Section 7.2);
* arbitrary **key/value configuration** with watch callbacks, which is how
  Zookeeper is typically used for small coordination metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.coordination.election import elect_coordinator
from repro.errors import CoordinationError
from repro.net.ring import RingOverlay
from repro.types import GroupId

__all__ = ["RingDescriptor", "Registry"]


@dataclass
class RingDescriptor:
    """Static description of one ring (one multicast group)."""

    group: GroupId
    overlay: RingOverlay
    proposers: List[str]
    acceptors: List[str]
    learners: List[str]
    coordinator: str

    def roles_of(self, name: str) -> Set[str]:
        roles: Set[str] = set()
        if name in self.proposers:
            roles.add("proposer")
        if name in self.acceptors:
            roles.add("acceptor")
        if name in self.learners:
            roles.add("learner")
        if name == self.coordinator:
            roles.add("coordinator")
        return roles

    @property
    def quorum_size(self) -> int:
        """Majority of the ring's acceptors."""
        return len(self.acceptors) // 2 + 1


class Registry:
    """Shared configuration store for one world."""

    def __init__(self) -> None:
        self._rings: Dict[GroupId, RingDescriptor] = {}
        self._subscriptions: Dict[str, List[GroupId]] = {}
        self._partition_maps: Dict[str, Any] = {}
        self._kv: Dict[str, Any] = {}
        self._watches: Dict[str, List[Callable[[str, Any], None]]] = {}

    # ------------------------------------------------------------------
    # rings
    # ------------------------------------------------------------------
    def register_ring(
        self,
        group: GroupId,
        members_in_ring_order: Sequence[str],
        proposers: Sequence[str],
        acceptors: Sequence[str],
        learners: Sequence[str],
        coordinator: Optional[str] = None,
    ) -> RingDescriptor:
        """Register a ring for ``group``; the coordinator defaults to the elected one."""
        if group in self._rings:
            raise CoordinationError(f"group {group!r} already has a ring")
        overlay = RingOverlay(members_in_ring_order)
        for role_name, role_members in (
            ("proposer", proposers),
            ("acceptor", acceptors),
            ("learner", learners),
        ):
            for member in role_members:
                if member not in overlay:
                    raise CoordinationError(
                        f"{role_name} {member!r} is not a member of ring {group!r}"
                    )
        if not acceptors:
            raise CoordinationError(f"ring {group!r} needs at least one acceptor")
        acceptors_in_order = [name for name in overlay.members if name in set(acceptors)]
        chosen = coordinator or elect_coordinator(acceptors_in_order)
        if chosen not in acceptors:
            raise CoordinationError("the coordinator must be one of the acceptors")
        descriptor = RingDescriptor(
            group=group,
            overlay=overlay,
            proposers=list(proposers),
            acceptors=list(acceptors),
            learners=list(learners),
            coordinator=chosen,
        )
        self._rings[group] = descriptor
        return descriptor

    def ring(self, group: GroupId) -> RingDescriptor:
        try:
            return self._rings[group]
        except KeyError:
            raise CoordinationError(f"no ring registered for group {group!r}") from None

    def has_ring(self, group: GroupId) -> bool:
        return group in self._rings

    def groups(self) -> List[GroupId]:
        return list(self._rings)

    def reelect_coordinator(self, group: GroupId, is_alive: Callable[[str], bool]) -> str:
        """Re-run coordinator election for ``group`` against a liveness view."""
        descriptor = self.ring(group)
        acceptors_in_order = [
            name for name in descriptor.overlay.members if name in set(descriptor.acceptors)
        ]
        descriptor.coordinator = elect_coordinator(acceptors_in_order, is_alive)
        self._notify(f"ring/{group}/coordinator", descriptor.coordinator)
        return descriptor.coordinator

    # ------------------------------------------------------------------
    # subscriptions (inverted group addressing)
    # ------------------------------------------------------------------
    def subscribe(self, learner: str, groups: Sequence[GroupId]) -> None:
        """Record that ``learner`` subscribes to ``groups`` (order preserved)."""
        for group in groups:
            if group not in self._rings:
                raise CoordinationError(f"cannot subscribe to unknown group {group!r}")
        existing = self._subscriptions.setdefault(learner, [])
        for group in groups:
            if group not in existing:
                existing.append(group)
        self._notify(f"subscriptions/{learner}", list(existing))

    def subscriptions_of(self, learner: str) -> List[GroupId]:
        return list(self._subscriptions.get(learner, []))

    def subscribers_of(self, group: GroupId) -> List[str]:
        return [
            learner
            for learner, groups in self._subscriptions.items()
            if group in groups
        ]

    def partition_of(self, learner: str) -> List[GroupId]:
        """The learner's *partition identity*: its subscription set in group order.

        Replicas that deliver from the same set of groups form a partition and
        evolve through the same sequence of states (Section 5.2).
        """
        return sorted(self._subscriptions.get(learner, []))

    def partition_peers(self, learner: str) -> List[str]:
        """Other learners with exactly the same subscription set."""
        mine = self.partition_of(learner)
        return [
            other
            for other in self._subscriptions
            if other != learner and self.partition_of(other) == mine
        ]

    # ------------------------------------------------------------------
    # partition maps and generic configuration
    # ------------------------------------------------------------------
    def store_partition_map(self, service: str, partition_map: Any) -> None:
        self._partition_maps[service] = partition_map
        self._notify(f"partition-map/{service}", partition_map)

    def partition_map(self, service: str) -> Any:
        try:
            return self._partition_maps[service]
        except KeyError:
            raise CoordinationError(f"no partition map stored for service {service!r}") from None

    def set(self, key: str, value: Any) -> None:
        self._kv[key] = value
        self._notify(key, value)

    def get(self, key: str, default: Any = None) -> Any:
        return self._kv.get(key, default)

    def watch(self, key: str, callback: Callable[[str, Any], None]) -> None:
        """Invoke ``callback(key, value)`` whenever ``key`` (or a tracked path) changes."""
        self._watches.setdefault(key, []).append(callback)

    def _notify(self, key: str, value: Any) -> None:
        for callback in self._watches.get(key, []):
            callback(key, value)
