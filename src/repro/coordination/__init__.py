"""Coordination service (Zookeeper substitute).

The paper delegates ring configuration, coordinator election and the
partitioning schema to Zookeeper (Sections 4 and 7).  The reproduction
provides :class:`~repro.coordination.registry.Registry`, a small strongly
consistent configuration store shared by all processes of a world, plus a
deterministic coordinator-election rule.

The registry is intentionally *not* a simulated process: Zookeeper accesses
are rare (ring setup, membership changes, partition-map lookups) and are not
on the critical path of any experiment in the paper, so modelling their
latency would only add noise.  This substitution is recorded in DESIGN.md.
"""

from repro.coordination.registry import Registry, RingDescriptor
from repro.coordination.election import elect_coordinator

__all__ = ["Registry", "RingDescriptor", "elect_coordinator"]
