"""Live-mode launcher: run the protocol stack over real localhost TCP.

``python -m repro.live --smoke`` boots a 3-node single-ring dLog deployment
on the live backend (:mod:`repro.runtime.live`): every node is an asyncio
task set with its own TCP server, every protocol message crosses a real
socket through the versioned codec, and the run reports *wall-clock*
throughput into ``BENCH_live.json``.

The run double-checks the paper's safety contract end to end:

* **zero lost acked writes** -- every append whose future resolved (acked at
  the submitting node's learner) appears in every node's delivered sequence,
* **identical delivery sequences** -- all learners deliver the same order,
* **identical dLog state** -- every replica's log tail agrees.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, List, Optional, Tuple

from repro.config import MultiRingConfig
from repro.obs.metrics import merge_snapshots
from repro.runtime.interfaces import StorageMode
from repro.runtime.live import LiveDeployment, LiveRingSpec
from repro.services.dlog.state import DLogStateMachine

__all__ = ["run_live_dlog", "run_live"]

#: The single ring of the smoke deployment (one log, as in Figure 5 scaled down).
GROUP = "dlog-log-0"
LOG = "log-0"


async def _http_get(
    host: str, port: int, path: str, timeout: float = 5.0
) -> Tuple[int, str]:
    """Minimal HTTP/1.0 GET against a node's introspection listener."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("ascii"))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0]
    status = int(status_line.split(b" ", 2)[1])
    return status, body.decode("utf-8", errors="replace")


async def run_live_dlog(
    nodes: int = 3,
    values: int = 300,
    value_size: int = 1024,
    window: int = 32,
    storage: str = "memory",
    storage_dir: Optional[str] = None,
    timeout: float = 60.0,
    seed: int = 0,
    tracing: bool = True,
    trace_sample: int = 64,
    serve_http: bool = True,
    trace_log: Optional[str] = None,
) -> Dict:
    """Run the live dLog deployment and return the result/metrics dictionary.

    ``window`` bounds the number of outstanding appends (a closed loop of
    ``window`` client threads).  ``storage`` selects the acceptor log mode:
    ``memory`` or any :class:`StorageMode` value; durable modes append to
    real files under ``storage_dir``.

    Observability: ``tracing`` samples causal traces (every
    ``trace_sample``-th proposed value), ``serve_http`` starts the per-node
    ``/metrics`` + ``/healthz`` listeners (scraped once at the end of the run
    as a self-check), and ``trace_log`` dumps all sampled spans to a JSONL
    file renderable with ``python -m repro.obs.report``.
    """
    if nodes < 1:
        raise ValueError("the live deployment needs at least one node")
    mode = StorageMode.MEMORY if storage == "memory" else StorageMode(storage)
    names = [f"n{i}" for i in range(nodes)]
    spec = LiveRingSpec(
        group=GROUP,
        members=names,
        coordinator=names[0],
        storage_mode=mode,
    )
    # Rate leveling only matters when merging multiple rings; on the single
    # smoke ring it would stream λ·Δ skip instances over TCP for nothing.
    config = MultiRingConfig.datacenter(rate_leveling=False)

    deployment = LiveDeployment(
        [spec],
        config=config,
        seed=seed,
        storage_dir=storage_dir,
        record_deliveries=False,
        tracing=tracing,
        trace_sample=trace_sample,
        serve_http=serve_http,
    )

    loop = asyncio.get_running_loop()
    pending: Dict[str, asyncio.Future] = {}
    sequences: Dict[str, List[str]] = {name: [] for name in names}
    machines: Dict[str, DLogStateMachine] = {
        name: DLogStateMachine(logs=(LOG,)) for name in names
    }

    def on_delivery(node_name: str, delivery) -> None:
        operation = delivery.value.payload
        machines[node_name].execute(operation, delivery.group)
        tag = operation[3]
        sequences[node_name].append(tag)
        if node_name == names[0]:
            future = pending.get(tag)
            if future is not None and not future.done():
                future.set_result(tag)

    async with deployment:
        for name in names:
            deployment.node(name).node.on_deliver(
                lambda d, name=name: on_delivery(name, d), group=GROUP
            )

        started_at = time.perf_counter()
        outstanding = set()
        async def _await_some(futures, count):
            done, rest = await asyncio.wait(
                futures, return_when=asyncio.FIRST_COMPLETED, timeout=timeout
            )
            if not done:
                raise asyncio.TimeoutError(
                    f"no append acked within {timeout}s ({count} submitted)"
                )
            return rest

        for index in range(values):
            tag = f"v{index}"
            future = loop.create_future()
            pending[tag] = future
            operation = ("append", LOG, value_size, tag)
            deployment.multicast(
                names[index % nodes], GROUP, operation, 64 + value_size
            )
            outstanding.add(future)
            if len(outstanding) >= window:
                outstanding = await _await_some(outstanding, index + 1)
        if outstanding:
            await asyncio.wait_for(
                asyncio.gather(*outstanding), timeout=timeout
            )
        acked_seconds = time.perf_counter() - started_at
        acked = [tag for tag, future in pending.items() if future.done()]

        # Let the tail of the decision circulation reach every learner.
        deadline = loop.time() + timeout
        while any(len(sequences[name]) < values for name in names):
            if loop.time() > deadline:
                break
            await asyncio.sleep(0.01)
        wall_seconds = time.perf_counter() - started_at

        wire_frames = sum(
            live.runtime.network.frames_sent for live in deployment.nodes.values()
        )
        wire_bytes = sum(
            live.runtime.network.wire_bytes_sent for live in deployment.nodes.values()
        )

        # ------------------------------------------------------------------
        # observability: scrape each node's live endpoints (self-check),
        # gather spans from every node-local tracer, snapshot the registries.
        # ------------------------------------------------------------------
        endpoints: Dict[str, Dict[str, object]] = {}
        if serve_http:
            for name in names:
                live = deployment.node(name)
                if live.obs_address is None:
                    continue
                host, port = live.obs_address
                health_status, health_body = await _http_get(host, port, "/healthz")
                metrics_status, metrics_body = await _http_get(host, port, "/metrics")
                endpoints[name] = {
                    "address": f"{host}:{port}",
                    "healthz_status": health_status,
                    "healthz_ok": health_status == 200
                    and json.loads(health_body).get("status") == "ok",
                    "metrics_status": metrics_status,
                    "metrics_samples": sum(
                        1
                        for line in metrics_body.splitlines()
                        if line and not line.startswith("#")
                    ),
                }
        spans: List[Dict[str, object]] = []
        snapshots: Dict[str, Dict[str, object]] = {}
        for name in names:
            runtime = deployment.node(name).runtime
            spans.extend(runtime.obs.tracer.as_dicts())
            snapshots[name] = runtime.obs.snapshot()

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    reference = sequences[names[0]]
    identical = all(sequences[name] == reference for name in names)
    lost_acked = {
        name: sorted(set(acked) - set(sequences[name])) for name in names
    }
    total_lost = sum(len(missing) for missing in lost_acked.values())
    positions = {name: machines[name].next_position(LOG) for name in names}
    state_identical = len(set(positions.values())) == 1
    endpoints_ok = all(
        entry["healthz_ok"] and entry["metrics_status"] == 200
        for entry in endpoints.values()
    )
    passed = (
        identical
        and total_lost == 0
        and state_identical
        and len(acked) == values
        and len(reference) == values
        and endpoints_ok
    )

    if trace_log is not None:
        with open(trace_log, "w", encoding="utf-8") as handle:
            for span in sorted(spans, key=lambda s: (s["trace_id"], s["start"])):
                handle.write(json.dumps(span, sort_keys=True) + "\n")
    trace_ids = sorted({span["trace_id"] for span in spans})
    stages_seen = sorted({span["stage"] for span in spans})

    throughput = len(acked) / acked_seconds if acked_seconds > 0 else 0.0
    report_lines = [
        f"live dLog over localhost TCP: {nodes} nodes, 1 ring, {values} appends of {value_size} B",
        f"  acked appends:           {len(acked)}/{values} in {acked_seconds:.3f} s wall",
        f"  wall-clock throughput:   {throughput:.1f} appends/s (window {window})",
        f"  TCP frames sent:         {wire_frames} ({wire_bytes} bytes on the wire)",
        f"  delivery sequences:      {'identical' if identical else 'DIVERGED'} across {nodes} learners",
        f"  lost acked writes:       {total_lost}",
        f"  dLog tail positions:     {sorted(set(positions.values()))}",
    ]
    if serve_http:
        report_lines.append(
            f"  /metrics + /healthz:     {'OK' if endpoints_ok else 'FAIL'}"
            f" across {len(endpoints)} nodes"
        )
    if tracing:
        report_lines.append(
            f"  causal traces:           {len(trace_ids)} traces, {len(spans)} spans"
            f" (stages: {', '.join(stages_seen) if stages_seen else 'none'})"
        )
        if trace_log is not None:
            report_lines.append(f"  trace log:               {trace_log}")
    report_lines.append(f"  verdict:                 {'PASS' if passed else 'FAIL'}")
    return {
        "experiment": "live",
        "backend": "live",
        "params": {
            "nodes": nodes,
            "values": values,
            "value_size": value_size,
            "window": window,
            "storage": mode.value,
        },
        "metrics": {
            "acked": len(acked),
            "acked_seconds": acked_seconds,
            "wall_seconds": wall_seconds,
            "throughput_ops": throughput,
            "wire_frames": wire_frames,
            "wire_bytes": wire_bytes,
            "lost_acked_writes": total_lost,
            "sequences_identical": identical,
            "state_identical": state_identical,
            "tail_positions": positions,
        },
        "observability": {
            **merge_snapshots(snapshots),
            "endpoints": endpoints,
            "endpoints_ok": endpoints_ok,
            "trace_ids": trace_ids,
            "stages_seen": stages_seen,
            "span_count": len(spans),
            "trace_log": trace_log,
        },
        "passed": passed,
        "report": "\n".join(report_lines),
    }


def run_live(**kwargs) -> Dict:
    """Synchronous wrapper around :func:`run_live_dlog` (own event loop)."""
    return asyncio.run(run_live_dlog(**kwargs))
