"""Command-line launcher for live mode.

Examples::

    python -m repro.live --smoke                  # 3-node dLog, 300 appends
    python -m repro.live --nodes 5 --values 2000  # bigger in-process ring
    python -m repro.live --storage sync-ssd --storage-dir /tmp/repro-live

Writes the result (wall-clock throughput, wire traffic, invariant verdicts)
to ``BENCH_live.json`` and exits non-zero if any acked write was lost or the
learners' delivery sequences diverged.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.live import run_live

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-live",
        description="Run the protocol stack live over localhost TCP.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 3 nodes, 300 appends (the defaults, made explicit)",
    )
    parser.add_argument("--nodes", type=int, default=3, help="ring members (default 3)")
    parser.add_argument("--values", type=int, default=300, help="appends to submit")
    parser.add_argument("--value-size", type=int, default=1024, help="append payload bytes")
    parser.add_argument("--window", type=int, default=32, help="outstanding appends (closed loop)")
    parser.add_argument(
        "--storage",
        default="memory",
        choices=["memory", "async-hdd", "async-ssd", "sync-hdd", "sync-ssd"],
        help="acceptor log mode; durable modes append+fsync real files",
    )
    parser.add_argument(
        "--storage-dir",
        default=None,
        help="directory for durable acceptor logs (required for non-memory modes)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="per-phase wall-clock timeout, seconds"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_live.json"),
        help="result file (default BENCH_live.json)",
    )
    parser.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable sampled causal tracing",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=64,
        help="sample every Nth proposed value (default 64; 1 = every value)",
    )
    parser.add_argument(
        "--no-http",
        action="store_true",
        help="do not serve per-node /metrics + /healthz listeners",
    )
    parser.add_argument(
        "--trace-log",
        type=Path,
        default=Path("BENCH_live_trace.jsonl"),
        help="span JSONL for `python -m repro.obs.report` (default BENCH_live_trace.jsonl)",
    )
    args = parser.parse_args(argv)

    if args.storage != "memory" and args.storage_dir is None:
        parser.error("--storage-dir is required for durable storage modes")
    if args.smoke:
        args.nodes, args.values = 3, 300

    tracing = not args.no_tracing
    result = run_live(
        nodes=args.nodes,
        values=args.values,
        value_size=args.value_size,
        window=args.window,
        storage=args.storage,
        storage_dir=args.storage_dir,
        timeout=args.timeout,
        seed=args.seed,
        tracing=tracing,
        trace_sample=args.trace_sample,
        serve_http=not args.no_http,
        trace_log=str(args.trace_log) if tracing else None,
    )
    print(result["report"])
    args.json.write_text(json.dumps(result, indent=2, sort_keys=True, default=str) + "\n")
    print(f"wrote {args.json}")
    return 0 if result["passed"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
