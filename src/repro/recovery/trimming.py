"""The coordinator-driven log-trimming protocol (Section 5.2).

Periodically, the coordinator of multicast group ``x`` asks the replicas that
subscribe to ``x`` for the highest consensus instance each has safely
checkpointed (``k[x]_p``).  Once a trim quorum ``Q_T`` has answered, the
coordinator computes ``K[x]_T = min(k[x]_p : p in Q_T)`` (Predicate 2) and
instructs the ring's acceptors to trim their logs up to ``K[x]_T``.

Because the recovering replica later selects the *maximum* checkpoint over a
recovery quorum ``Q_R`` that intersects ``Q_T``, every instance the acceptors
have trimmed is already reflected in that checkpoint (Predicates 4 and 5), so
recovery never needs a trimmed instance.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.config import RecoveryConfig
from repro.errors import RecoveryError
from repro.recovery.messages import TrimCommand, TrimQuery, TrimReply
from repro.types import GroupId, InstanceId

__all__ = ["TrimProtocol"]


class TrimProtocol:
    """Attaches trim-protocol behaviour to a Multi-Ring Paxos node.

    The same class serves the three sides of the protocol, activating only the
    parts that match the node's roles:

    * on every node with a checkpoint provider (a replica), it answers
      :class:`TrimQuery` with the replica's safe instance;
    * on every acceptor, it executes :class:`TrimCommand` against the ring's
      stable log;
    * on every ring coordinator, it periodically runs trim rounds.
    """

    def __init__(
        self,
        node,
        config: Optional[RecoveryConfig] = None,
        safe_instance_provider: Optional[Callable[[GroupId], InstanceId]] = None,
    ) -> None:
        self.node = node
        self.config = config or RecoveryConfig()
        self.safe_instance_provider = safe_instance_provider
        # Coordinator-side round state, per group.
        self._pending_replies: Dict[GroupId, Dict[str, InstanceId]] = {}
        self._expected_replicas: Dict[GroupId, List[str]] = {}
        self.trims_issued: Dict[GroupId, InstanceId] = {}
        self.rounds_completed = 0

        node.register_handler(TrimQuery, self._on_trim_query)
        node.register_handler(TrimReply, self._on_trim_reply)
        node.register_handler(TrimCommand, self._on_trim_command)

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm periodic trim rounds for every group this node coordinates."""
        for group, role in self.node.roles.items():
            if role.is_coordinator:
                self.node.set_periodic_timer(
                    self.config.trim_interval, self._start_round, group
                )

    # ------------------------------------------------------------------
    # replica side
    # ------------------------------------------------------------------
    def _on_trim_query(self, sender: str, msg: TrimQuery) -> None:
        if self.safe_instance_provider is None:
            return
        safe = self.safe_instance_provider(msg.group)
        self.node.send_direct(
            msg.reply_to,
            TrimReply(group=msg.group, replica=self.node.name, safe_instance=safe),
        )

    # ------------------------------------------------------------------
    # coordinator side
    # ------------------------------------------------------------------
    def _start_round(self, group: GroupId) -> None:
        subscribers = self.node.registry.subscribers_of(group)
        # Only replicas (nodes with application state) matter for trimming;
        # the registry's subscriber list is exactly the learner set.
        if not subscribers:
            return
        self._expected_replicas[group] = subscribers
        self._pending_replies[group] = {}
        for replica in subscribers:
            self.node.send_direct(replica, TrimQuery(group=group, reply_to=self.node.name))

    def _on_trim_reply(self, sender: str, msg: TrimReply) -> None:
        group = msg.group
        if group not in self._pending_replies:
            return
        expected = self._expected_replicas.get(group, [])
        if msg.replica not in expected:
            return
        replies = self._pending_replies[group]
        replies[msg.replica] = msg.safe_instance
        quorum = self.config.trim_quorum_size(len(expected))
        if len(replies) < quorum:
            return
        # Predicate 2: K[x]_T <= k[x]_p for every p in the quorum.
        trim_to = min(replies.values())
        del self._pending_replies[group]
        self.rounds_completed += 1
        if trim_to <= 0:
            return
        previous = self.trims_issued.get(group, 0)
        if trim_to <= previous:
            return
        self.trims_issued[group] = trim_to
        descriptor = self.node.registry.ring(group)
        for acceptor in descriptor.acceptors:
            # ``up_to`` is exclusive of the cursor semantics used by replicas:
            # a cursor of k means instances < k are reflected, so acceptors
            # may drop instances up to k-1.
            self.node.send_direct(acceptor, TrimCommand(group=group, up_to=trim_to - 1))

    # ------------------------------------------------------------------
    # acceptor side
    # ------------------------------------------------------------------
    def _on_trim_command(self, sender: str, msg: TrimCommand) -> None:
        role = self.node.roles.get(msg.group)
        if role is None or role.storage is None:
            return
        removed = role.storage.trim(msg.up_to)
        self.node.world.monitor.increment(f"trim/{msg.group}", removed)
