"""Recovery: checkpointing, log trimming and replica recovery (Section 5).

Recovery in Multi-Ring Paxos must handle the fact that replicas subscribing
to different sets of multicast groups evolve through *different* sequences of
states, so a recovering replica may only install checkpoints from replicas of
its own partition (the set of replicas with the same subscription set).  The
protocol has three cooperating pieces:

* :mod:`repro.recovery.checkpoint` -- checkpoints identified by a per-group
  tuple of consensus instances ``k_p`` (Predicate 1) and the disk-backed
  store each replica keeps them in;
* :mod:`repro.recovery.trimming` -- the coordinator-driven protocol that
  collects safe instances from a trim quorum ``Q_T`` and tells acceptors how
  far they may trim their logs (Predicate 2);
* :mod:`repro.recovery.replica_recovery` -- the recovering replica's side:
  pick the most recent checkpoint available in a recovery quorum ``Q_R``
  (Predicate 3), install it, and replay the remaining instances from the
  acceptors, which is always possible because ``Q_T`` and ``Q_R`` intersect
  (Predicates 4 and 5).
"""

from repro.recovery.checkpoint import Checkpoint, CheckpointStore, cursor_leq, cursor_max
from repro.recovery.messages import (
    CheckpointData,
    CheckpointFetch,
    CheckpointInfo,
    CheckpointQuery,
    TrimCommand,
    TrimQuery,
    TrimReply,
)
from repro.recovery.trimming import TrimProtocol
from repro.recovery.replica_recovery import ReplicaRecovery

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "cursor_leq",
    "cursor_max",
    "CheckpointQuery",
    "CheckpointInfo",
    "CheckpointFetch",
    "CheckpointData",
    "TrimQuery",
    "TrimReply",
    "TrimCommand",
    "TrimProtocol",
    "ReplicaRecovery",
]
