"""Checkpoints and the per-replica checkpoint store.

A checkpoint is identified by a tuple ``k_p`` with one consensus-instance
entry per multicast group the replica subscribes to; it reflects the effect of
every command decided in instances strictly below ``k_p[x]`` for each group
``x`` (the library uses "next instance to deliver" cursors, which is the same
information off by one and composes directly with the deterministic merge).

Because replicas deliver groups round-robin in group-identifier order,
Predicate 1 of the paper holds for every checkpoint: ``x < y  =>
k[x]_p >= k[y]_p``, and checkpoints of replicas in the same partition are
totally ordered -- which is what :func:`cursor_leq` / :func:`cursor_max`
implement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import RecoveryError
from repro.runtime.interfaces import Clock, StableStore
from repro.types import GroupId, InstanceId

__all__ = ["Checkpoint", "CheckpointStore", "cursor_leq", "cursor_max", "cursor_is_monotonic"]

_checkpoint_ids = itertools.count(1)


def cursor_leq(a: Dict[GroupId, InstanceId], b: Dict[GroupId, InstanceId]) -> bool:
    """Component-wise ``a <= b`` over the union of groups (missing entries count as 0)."""
    groups = set(a) | set(b)
    return all(a.get(g, 0) <= b.get(g, 0) for g in groups)


def cursor_max(cursors: List[Dict[GroupId, InstanceId]]) -> Dict[GroupId, InstanceId]:
    """The most up-to-date cursor of a totally ordered set (Predicate 3's ``K_R``).

    Within one partition checkpoints are totally ordered, so the maximum under
    :func:`cursor_leq` exists; to stay robust against malformed inputs the
    component-wise maximum is returned, which coincides with it in that case.
    """
    if not cursors:
        raise RecoveryError("cannot take the maximum of an empty set of checkpoints")
    groups = set()
    for cursor in cursors:
        groups |= set(cursor)
    return {g: max(cursor.get(g, 0) for cursor in cursors) for g in sorted(groups)}


def cursor_is_monotonic(cursor: Dict[GroupId, InstanceId], m: int = 1) -> bool:
    """Check Predicate 1: groups in identifier order have non-increasing instances.

    With merge granularity ``M`` the entries of a valid cursor can differ by at
    most ``M`` between consecutive groups; this relaxed form is what the
    property-based tests assert.
    """
    ordered = sorted(cursor)
    for earlier, later in zip(ordered, ordered[1:]):
        if cursor[earlier] + m <= cursor[later]:
            return False
    return True


@dataclass(frozen=True)
class Checkpoint:
    """One durable replica checkpoint."""

    checkpoint_id: int
    replica: str
    #: Per-group next-instance-to-deliver at the time the checkpoint was taken.
    cursor: Dict[GroupId, InstanceId]
    #: Opaque application snapshot (the MRP-Store tree, the dLog cache, ...).
    state: Any
    #: Size of the serialized snapshot, used for disk and state-transfer timing.
    state_size_bytes: int
    taken_at: float

    @classmethod
    def create(
        cls,
        replica: str,
        cursor: Dict[GroupId, InstanceId],
        state: Any,
        state_size_bytes: int,
        taken_at: float,
    ) -> "Checkpoint":
        return cls(
            checkpoint_id=next(_checkpoint_ids),
            replica=replica,
            cursor=dict(cursor),
            state=state,
            state_size_bytes=max(0, int(state_size_bytes)),
            taken_at=taken_at,
        )


class CheckpointStore:
    """The replica's stable checkpoint storage.

    Only the latest durable checkpoint matters for recovery; older ones are
    garbage-collected.  Writing a checkpoint occupies the replica's disk
    (synchronously or asynchronously depending on the service configuration),
    which is how checkpointing pressure shows up in Figure 8.
    """

    def __init__(self, sim: Clock, disk: Optional[StableStore] = None, synchronous: bool = True) -> None:
        self.sim = sim
        self.disk = disk
        self.synchronous = synchronous
        self._latest: Optional[Checkpoint] = None
        self._durable: Optional[Checkpoint] = None
        self.checkpoints_written = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    @property
    def latest(self) -> Optional[Checkpoint]:
        """The most recent checkpoint written (possibly not yet durable)."""
        return self._latest

    @property
    def latest_durable(self) -> Optional[Checkpoint]:
        """The most recent checkpoint known to be on stable storage."""
        return self._durable

    def write(self, checkpoint: Checkpoint, on_durable=None) -> float:
        """Persist ``checkpoint``; returns the time at which it becomes durable."""
        if self._latest is not None and not cursor_leq(self._latest.cursor, checkpoint.cursor):
            raise RecoveryError("checkpoints must be written in monotonically increasing order")
        self._latest = checkpoint
        self.checkpoints_written += 1
        self.bytes_written += checkpoint.state_size_bytes

        def mark_durable() -> None:
            if self._durable is None or cursor_leq(self._durable.cursor, checkpoint.cursor):
                self._durable = checkpoint
            if on_durable is not None:
                on_durable(checkpoint)

        if self.disk is None:
            mark_durable()
            return self.sim.now
        if self.synchronous:
            return self.disk.write(checkpoint.state_size_bytes, mark_durable)
        return self.disk.write_async(checkpoint.state_size_bytes, mark_durable)

    def safe_instance(self, group: GroupId) -> InstanceId:
        """The instance below which this replica no longer needs retransmissions.

        This is ``k[x]_p`` in the paper's trim protocol: everything below the
        latest *durable* checkpoint's cursor is reflected in stable state.
        Replicas that have not checkpointed yet return 0 so that acceptors
        keep their full log.
        """
        if self._durable is None:
            return 0
        return self._durable.cursor.get(group, 0)
