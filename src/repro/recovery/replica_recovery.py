"""The recovering replica's side of the protocol (Section 5.2).

:class:`ReplicaRecovery` is attached to a Multi-Ring Paxos learner node that
holds application state (an MRP-Store or dLog replica).  It is responsible
for the replica's whole recovery lifecycle:

* periodically take checkpoints of the application state, identified by the
  merge's delivery cursor (the tuple ``k_p``), and persist them;
* serve checkpoint metadata and checkpoint data to recovering partition peers;
* when the local node restarts after a crash: query a recovery quorum
  ``Q_R`` of partition peers, install the most up-to-date checkpoint available
  (local or remote), fast-forward the delivery merge to the checkpoint's
  cursor, fetch the missing instances from the acceptors, and only then resume
  normal delivery.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.config import RecoveryConfig
from repro.errors import RecoveryError
from repro.recovery.checkpoint import Checkpoint, CheckpointStore, cursor_leq, cursor_max
from repro.recovery.messages import (
    CheckpointData,
    CheckpointFetch,
    CheckpointInfo,
    CheckpointQuery,
)
from repro.ringpaxos.messages import RetransmitReply, RetransmitRequest
from repro.types import GroupId, InstanceId

__all__ = ["ReplicaRecovery"]

#: Snapshot provider: returns ``(opaque_state, serialized_size_bytes)``.
SnapshotProvider = Callable[[], Tuple[object, int]]
#: Snapshot installer: receives the opaque state saved by the provider.
SnapshotInstaller = Callable[[object], None]


class ReplicaRecovery:
    """Checkpointing + recovery manager for one replica node."""

    def __init__(
        self,
        node,
        store: CheckpointStore,
        snapshot_provider: SnapshotProvider,
        snapshot_installer: SnapshotInstaller,
        config: Optional[RecoveryConfig] = None,
    ) -> None:
        self.node = node
        self.store = store
        self.snapshot_provider = snapshot_provider
        self.snapshot_installer = snapshot_installer
        self.config = config or RecoveryConfig()

        self.recovering = False
        self.recoveries_completed = 0
        self.checkpoints_taken = 0
        self._checkpoint_timer = None

        # Recovery-round volatile state.
        self._peer_infos: Dict[str, CheckpointInfo] = {}
        self._expected_peers: List[str] = []
        self._pending_retransmits: set = set()

        node.pause_on_recover = True
        node.register_handler(CheckpointQuery, self._on_checkpoint_query)
        node.register_handler(CheckpointFetch, self._on_checkpoint_fetch)
        node.register_handler(CheckpointInfo, self._on_checkpoint_info)
        node.register_handler(CheckpointData, self._on_checkpoint_data)
        node.register_handler(RetransmitReply, self._on_retransmit_reply)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic checkpoint timer."""
        self._checkpoint_timer = self.node.set_periodic_timer(
            self.config.checkpoint_interval, self.take_checkpoint
        )

    def take_checkpoint(self) -> Optional[Checkpoint]:
        """Snapshot the application state and persist it."""
        if self.recovering or not self.node.alive:
            return None
        cursor = self.node.delivery_cursor()
        state, size = self.snapshot_provider()
        checkpoint = Checkpoint.create(
            replica=self.node.name,
            cursor=cursor,
            state=state,
            state_size_bytes=size,
            taken_at=self.node.now,
        )
        self.store.write(checkpoint, on_durable=self._checkpoint_durable)
        self.checkpoints_taken += 1
        self.node.world.monitor.increment("recovery/checkpoints_started")
        return checkpoint

    def _checkpoint_durable(self, checkpoint: Checkpoint) -> None:
        self.node.world.monitor.increment("recovery/checkpoints_durable")
        self.node.world.monitor.record_gauge(
            f"checkpoint/{self.node.name}", self.node.world.sim.now, float(checkpoint.checkpoint_id)
        )

    def safe_instance(self, group: GroupId) -> InstanceId:
        """``k[x]_p`` reported to the trim protocol."""
        return self.store.safe_instance(group)

    # ------------------------------------------------------------------
    # serving peers
    # ------------------------------------------------------------------
    def _on_checkpoint_query(self, sender: str, msg: CheckpointQuery) -> None:
        latest = self.store.latest_durable
        if latest is None:
            info = CheckpointInfo(cursor={}, checkpoint_id=0, state_size_bytes=0)
        else:
            info = CheckpointInfo(
                cursor=dict(latest.cursor),
                checkpoint_id=latest.checkpoint_id,
                state_size_bytes=latest.state_size_bytes,
            )
        self.node.send_direct(msg.reply_to, info)

    def _on_checkpoint_fetch(self, sender: str, msg: CheckpointFetch) -> None:
        latest = self.store.latest_durable
        if latest is None:
            return
        self.node.send_direct(msg.reply_to, CheckpointData(checkpoint=latest))

    # ------------------------------------------------------------------
    # the recovery sequence
    # ------------------------------------------------------------------
    def begin_recovery(self) -> None:
        """Called by the replica right after the process restarts."""
        if self.recovering:
            return
        self.recovering = True
        self._peer_infos.clear()
        self.node.world.monitor.increment("recovery/started")
        self.node.world.monitor.record_gauge(
            f"recovery/{self.node.name}", self.node.now, 1.0
        )
        # Re-arm checkpointing (the crash cancelled every timer).
        self.start()
        peers = self.node.registry.partition_peers(self.node.name)
        self._expected_peers = [
            peer
            for peer in peers
            if self.node.world.has_process(peer) and self.node.world.process(peer).alive
        ]
        if not self._expected_peers:
            # No partition peer: fall back to the local durable checkpoint.
            self._install_and_replay(self.store.latest_durable, from_peer=None)
            return
        for peer in self._expected_peers:
            self.node.send_direct(peer, CheckpointQuery(reply_to=self.node.name))

    def _on_checkpoint_info(self, sender: str, msg: CheckpointInfo) -> None:
        if not self.recovering or sender in self._peer_infos:
            return
        self._peer_infos[sender] = msg
        quorum = self.config.recovery_quorum_size(len(self._expected_peers))
        if len(self._peer_infos) < quorum:
            return
        self._choose_checkpoint()

    def _choose_checkpoint(self) -> None:
        """Pick the most up-to-date checkpoint available in the recovery quorum."""
        local = self.store.latest_durable
        best_peer: Optional[str] = None
        best_cursor: Dict[GroupId, InstanceId] = dict(local.cursor) if local else {}
        for peer, info in self._peer_infos.items():
            if info.checkpoint_id == 0:
                continue
            if not cursor_leq(info.cursor, best_cursor):
                best_cursor = dict(info.cursor)
                best_peer = peer

        if best_peer is None:
            # The local checkpoint is the most recent one: no state transfer.
            self._install_and_replay(local, from_peer=None)
            return

        # Optimization from Section 5.1: only transfer the remote state when
        # the local checkpoint is "too old" (too many instances to replay).
        local_cursor = dict(local.cursor) if local else {}
        gap = sum(
            best_cursor.get(group, 0) - local_cursor.get(group, 0)
            for group in best_cursor
        )
        if local is not None and gap <= self.config.max_replay_instances:
            self._install_and_replay(local, from_peer=None)
            return
        self.node.world.monitor.increment("recovery/state_transfers")
        self.node.send_direct(best_peer, CheckpointFetch(reply_to=self.node.name, checkpoint_id=0))

    def _on_checkpoint_data(self, sender: str, msg: CheckpointData) -> None:
        if not self.recovering:
            return
        self._install_and_replay(msg.checkpoint, from_peer=sender)

    def _install_and_replay(self, checkpoint: Optional[Checkpoint], from_peer: Optional[str]) -> None:
        if checkpoint is not None:
            self.snapshot_installer(checkpoint.state)
            cursor = {
                group: checkpoint.cursor.get(group, 0) for group in self.node.subscriptions
            }
        else:
            self.snapshot_installer(None)
            cursor = {group: 0 for group in self.node.subscriptions}
        self.node.fast_forward(cursor)
        self.node.world.monitor.increment("recovery/checkpoints_installed")

        # Ask one live acceptor per subscribed group for everything decided at
        # or after the checkpoint's cursor.
        self._pending_retransmits = set()
        for group in self.node.subscriptions:
            descriptor = self.node.registry.ring(group)
            acceptor = self._pick_live_acceptor(descriptor.acceptors)
            if acceptor is None:
                continue
            self._pending_retransmits.add(group)
            self.node.send_direct(
                acceptor,
                RetransmitRequest(
                    group=group,
                    first=cursor.get(group, 0),
                    last=2**62,
                    reply_to=self.node.name,
                ),
            )
        if not self._pending_retransmits:
            self._finish_recovery()

    def _pick_live_acceptor(self, acceptors: List[str]) -> Optional[str]:
        for acceptor in acceptors:
            if self.node.world.has_process(acceptor) and self.node.world.process(acceptor).alive:
                return acceptor
        return None

    def _on_retransmit_reply(self, sender: str, msg: RetransmitReply) -> None:
        if msg.token != 0:
            return  # learner gap-repair traffic, handled by the ring role
        if not self.recovering:
            return
        if msg.trimmed_up_to is not None and not msg.entries:
            # The acceptor trimmed past our checkpoint.  Predicate 5 makes this
            # impossible when the checkpoint came from the recovery quorum; it
            # can only happen with no checkpoint at all, which is a
            # configuration error surfaced loudly.
            raise RecoveryError(
                f"acceptor {sender} trimmed its log up to {msg.trimmed_up_to}; "
                f"the installed checkpoint is too old to recover from"
            )
        role = self.node.roles.get(msg.group)
        for instance, value in msg.entries:
            self.node.merge.on_decision(msg.group, instance, value)
            if role is not None:
                # The instance reached the merge without passing through the
                # ring role; advance the role's in-order delivery cursor so
                # live decisions arriving above it are not held back waiting
                # for instances that will never circulate again.
                role.inject_learned(instance)
        self._pending_retransmits.discard(msg.group)
        if not self._pending_retransmits:
            self._finish_recovery()

    def _finish_recovery(self) -> None:
        self.recovering = False
        self.recoveries_completed += 1
        self.node.merge.resume()
        self.node.world.monitor.increment("recovery/completed")
        self.node.world.monitor.record_gauge(
            f"recovery/{self.node.name}", self.node.now, 0.0
        )
