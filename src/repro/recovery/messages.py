"""Messages of the recovery protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.net.message import ProtocolMessage
from repro.types import GroupId, InstanceId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.recovery.checkpoint import Checkpoint

__all__ = [
    "CheckpointQuery",
    "CheckpointInfo",
    "CheckpointFetch",
    "CheckpointData",
    "TrimQuery",
    "TrimReply",
    "TrimCommand",
]


@dataclass(frozen=True)
class CheckpointQuery(ProtocolMessage):
    """A recovering replica asks a partition peer for its latest checkpoint id."""

    reply_to: str


@dataclass(frozen=True)
class CheckpointInfo(ProtocolMessage):
    """Reply to :class:`CheckpointQuery`: the peer's latest durable checkpoint tuple."""

    cursor: Dict[GroupId, InstanceId]
    checkpoint_id: int
    state_size_bytes: int


@dataclass(frozen=True)
class CheckpointFetch(ProtocolMessage):
    """The recovering replica downloads a remote checkpoint from a peer."""

    reply_to: str
    checkpoint_id: int


@dataclass(frozen=True)
class CheckpointData(ProtocolMessage):
    """The full checkpoint (state snapshot plus identifying tuple).

    The wire size is dominated by the snapshot, so ``size_bytes`` is overridden
    to charge the network for the full state-transfer volume.
    """

    checkpoint: "Checkpoint"

    @property
    def size_bytes(self) -> int:  # type: ignore[override]
        return 256 + self.checkpoint.state_size_bytes


@dataclass(frozen=True)
class TrimQuery(ProtocolMessage):
    """The group coordinator asks a subscribed replica for its safe instance of ``group``."""

    group: GroupId
    reply_to: str


@dataclass(frozen=True)
class TrimReply(ProtocolMessage):
    """Reply to :class:`TrimQuery`: the replica's checkpointed instance ``k[x]_p``."""

    group: GroupId
    replica: str
    safe_instance: InstanceId


@dataclass(frozen=True)
class TrimCommand(ProtocolMessage):
    """The coordinator instructs an acceptor to trim its log up to ``up_to`` (``K[x]_T``)."""

    group: GroupId
    up_to: InstanceId
