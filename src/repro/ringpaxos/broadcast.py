"""Atomic broadcast facade: a single Ring Paxos ring.

Atomic broadcast is the special case of atomic multicast with a single group
to which all processes subscribe (Section 2).  :class:`RingPaxosBroadcast`
wires a complete single-ring deployment -- hosts, registry entry, roles --
and exposes ``broadcast()`` plus per-learner delivery callbacks.  It is used
directly by the unit tests and the quickstart example, and indirectly by the
Figure 3 benchmark (one multicast group, "dummy service").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.config import RingConfig
from repro.coordination.registry import Registry, RingDescriptor
from repro.errors import ConfigurationError
from repro.ringpaxos.node import RingHost
from repro.runtime.cpu import CPUConfig
from repro.runtime.interfaces import Runtime, StableStore, StorageMode
from repro.types import GroupId, InstanceId, Value, unpack_value

__all__ = ["RingPaxosBroadcast", "build_broadcast_ring"]

DeliveryCallback = Callable[[str, InstanceId, Value], None]


class RingPaxosBroadcast:
    """A fully wired single-ring Ring Paxos deployment."""

    def __init__(
        self,
        world: Runtime,
        group: GroupId,
        hosts: Dict[str, RingHost],
        descriptor: RingDescriptor,
    ) -> None:
        self.world = world
        self.group = group
        self.hosts = hosts
        self.descriptor = descriptor
        self._deliveries: Dict[str, List] = {name: [] for name in hosts}
        for name, host in hosts.items():
            host.add_decision_sink(self._make_sink(name))
        self._delivery_callbacks: List[DeliveryCallback] = []

    def _make_sink(self, host_name: str):
        def sink(group: GroupId, instance: InstanceId, value: Value) -> None:
            if value.is_skip:
                return
            # Coordinator-side batching may pack several application values
            # into one instance; unpack so callers see application values.
            for inner in unpack_value(value):
                self._deliveries[host_name].append((instance, inner))
                for callback in self._delivery_callbacks:
                    callback(host_name, instance, inner)

        return sink

    # ------------------------------------------------------------------
    def on_deliver(self, callback: DeliveryCallback) -> None:
        """Register ``callback(learner_name, instance, value)`` for every delivery."""
        self._delivery_callbacks.append(callback)

    def broadcast(self, payload, size_bytes: int, via: Optional[str] = None) -> Value:
        """Atomically broadcast ``payload`` through one of the ring's proposers."""
        proposer_name = via or self.descriptor.proposers[0]
        return self.hosts[proposer_name].propose(self.group, payload, size_bytes)

    def deliveries(self, learner: str) -> List:
        """``(instance, value)`` pairs delivered at ``learner`` so far, in order."""
        return list(self._deliveries.get(learner, []))

    def delivered_payloads(self, learner: str) -> List:
        return [value.payload for _, value in self._deliveries.get(learner, [])]

    @property
    def coordinator(self) -> RingHost:
        return self.hosts[self.descriptor.coordinator]


def build_broadcast_ring(
    world: Runtime,
    members: Sequence[str],
    registry: Optional[Registry] = None,
    group: GroupId = "broadcast",
    storage_mode: StorageMode = StorageMode.MEMORY,
    acceptors: Optional[Sequence[str]] = None,
    proposers: Optional[Sequence[str]] = None,
    learners: Optional[Sequence[str]] = None,
    sites: Optional[Dict[str, str]] = None,
    ring_config: Optional[RingConfig] = None,
    cpu_config: Optional[CPUConfig] = None,
    share_disk: bool = False,
) -> RingPaxosBroadcast:
    """Build a single-ring deployment.

    By default every member plays all three roles (the paper's Figure 3 setup:
    "one ring with three processes, all of which are proposers, acceptors and
    learners").
    """
    if len(members) < 1:
        raise ConfigurationError("a ring needs at least one member")
    registry = registry or Registry()
    acceptors = list(acceptors) if acceptors is not None else list(members)
    proposers = list(proposers) if proposers is not None else list(members)
    learners = list(learners) if learners is not None else list(members)
    descriptor = registry.register_ring(
        group,
        members_in_ring_order=members,
        proposers=proposers,
        acceptors=acceptors,
        learners=learners,
    )
    config = ring_config or RingConfig(storage_mode=storage_mode)
    if config.storage_mode is not storage_mode and ring_config is None:
        config = config.with_storage(storage_mode)

    shared_disk: Optional[StableStore] = None
    if share_disk:
        shared_disk = world.new_store(config.storage_mode)

    hosts: Dict[str, RingHost] = {}
    for name in members:
        site = sites.get(name) if sites else None
        host = RingHost(world, registry, name, site=site, cpu_config=cpu_config)
        disk = shared_disk if share_disk else world.new_store(config.storage_mode)
        host.join_ring(group, ring_config=config, disk=disk if name in acceptors else None)
        hosts[name] = host
    for learner in learners:
        registry.subscribe(learner, [group])
    return RingPaxosBroadcast(world, group, hosts, descriptor)
