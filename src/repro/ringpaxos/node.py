"""The host process for one or more ring roles.

A :class:`RingHost` corresponds to one OS process (one JVM in the paper's
implementation).  It owns a CPU, optionally one or more disks, and any number
of :class:`~repro.ringpaxos.role.RingRole` instances -- one per ring it
participates in.  Incoming protocol messages are routed to the right role by
their ``group`` field; everything else is handed to :meth:`on_other_message`
for subclasses (replicas, clients, the Multi-Ring learner) to handle.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Dict, List, Optional

from repro.config import RingConfig
from repro.coordination.registry import Registry
from repro.errors import MulticastError, ProcessCrashedError
from repro.net.ring import RingOverlay
from repro.obs import obs_of
from repro.ringpaxos.messages import (
    Decision,
    Phase2,
    Proposal,
    RetransmitReply,
    RetransmitRequest,
)
from repro.ringpaxos.role import REPAIR_TOKEN, RingRole
from repro.runtime.actor import Process
from repro.runtime.cpu import CPU, CPUConfig
from repro.runtime.interfaces import Runtime, StableStore
from repro.types import GroupId, InstanceId, Value

__all__ = ["RingHost"]

#: Signature of a decision sink: ``(group, instance, value)``.
DecisionSink = Callable[[GroupId, InstanceId, Value], None]

#: Message types handled by the per-ring roles; everything else goes to the
#: host-level handlers (client requests, recovery traffic, ...).
_RING_MESSAGE_TYPES = (Proposal, Phase2, Decision, RetransmitRequest)


class RingHost(Process):
    """A process hosting ring roles for one or more multicast groups."""

    def __init__(
        self,
        world: Runtime,
        registry: Registry,
        name: str,
        site: Optional[str] = None,
        cpu_config: Optional[CPUConfig] = None,
    ) -> None:
        super().__init__(world, name, site)
        self.registry = registry
        self.cpu = CPU(world.sim, cpu_config)
        # Hot-path bindings: both are per-world singletons.
        self._sim = world.sim
        self._network = world.network
        # Observability: the tracer is bound directly (its ``enabled`` check
        # guards every tracing touch point), the metrics registry only sees
        # this host through a pull-collector read at snapshot time.
        self.obs = obs_of(world)
        self._tracer = self.obs.tracer
        self.obs.metrics.add_collector(self._metric_samples)
        self.roles: Dict[GroupId, RingRole] = {}
        self._decision_sinks: List[DecisionSink] = []
        self._handlers: Dict[type, List[Callable[[str, object], None]]] = {}
        self._repair_reply_handler_registered = False

    # ------------------------------------------------------------------
    # ring membership
    # ------------------------------------------------------------------
    def join_ring(
        self,
        group: GroupId,
        ring_config: Optional[RingConfig] = None,
        disk: Optional[StableStore] = None,
    ) -> RingRole:
        """Take up this process's roles in the ring registered for ``group``."""
        if group in self.roles:
            return self.roles[group]
        descriptor = self.registry.ring(group)
        role = RingRole(self, descriptor, ring_config, disk=disk)
        self.roles[group] = role
        if role.config.repair_interval > 0:
            if not self._repair_reply_handler_registered:
                self._repair_reply_handler_registered = True
                self.register_handler(RetransmitReply, self._on_repair_retransmit_reply)
            if self.world.started and self.alive:
                role.start_repair()
        return role

    def role(self, group: GroupId) -> RingRole:
        try:
            return self.roles[group]
        except KeyError:
            raise MulticastError(f"{self.name} is not a member of ring {group!r}") from None

    def groups(self) -> List[GroupId]:
        return list(self.roles)

    # ------------------------------------------------------------------
    # proposing / delivering
    # ------------------------------------------------------------------
    def propose(self, group: GroupId, payload, size_bytes: int) -> Value:
        """Create a value from ``payload`` and atomically broadcast it on ``group``."""
        value = Value.create(
            payload, size_bytes, proposer=self.name, created_at=self._sim._now
        )
        tracer = self._tracer
        if tracer.enabled:
            value.trace = tracer.sample(value.proposer, value.uid)
        self.role(group).propose(value)
        return value

    def propose_value(self, group: GroupId, value: Value) -> Value:
        """Broadcast an already-created value (used by batching proxies)."""
        tracer = self._tracer
        if tracer.enabled and value.trace is None and not value.is_skip:
            value.trace = tracer.sample(value.proposer, value.uid)
        self.role(group).propose(value)
        return value

    def flush_batches(self) -> None:
        """Flush pending coordinator batches on every ring this host coordinates.

        Used at the end of experiments so the tail of the workload is not
        left waiting for a flush timeout.
        """
        for role in self.roles.values():
            if role.batcher is not None:
                role.batcher.flush()

    def add_decision_sink(self, sink: DecisionSink) -> None:
        """Register a callback invoked for every decision learned by this host."""
        self._decision_sinks.append(sink)

    def notify_decision(self, group: GroupId, instance: InstanceId, value: Value) -> None:
        """Called by ring roles when a decision is learned on this host."""
        for sink in self._decision_sinks:
            sink(group, instance, value)

    # ------------------------------------------------------------------
    # infrastructure used by the roles
    # ------------------------------------------------------------------
    def after_cpu(self, nbytes: int, action: Callable[..., None], *args, messages: int = 1) -> None:
        """Charge the host CPU for handling a message, then run ``action(*args)``.

        The action is scheduled *directly* (no crash-guard wrapper), so every
        action passed here MUST itself tolerate firing after a crash -- all
        ring-role handlers start with a ``host.alive`` check.  The real
        process would have lost the queued work on a crash anyway.  Passing
        the action's arguments through instead of closing over them keeps
        this per-message path allocation-free.
        """
        # CPU.charge inlined (the accounting below matches it bit for bit):
        # this runs once per protocol message on every host it crosses.
        cpu = self.cpu
        config = cpu.config
        if nbytes:
            work = (
                messages * config.per_message_cost + nbytes * config.per_byte_cost
            ) * config.overhead_factor
        else:
            # nbytes * per_byte_cost == 0.0 exactly, so dropping the term
            # leaves the float result unchanged.
            work = messages * config.per_message_cost * config.overhead_factor
        sim = self._sim
        now = sim._now
        done = cpu._busy_until
        if now > done:
            done = now
        done += work
        cpu._busy_until = done
        cpu._busy_time += work
        cpu.operations += 1
        if done <= now:
            if self.alive:
                action(*args)
        else:
            # Inlined Simulator.call_at (done > now is guaranteed above).
            heappush(sim._queue, (done, next(sim._seq), action, args))

    def ring_send(self, dest: str, msg) -> None:
        """Send a protocol message to the next ring member.

        Inlines :meth:`~repro.runtime.actor.Process.send`: this runs once per
        ring hop for every protocol message.
        """
        if not self.alive:
            raise ProcessCrashedError(f"{self.name} is crashed and cannot send")
        self.messages_sent += 1
        self._network.send(self.name, dest, msg, msg.size_bytes)

    def send_direct(self, dest: str, msg) -> None:
        """Send a message outside the ring overlay (replies, recovery traffic)."""
        self.send(dest, msg, size_bytes=getattr(msg, "size_bytes", 128))

    def next_live_member(self, overlay: RingOverlay, origin: str) -> Optional[str]:
        """The next live member clockwise from this host, or ``None`` to stop.

        Crashed members are skipped (the real system reconfigures the ring
        through Zookeeper); circulation stops when the next live member is the
        message's origin.  Walks the overlay's precomputed successor chain
        instead of materializing the full ring order per hop.
        """
        name = self.name
        world = self.world
        candidate = overlay.successor(name)
        while candidate != origin and candidate != name:
            process = world.get_process(candidate)
            if process is not None and process.alive:
                return candidate
            candidate = overlay.successor(candidate)
        return None

    # ------------------------------------------------------------------
    # message routing
    # ------------------------------------------------------------------
    def register_handler(self, message_type: type, handler: Callable[[str, object], None]) -> None:
        """Register a handler for a non-ring message type (recovery, client traffic, ...)."""
        self._handlers.setdefault(message_type, []).append(handler)

    def on_message(self, sender: str, payload) -> None:
        if isinstance(payload, _RING_MESSAGE_TYPES):
            role = self.roles.get(payload.group)
            if role is not None:
                # Dispatch straight off the role's exact-type handler table
                # (skipping RingRole.on_message, one frame per message).
                handler = role._dispatch.get(payload.__class__)
                if handler is not None:
                    handler(payload)
            return
        handlers = self._handlers.get(type(payload))
        if handlers:
            for handler in list(handlers):
                handler(sender, payload)
            return
        self.on_other_message(sender, payload)

    def on_other_message(self, sender: str, payload) -> None:
        """Hook for subclasses: non-ring messages without a registered handler."""

    def _on_repair_retransmit_reply(self, sender: str, msg: RetransmitReply) -> None:
        """Route gap-repair retransmissions to the owning ring role.

        Replica-recovery replies (token 0) are left to the recovery manager's
        own handler.
        """
        if msg.token != REPAIR_TOKEN:
            return
        role = self.roles.get(msg.group)
        if role is not None:
            role.on_repair_reply(msg)

    # ------------------------------------------------------------------
    # lifecycle / failure hooks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        super().on_start()
        for role in self.roles.values():
            role.start_repair()

    def on_crash(self) -> None:
        for role in self.roles.values():
            role.on_host_crash()

    def on_recover(self) -> None:
        super().on_recover()
        # Crashing cancelled every timer; re-arm instance repair where enabled.
        for role in self.roles.values():
            role.start_repair()

    def cpu_utilization_percent(self, start: float, end: float) -> float:
        """Convenience for the Figure 3 coordinator-CPU metric."""
        return self.cpu.utilization_percent(start, end)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _metric_samples(self):
        """Pull-collector for the metrics registry (snapshot time only).

        Reads the plain counters the hot paths already maintain; nothing here
        runs during protocol execution.  Subclasses extend the sample list.
        """
        node = self.name
        samples = [
            ("mrp_messages_sent_total", {"node": node}, self.messages_sent),
            ("mrp_cpu_busy_seconds_total", {"node": node}, self.cpu._busy_time),
        ]
        for group, role in self.roles.items():
            labels = {"node": node, "group": group}
            samples.append(("mrp_instances_started_total", labels, role.next_instance))
            samples.append(("mrp_values_proposed_total", labels, role.values_proposed))
            samples.append(("mrp_skips_proposed_total", labels, role.skips_proposed))
            samples.append(("mrp_decisions_learned_total", labels, role.decisions_learned))
            samples.append(("mrp_skips_learned_total", labels, role.skips_learned))
            samples.append(("mrp_repairs_proposed_total", labels, role.repairs_proposed))
            samples.append(("mrp_repair_gap_requests_total", labels, role.gap_requests))
            samples.append(
                ("mrp_repair_instances_recovered_total", labels, role.gap_instances_recovered)
            )
            samples.append(("mrp_window_stalls_total", labels, role.window_stalls))
            samples.append(("mrp_inflight_instances", labels, role.inflight_instances))
            if role.batcher is not None:
                samples.append(
                    ("mrp_batch_values_offered_total", labels, role.batcher.values_offered)
                )
                samples.append(
                    ("mrp_batches_flushed_total", labels, role.batcher.batches_flushed)
                )
        return samples
