"""The host process for one or more ring roles.

A :class:`RingHost` corresponds to one OS process (one JVM in the paper's
implementation).  It owns a CPU, optionally one or more disks, and any number
of :class:`~repro.ringpaxos.role.RingRole` instances -- one per ring it
participates in.  Incoming protocol messages are routed to the right role by
their ``group`` field; everything else is handed to :meth:`on_other_message`
for subclasses (replicas, clients, the Multi-Ring learner) to handle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import RingConfig
from repro.coordination.registry import Registry
from repro.errors import MulticastError
from repro.net.ring import RingOverlay
from repro.ringpaxos.messages import (
    Decision,
    Phase2,
    Proposal,
    RetransmitReply,
    RetransmitRequest,
)
from repro.ringpaxos.role import REPAIR_TOKEN, RingRole
from repro.sim.cpu import CPU, CPUConfig
from repro.sim.disk import Disk
from repro.sim.process import Process
from repro.sim.world import World
from repro.types import GroupId, InstanceId, Value

__all__ = ["RingHost"]

#: Signature of a decision sink: ``(group, instance, value)``.
DecisionSink = Callable[[GroupId, InstanceId, Value], None]

#: Message types handled by the per-ring roles; everything else goes to the
#: host-level handlers (client requests, recovery traffic, ...).
_RING_MESSAGE_TYPES = (Proposal, Phase2, Decision, RetransmitRequest)


class RingHost(Process):
    """A process hosting ring roles for one or more multicast groups."""

    def __init__(
        self,
        world: World,
        registry: Registry,
        name: str,
        site: Optional[str] = None,
        cpu_config: Optional[CPUConfig] = None,
    ) -> None:
        super().__init__(world, name, site)
        self.registry = registry
        self.cpu = CPU(world.sim, cpu_config)
        self.roles: Dict[GroupId, RingRole] = {}
        self._decision_sinks: List[DecisionSink] = []
        self._handlers: Dict[type, List[Callable[[str, object], None]]] = {}
        self._repair_reply_handler_registered = False

    # ------------------------------------------------------------------
    # ring membership
    # ------------------------------------------------------------------
    def join_ring(
        self,
        group: GroupId,
        ring_config: Optional[RingConfig] = None,
        disk: Optional[Disk] = None,
    ) -> RingRole:
        """Take up this process's roles in the ring registered for ``group``."""
        if group in self.roles:
            return self.roles[group]
        descriptor = self.registry.ring(group)
        role = RingRole(self, descriptor, ring_config, disk=disk)
        self.roles[group] = role
        if role.config.repair_interval > 0:
            if not self._repair_reply_handler_registered:
                self._repair_reply_handler_registered = True
                self.register_handler(RetransmitReply, self._on_repair_retransmit_reply)
            if self.world.started and self.alive:
                role.start_repair()
        return role

    def role(self, group: GroupId) -> RingRole:
        try:
            return self.roles[group]
        except KeyError:
            raise MulticastError(f"{self.name} is not a member of ring {group!r}") from None

    def groups(self) -> List[GroupId]:
        return list(self.roles)

    # ------------------------------------------------------------------
    # proposing / delivering
    # ------------------------------------------------------------------
    def propose(self, group: GroupId, payload, size_bytes: int) -> Value:
        """Create a value from ``payload`` and atomically broadcast it on ``group``."""
        value = Value.create(payload, size_bytes, proposer=self.name, created_at=self.now)
        self.role(group).propose(value)
        return value

    def propose_value(self, group: GroupId, value: Value) -> Value:
        """Broadcast an already-created value (used by batching proxies)."""
        self.role(group).propose(value)
        return value

    def flush_batches(self) -> None:
        """Flush pending coordinator batches on every ring this host coordinates.

        Used at the end of experiments so the tail of the workload is not
        left waiting for a flush timeout.
        """
        for role in self.roles.values():
            if role.batcher is not None:
                role.batcher.flush()

    def add_decision_sink(self, sink: DecisionSink) -> None:
        """Register a callback invoked for every decision learned by this host."""
        self._decision_sinks.append(sink)

    def notify_decision(self, group: GroupId, instance: InstanceId, value: Value) -> None:
        """Called by ring roles when a decision is learned on this host."""
        for sink in self._decision_sinks:
            sink(group, instance, value)

    # ------------------------------------------------------------------
    # infrastructure used by the roles
    # ------------------------------------------------------------------
    def after_cpu(self, nbytes: int, action: Callable[[], None], messages: int = 1) -> None:
        """Charge the host CPU for handling a message, then run ``action``.

        The action is dropped if the host crashes before the CPU work
        completes (the real process would have lost it anyway).
        """
        done = self.cpu.charge(nbytes=nbytes, messages=messages)

        def guarded() -> None:
            if self.alive:
                action()

        if done <= self.now:
            guarded()
        else:
            self.world.sim.schedule_at(done, guarded)

    def ring_send(self, dest: str, msg) -> None:
        """Send a protocol message to the next ring member."""
        self.send(dest, msg, size_bytes=msg.size_bytes)

    def send_direct(self, dest: str, msg) -> None:
        """Send a message outside the ring overlay (replies, recovery traffic)."""
        self.send(dest, msg, size_bytes=getattr(msg, "size_bytes", 128))

    def next_live_member(self, overlay: RingOverlay, origin: str) -> Optional[str]:
        """The next live member clockwise from this host, or ``None`` to stop.

        Crashed members are skipped (the real system reconfigures the ring
        through Zookeeper); circulation stops when the next live member is the
        message's origin.
        """
        for candidate in overlay.walk_from(self.name):
            if candidate == origin:
                return None
            if candidate == self.name:
                return None
            if self.world.has_process(candidate) and self.world.process(candidate).alive:
                return candidate
        return None

    # ------------------------------------------------------------------
    # message routing
    # ------------------------------------------------------------------
    def register_handler(self, message_type: type, handler: Callable[[str, object], None]) -> None:
        """Register a handler for a non-ring message type (recovery, client traffic, ...)."""
        self._handlers.setdefault(message_type, []).append(handler)

    def on_message(self, sender: str, payload) -> None:
        if isinstance(payload, _RING_MESSAGE_TYPES):
            group = getattr(payload, "group", None)
            if group is not None and group in self.roles:
                self.roles[group].on_message(sender, payload)
            return
        handlers = self._handlers.get(type(payload))
        if handlers:
            for handler in list(handlers):
                handler(sender, payload)
            return
        self.on_other_message(sender, payload)

    def on_other_message(self, sender: str, payload) -> None:
        """Hook for subclasses: non-ring messages without a registered handler."""

    def _on_repair_retransmit_reply(self, sender: str, msg: RetransmitReply) -> None:
        """Route gap-repair retransmissions to the owning ring role.

        Replica-recovery replies (token 0) are left to the recovery manager's
        own handler.
        """
        if msg.token != REPAIR_TOKEN:
            return
        role = self.roles.get(msg.group)
        if role is not None:
            role.on_repair_reply(msg)

    # ------------------------------------------------------------------
    # lifecycle / failure hooks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        super().on_start()
        for role in self.roles.values():
            role.start_repair()

    def on_crash(self) -> None:
        for role in self.roles.values():
            role.on_host_crash()

    def on_recover(self) -> None:
        super().on_recover()
        # Crashing cancelled every timer; re-arm instance repair where enabled.
        for role in self.roles.values():
            role.start_repair()

    def cpu_utilization_percent(self, start: float, end: float) -> float:
        """Convenience for the Figure 3 coordinator-CPU metric."""
        return self.cpu.utilization_percent(start, end)
