"""Ring Paxos wire messages.

Every message carries the multicast ``group`` it belongs to so that a single
host process participating in several rings (the normal case in Multi-Ring
Paxos) can route it to the right per-ring role.

``Phase2`` is the combined Phase 2A/2B message of the paper: the coordinator
creates it with its own vote, and each acceptor extends the ``votes`` set as
the message travels around the ring.  ``count > 1`` is used for skip ranges --
the coordinator may skip several consensus instances with a single message
(Section 4, rate leveling).

The hot-path messages (``Proposal``, ``Phase2``, ``Decision``) are slotted,
non-frozen dataclasses: they are constructed on every ring hop, where the
``object.__setattr__`` cost of frozen init is measurable.  Treat them as
immutable -- a message is never mutated after construction; acceptors build a
*new* ``Phase2`` to extend the vote set.

With coordinator-side batching enabled the ``value`` of a ``Phase2`` /
``Decision`` may be a batch envelope (its payload is a
:class:`~repro.types.ValueBatch`) carrying several application values in one
consensus instance; the wire format is unchanged -- a batch is just a bigger
value -- and learners unpack it at delivery time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.net.message import HEADER_BYTES, ProtocolMessage, utf8_len
from repro.paxos.types import Ballot
from repro.types import GroupId, InstanceId, Value

#: Wire-size building blocks matching :func:`repro.net.message.estimate_size`:
#: integers count 8 bytes, a ballot is an opaque 64-byte object, a set adds an
#: 8-byte length prefix.  The specialized ``size_bytes`` properties below MUST
#: stay byte-for-byte equal to the generic field walk -- they exist because
#: sizing runs once per ring hop for every message, and the generic
#: ``dataclasses`` walk is measurable there.
_INT_BYTES = 8
_BALLOT_BYTES = 64
_CONTAINER_BYTES = 8

__all__ = [
    "Proposal",
    "Phase2",
    "Decision",
    "RetransmitRequest",
    "RetransmitReply",
]


@dataclass(slots=True)
class Proposal(ProtocolMessage):
    """A value travelling clockwise from its proposer to the coordinator."""

    group: GroupId
    value: Value

    @property
    def size_bytes(self) -> int:
        return HEADER_BYTES + utf8_len(self.group) + self.value.size_bytes


@dataclass(slots=True)
class Phase2(ProtocolMessage):
    """Combined Phase 2A/2B message circulating in the ring.

    ``instance`` is the first consensus instance covered; ``count`` is the
    number of consecutive instances (always 1 except for skip ranges).
    ``origin`` is the coordinator that created the message, used as the stop
    condition for circulation.  ``started_at`` is stamped by the coordinator
    when the instance starts, but only for traced values (see
    :mod:`repro.obs.tracing`); ``None`` keeps the wire size unchanged.
    """

    group: GroupId
    instance: InstanceId
    count: int
    ballot: Ballot
    value: Value
    votes: FrozenSet[str]
    origin: str
    started_at: Optional[float] = None

    @property
    def size_bytes(self) -> int:
        total = (
            HEADER_BYTES
            + utf8_len(self.group)
            + _INT_BYTES  # instance
            + _INT_BYTES  # count
            + _BALLOT_BYTES
            + self.value.size_bytes
            + _CONTAINER_BYTES
            + utf8_len(self.origin)
        )
        for vote in self.votes:
            total += utf8_len(vote)
        if self.started_at is not None:
            total += _INT_BYTES
        return total


@dataclass(slots=True)
class Decision(ProtocolMessage):
    """A decided value circulating until every ring member has seen it.

    The decision carries the value so that members that have not yet seen the
    corresponding ``Phase2`` (those downstream of the acceptor that gathered
    the final vote) can still learn it.  ``started_at``/``decided_at`` are
    trace timestamps (instance start and quorum completion), carried only for
    traced values so untraced wire sizes are unchanged.
    """

    group: GroupId
    instance: InstanceId
    count: int
    value: Value
    origin: str
    started_at: Optional[float] = None
    decided_at: Optional[float] = None

    @property
    def size_bytes(self) -> int:
        total = (
            HEADER_BYTES
            + utf8_len(self.group)
            + _INT_BYTES  # instance
            + _INT_BYTES  # count
            + self.value.size_bytes
            + utf8_len(self.origin)
        )
        if self.started_at is not None:
            total += _INT_BYTES
        if self.decided_at is not None:
            total += _INT_BYTES
        return total


@dataclass(frozen=True, slots=True)
class RetransmitRequest(ProtocolMessage):
    """A recovering replica asks an acceptor for decided values it missed.

    ``token`` distinguishes the two retransmission clients -- replica
    recovery (0, the default) and the learner gap-repair path
    (:data:`~repro.ringpaxos.role.REPAIR_TOKEN`) -- so each handler can
    ignore replies addressed to the other.
    """

    group: GroupId
    first: InstanceId
    last: InstanceId
    reply_to: str
    token: int = 0


@dataclass(frozen=True, slots=True)
class RetransmitReply(ProtocolMessage):
    """Acceptor response to a :class:`RetransmitRequest`.

    ``entries`` holds ``(instance, value)`` pairs; ``trimmed_up_to`` is set
    when part of the requested range has already been trimmed from the log,
    in which case the replica must install a more recent checkpoint first.
    """

    group: GroupId
    entries: Tuple[Tuple[InstanceId, Value], ...]
    trimmed_up_to: Optional[InstanceId] = None
    token: int = 0
