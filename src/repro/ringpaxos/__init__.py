"""Ring Paxos: atomic broadcast over a unidirectional ring overlay.

One Ring Paxos ring implements atomic broadcast for one multicast group.
Multi-Ring Paxos (:mod:`repro.multiring`) composes several rings into atomic
multicast.  The implementation follows Section 4 of the paper:

* all processes of a ring (proposers, acceptors, learners) are arranged in a
  logical unidirectional ring; messages only flow clockwise,
* Phase 1 is pre-executed for a large window of instances by the coordinator
  (one of the acceptors),
* a proposal travels around the ring until it reaches the coordinator, which
  assigns it the next consensus instance and emits a combined Phase 2A/2B
  message carrying the value and its own vote,
* each acceptor appends its vote (after logging it to stable storage) and
  forwards the message; once a majority of votes has accumulated the message
  is replaced by a decision that keeps circulating until every ring member
  has seen both the value and the decision,
* the variant implemented here never relies on IP multicast, matching the
  paper's large-scale/WAN-friendly redesign.
"""

from repro.ringpaxos.messages import (
    Decision,
    Phase2,
    Proposal,
    RetransmitReply,
    RetransmitRequest,
)
from repro.ringpaxos.role import RingRole
from repro.ringpaxos.node import RingHost
from repro.ringpaxos.broadcast import RingPaxosBroadcast, build_broadcast_ring

__all__ = [
    "Proposal",
    "Phase2",
    "Decision",
    "RetransmitRequest",
    "RetransmitReply",
    "RingRole",
    "RingHost",
    "RingPaxosBroadcast",
    "build_broadcast_ring",
]
