"""The per-ring protocol state machine.

A :class:`RingRole` holds everything one process knows about one ring: its
roles in the ring (proposer / acceptor / learner / coordinator), the
acceptor's stable log, the coordinator's instance counter, and the learner's
set of already-learned decisions.  The role is host-agnostic: it talks to the
outside world only through the :class:`~repro.ringpaxos.node.RingHost` that
owns it, which provides messaging, CPU accounting and liveness information.

Protocol summary (Section 4 of the paper, Figure 2b):

1. a proposer's value travels clockwise until it reaches the coordinator;
2. the coordinator assigns it the next consensus instance and forwards a
   combined Phase 2A/2B message carrying the value and its own vote;
3. every acceptor logs its vote to stable storage *before* forwarding the
   message with the vote appended;
4. the acceptor whose vote completes a majority replaces the message with a
   decision, which keeps circulating until all members have received it;
5. learners deliver a value once they know both the value and its decision
   (the decision message carries the value, so one message suffices).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.config import RingConfig
from repro.errors import ConsensusError, MulticastError, StorageError
from repro.paxos.storage import AcceptorStorage
from repro.paxos.types import Ballot
from repro.ringpaxos.batching import CoordinatorBatcher
from repro.ringpaxos.messages import (
    Decision,
    Phase2,
    Proposal,
    RetransmitReply,
    RetransmitRequest,
)
from repro.runtime.interfaces import StableStore, StorageMode
from repro.types import GroupId, InstanceId, Value, skip_value, unpack_value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.coordination.registry import RingDescriptor
    from repro.ringpaxos.node import RingHost

__all__ = ["RingRole", "REPAIR_TOKEN"]

#: Token marking retransmission traffic that belongs to the learner
#: gap-repair path (as opposed to replica recovery, which uses token 0).
REPAIR_TOKEN = -1

#: Sentinel distinguishing "no buffered value" from a buffered ``None``.
_MISSING = object()


class RingRole:
    """One process's participation in one Ring Paxos ring."""

    def __init__(
        self,
        host: "RingHost",
        descriptor: "RingDescriptor",
        config: Optional[RingConfig] = None,
        disk: Optional[StableStore] = None,
    ) -> None:
        self.host = host
        self.descriptor = descriptor
        #: The ring order never changes for a live descriptor (membership
        #: changes build a new ring); cached for the per-hop forward path.
        self._overlay = descriptor.overlay
        self.config = config or RingConfig()
        self.group: GroupId = descriptor.group
        self.name = host.name
        if self.name not in descriptor.overlay:
            raise ConsensusError(f"{self.name} is not a member of ring {self.group!r}")

        roles = descriptor.roles_of(self.name)
        self.is_proposer = "proposer" in roles
        self.is_acceptor = "acceptor" in roles
        self.is_learner = "learner" in roles
        self.is_coordinator = descriptor.coordinator == self.name
        self.quorum = descriptor.quorum_size

        #: Ballot used for the whole run; Phase 1 is pre-executed for all
        #: instances under this ballot (paper, Figure 2b).
        self.ballot = Ballot(1, descriptor.coordinator)

        self.storage: Optional[AcceptorStorage] = None
        if self.is_acceptor:
            if disk is None:
                # Resolve the stable store through the runtime backend: the
                # simulator builds a timing-model disk, the live backend a
                # real append log (or nothing for in-memory rings).
                disk = host.world.new_store(self.config.storage_mode)
            self.storage = AcceptorStorage(
                host.world.sim, mode=self.config.storage_mode, disk=disk
            )

        # Coordinator state.
        self.next_instance: InstanceId = 0
        self.proposals_since_level = 0

        # Pipelined instance window: instances the coordinator started whose
        # decision it has not yet learned.  When the window is full, further
        # starts queue in FIFO order and drain as decisions close instances.
        self._inflight = 0
        self._start_queue: Deque[Tuple[Value, int]] = deque()
        self._draining = False
        self.window_stalls = 0
        self.max_inflight = 0
        #: Skip instances sitting in the start queue (not yet started).  The
        #: rate leveler subtracts these from its deficit so that window
        #: backpressure does not make it re-propose the same skips forever.
        self.queued_skip_instances = 0

        # Coordinator-side batcher (URingPaxos-style value packing).
        self.batcher: Optional[CoordinatorBatcher] = None
        if self.is_coordinator and self.config.batching.enabled:
            self.batcher = CoordinatorBatcher(self, self.config.batching)

        # Learner state: which instances were already learned (dedup between
        # the Phase2-completion path and the Decision path), plus the in-order
        # delivery cursor -- decisions learned out of instance order (possible
        # around failures) are buffered and released in order.  Instances
        # supplied to the node outside the ring (checkpoint install, acceptor
        # retransmission) are tracked in ``_injected``: the cursor passes over
        # them without a notification, but never jumps a hole -- a decision
        # that is still circulating fills its hole when it arrives.
        self._learned: Set[InstanceId] = set()
        self.highest_learned: InstanceId = -1
        self._next_delivery: InstanceId = 0
        self._out_of_order: Dict[InstanceId, Value] = {}
        self._injected: Set[InstanceId] = set()

        # Instance repair (chaos resilience, enabled by config.repair_interval):
        # the coordinator re-executes Phase 2 for started-but-undecided
        # instances, and learners fetch missing decided instances to fill
        # delivery-cursor gaps left by dropped messages.
        self._repair_timer = None
        self._repair_floor: InstanceId = 0
        self._repair_pending: Set[InstanceId] = set()
        self._repair_cursor_seen: InstanceId = -1

        # Exact-type message dispatch (ring messages are final classes); one
        # dict hit replaces the isinstance chain on the per-message path.
        self._dispatch = {
            Proposal: self._on_proposal,
            Phase2: self._on_phase2,
            Decision: self._on_decision,
            RetransmitRequest: self._on_retransmit_request,
        }

        # Causal tracing: bound once; every touch point is guarded by the
        # tracer's ``enabled`` flag so the disabled fast path is one
        # attribute load + branch.
        self._tracer = host.obs.tracer

        # Statistics.
        self.values_proposed = 0
        self.skips_proposed = 0
        self.decisions_learned = 0
        self.skips_learned = 0
        self.repairs_proposed = 0
        self.gap_requests = 0
        self.gap_instances_recovered = 0

    # ------------------------------------------------------------------
    # proposing
    # ------------------------------------------------------------------
    def propose(self, value: Value) -> None:
        """Atomically broadcast ``value`` on this ring."""
        if not (self.is_proposer or self.is_coordinator):
            raise MulticastError(
                f"{self.name} is not a proposer for group {self.group!r}"
            )
        self.host.after_cpu(value.size_bytes, self._submit, value)

    def _submit(self, value: Value) -> None:
        if not self.host.alive:
            return  # the host crashed while the CPU work was queued
        if self.is_coordinator:
            self._intake(value)
        else:
            self._forward(Proposal(group=self.group, value=value), origin=self.name)

    def _intake(self, value: Value) -> None:
        """Coordinator intake: batch the value, or start it directly."""
        if not self.host.alive:
            return
        if self.batcher is not None:
            self.batcher.offer(value)
        else:
            self.enqueue_instances(value, 1)

    def propose_skip(self, count: int) -> None:
        """Skip ``count`` consensus instances (rate leveling; coordinator only)."""
        if not self.is_coordinator:
            raise ConsensusError("only the coordinator can propose skip instances")
        if count <= 0:
            return
        value = skip_value(created_at=self.host.now, proposer=self.name)
        self.enqueue_instances(value, count)

    def reset_level_counter(self) -> int:
        """Return and reset the number of proposals since the last Δ interval."""
        count = self.proposals_since_level
        self.proposals_since_level = 0
        return count

    # ------------------------------------------------------------------
    # coordinator logic
    # ------------------------------------------------------------------
    @property
    def inflight_instances(self) -> int:
        """Instances started by this coordinator and not yet decided."""
        return self._inflight

    @property
    def queued_starts(self) -> int:
        """Instance starts waiting for the pipeline window to open."""
        return len(self._start_queue)

    def _window_has_room(self, count: int) -> bool:
        depth = self.config.pipeline_depth
        if depth <= 0:
            return True
        if self._inflight == 0:
            # A single oversized range (e.g. a large skip batch) must not
            # block forever on a small window.
            return True
        return self._inflight + count <= depth

    def enqueue_instances(self, value: Value, count: int) -> None:
        """Start ``count`` instances for ``value``, respecting the window."""
        if self._start_queue or not self._window_has_room(count):
            self._start_queue.append((value, count))
            if value.is_skip:
                self.queued_skip_instances += count
            self.window_stalls += 1
        else:
            self._start_instances(value, count)

    def _drain_start_queue(self) -> None:
        if self._draining:
            return
        self._draining = True
        try:
            while self._start_queue and self._window_has_room(self._start_queue[0][1]):
                value, count = self._start_queue.popleft()
                if value.is_skip:
                    self.queued_skip_instances -= count
                self._start_instances(value, count)
        finally:
            self._draining = False

    def _start_instances(self, value: Value, count: int) -> None:
        instance = self.next_instance
        self.next_instance += count
        self._inflight += count
        if self._inflight > self.max_inflight:
            self.max_inflight = self._inflight
        if value.is_skip:
            self.skips_proposed += count
        else:
            self.values_proposed += 1
            self.proposals_since_level += 1
        started_at = None
        if self._tracer.enabled and not value.is_skip:
            started_at = self._trace_instance_start(value, instance)
        message = Phase2(
            group=self.group,
            instance=instance,
            count=count,
            ballot=self.ballot,
            value=value,
            votes=frozenset([self.name]),
            origin=self.name,
            started_at=started_at,
        )
        # The coordinator is an acceptor: it logs its own vote before the
        # message leaves (Section 5.1).
        self._log_vote(message, self._after_vote, message)

    def _trace_instance_start(self, value: Value, instance: InstanceId):
        """Close the ``propose`` span for each traced value entering Phase 2.

        Returns the Phase 2 start timestamp when the instance carries at
        least one traced value (so the message gets stamped), else ``None``
        (so the wire bytes stay identical to an untraced build).
        """
        tracer = self._tracer
        now = self.host._sim._now
        traced = False
        for inner in unpack_value(value):
            if inner.trace is not None:
                traced = True
                tracer.record(
                    inner.trace, "propose", self.name, inner.created_at, now,
                    group=self.group, instance=instance,
                )
        return now if traced else None

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def on_message(self, sender: str, payload) -> None:
        handler = self._dispatch.get(payload.__class__)
        if handler is not None:
            handler(payload)

    def _on_proposal(self, msg: Proposal) -> None:
        if self.is_coordinator:
            self.host.after_cpu(msg.value.size_bytes, self._intake, msg.value)
        else:
            # Not the coordinator: keep forwarding clockwise.
            self.host.after_cpu(0, self._forward, msg, msg.value.proposer or self.name)

    def _on_phase2(self, msg: Phase2) -> None:
        if self.is_acceptor and not self.is_coordinator:
            record_check = msg.ballot >= self.ballot
            if record_check:
                updated = Phase2(
                    group=msg.group,
                    instance=msg.instance,
                    count=msg.count,
                    ballot=msg.ballot,
                    value=msg.value,
                    votes=msg.votes | {self.name},
                    origin=msg.origin,
                    started_at=msg.started_at,
                )
                self.host.after_cpu(msg.value.size_bytes, self._vote, updated)
                return
        # Non-acceptors (and acceptors that cannot vote) forward unchanged.
        self.host.after_cpu(0, self._forward, msg, msg.origin)

    def _vote(self, msg: Phase2) -> None:
        if not self.host.alive:
            return
        self._log_vote(msg, self._after_vote, msg)

    def _after_vote(self, msg: Phase2) -> None:
        if len(msg.votes) >= self.quorum:
            decided_at = None
            if msg.started_at is not None and self._tracer.enabled:
                decided_at = self.host._sim._now
                tracer = self._tracer
                for inner in unpack_value(msg.value):
                    if inner.trace is not None:
                        tracer.record(
                            inner.trace, "phase2", self.name, msg.started_at,
                            decided_at, group=self.group, instance=msg.instance,
                        )
            decision = Decision(
                group=msg.group,
                instance=msg.instance,
                count=msg.count,
                value=msg.value,
                origin=self.name,
                started_at=msg.started_at,
                decided_at=decided_at,
            )
            self._learn(msg.instance, msg.count, msg.value, decided_at=decided_at)
            self._mark_decided_range(msg.instance, msg.count)
            self._forward(decision, origin=self.name)
        else:
            self._forward(msg, origin=msg.origin)

    def _on_decision(self, msg: Decision) -> None:
        cpu_bytes = msg.value.size_bytes if msg.instance not in self._learned else 0
        self.host.after_cpu(cpu_bytes, self._apply_decision, msg)

    def _apply_decision(self, msg: Decision) -> None:
        if not self.host.alive:
            return
        self._learn(msg.instance, msg.count, msg.value, decided_at=msg.decided_at)
        storage = self.storage
        if storage is not None and self.is_acceptor:
            # Acceptors downstream of the decision never cast a vote; they
            # still log the decided value so that any acceptor can serve
            # retransmissions during recovery.
            if msg.count == 1:
                storage.note_decided(msg.instance, self.ballot, msg.value)
            else:
                for offset in range(msg.count):
                    storage.note_decided(msg.instance + offset, self.ballot, msg.value)
        self._forward(msg, origin=msg.origin)

    def _on_retransmit_request(self, msg: RetransmitRequest) -> None:
        if not self.is_acceptor or self.storage is None:
            return
        try:
            entries = tuple(
                self.storage.read_range(
                    msg.first,
                    msg.last,
                    # Gap repair fills holes in a *live* delivery sequence, so
                    # it may only receive decided values; replica recovery
                    # replays above a quorum checkpoint, where the accepted
                    # value is the decided one by Predicate 1.
                    decided_only=msg.token == REPAIR_TOKEN,
                )
            )
            reply = RetransmitReply(group=self.group, entries=entries, token=msg.token)
        except Exception:
            reply = RetransmitReply(
                group=self.group,
                entries=(),
                trimmed_up_to=self.storage.trimmed_up_to,
                token=msg.token,
            )
        payload_bytes = sum(value.size_bytes for _, value in reply.entries)
        self.host.after_cpu(payload_bytes, self._send_reply, msg.reply_to, reply)

    def _send_reply(self, dest: str, reply: RetransmitReply) -> None:
        if self.host.alive:
            self.host.send_direct(dest, reply)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _log_vote(self, msg: Phase2, done, *done_args) -> None:
        if self.storage is None:
            done(*done_args)
            return
        self.storage.log_votes_range(
            msg.instance, msg.count, msg.ballot, msg.value,
            callback=done, callback_args=done_args,
        )

    def _mark_decided_range(self, first: InstanceId, count: int) -> None:
        if self.storage is None:
            return
        for offset in range(count):
            self.storage.mark_decided(first + offset)

    def _learn(
        self,
        first: InstanceId,
        count: int,
        value: Value,
        decided_at: Optional[float] = None,
    ) -> None:
        newly_learned = 0
        learned = self._learned
        if count == 1:
            # Fast path: all but skip ranges cover a single instance.
            if first not in learned:
                learned.add(first)
                newly_learned = 1
                if first > self.highest_learned:
                    self.highest_learned = first
                if value.is_skip:
                    self.skips_learned += 1
                else:
                    self.decisions_learned += 1
                if self.is_learner and first >= self._next_delivery:
                    self._out_of_order[first] = value
        else:
            for offset in range(count):
                instance = first + offset
                if instance in learned:
                    continue
                learned.add(instance)
                newly_learned += 1
                if instance > self.highest_learned:
                    self.highest_learned = instance
                if value.is_skip:
                    self.skips_learned += 1
                else:
                    self.decisions_learned += 1
                if self.is_learner and instance >= self._next_delivery:
                    self._out_of_order[instance] = value
        if newly_learned and not value.is_skip and self._tracer.enabled:
            self._trace_learned(value, first, decided_at)
        self._release_in_order()
        if self.is_coordinator and newly_learned:
            self._inflight = max(0, self._inflight - newly_learned)
            self._drain_start_queue()
        # Bound the dedup set: everything below the lowest unlearned instance
        # can be forgotten (kept coarse to stay cheap).
        if len(self._learned) > 100000:
            floor = self.highest_learned - 50000
            self._learned = {i for i in self._learned if i >= floor}
            self._injected = {i for i in self._injected if i >= self._next_delivery}

    def _trace_learned(self, value: Value, instance: InstanceId, decided_at) -> None:
        """Close ``decide`` spans and open the merge-wait interval.

        Runs before :meth:`_release_in_order` so that the merge-wait mark
        exists by the time the merge (synchronously) releases the value.
        """
        tracer = self._tracer
        now = self.host._sim._now
        learner = self.is_learner
        for inner in unpack_value(value):
            trace_id = inner.trace
            if trace_id is None:
                continue
            if decided_at is not None:
                tracer.record(
                    trace_id, "decide", self.name, decided_at, now,
                    group=self.group, instance=instance,
                )
            if learner:
                tracer.mark(trace_id, f"merge:{self.name}", now)

    def _release_in_order(self) -> None:
        """Release buffered decisions in instance order (pipelining keeps
        several instances open, but learners observe a gap-free sequence).

        The cursor also passes over *injected* instances -- supplied through
        recovery straight to the merge -- without re-notifying them.  It stops
        at a genuine hole: the missing decision is still circulating and will
        resume the release when it arrives.
        """
        if not self.is_learner:
            return
        out_of_order = self._out_of_order
        while True:
            cursor = self._next_delivery
            value = out_of_order.pop(cursor, _MISSING)
            if value is not _MISSING:
                # Commit the cursor before notifying: the callback chain may
                # fast-forward it (checkpoint install), and the loop re-reads
                # it afterwards.
                self._next_delivery = cursor + 1
                self.host.notify_decision(self.group, cursor, value)
            elif cursor in self._injected:
                self._injected.discard(cursor)
                self._next_delivery = cursor + 1
            else:
                break

    def _forward(self, msg, origin: str) -> None:
        """Forward ``msg`` to the next live ring member, stopping at ``origin``."""
        host = self.host
        if not host.alive:
            return  # the host crashed while the message was being processed
        next_hop = host.next_live_member(self._overlay, origin)
        if next_hop is None:
            return
        host.ring_send(next_hop, msg)

    def learned_instances(self) -> List[InstanceId]:
        return sorted(self._learned)

    def inject_learned(self, instance: InstanceId) -> None:
        """Mark one instance as learned outside the ring (recovery retransmission).

        The instance was fed straight into the merge, so the in-order
        delivery cursor passes over it without a notification -- but only in
        order: retransmitted instances can be sparse (a decision may still
        have been circulating when the acceptor served the request), and the
        cursor must wait at such a hole for the live decision rather than
        jump it and drop the decision when it arrives.
        """
        self._learned.add(instance)
        if instance > self.highest_learned:
            self.highest_learned = instance
        if self.is_learner and instance >= self._next_delivery:
            # Externally supplied: supersedes any buffered live copy.
            self._out_of_order.pop(instance, None)
            self._injected.add(instance)
            self._release_in_order()

    def fast_forward_delivery(self, next_instance: InstanceId) -> None:
        """Jump the in-order delivery cursor to ``next_instance``.

        Called when an installed checkpoint covers every instance below
        ``next_instance``: the gap below the cursor was applied through state
        transfer, will never circulate again, and must not be waited for.
        Live decisions already buffered above the new cursor are released.
        """
        if not self.is_learner or next_instance <= self._next_delivery:
            return
        if next_instance - 1 > self.highest_learned:
            self.highest_learned = next_instance - 1
        self._next_delivery = next_instance
        self._out_of_order = {
            i: v for i, v in self._out_of_order.items() if i >= next_instance
        }
        self._injected = {i for i in self._injected if i >= next_instance}
        self._release_in_order()

    # ------------------------------------------------------------------
    # instance repair (crash / partition resilience)
    # ------------------------------------------------------------------
    def start_repair(self) -> None:
        """Arm the periodic instance-repair timer (no-op unless configured).

        Called by the host on start and again on recovery (crashing cancels
        every timer).  Idempotent while a timer is already armed.
        """
        if self.config.repair_interval <= 0:
            return
        if not (self.is_coordinator or self.is_learner):
            return
        if self._repair_timer is not None and self._repair_timer.active:
            return
        self._repair_timer = self.host.set_periodic_timer(
            self.config.repair_interval, self._repair_tick
        )

    def _repair_tick(self) -> None:
        if not self.host.alive:
            return
        if self.is_coordinator:
            self._repair_undecided()
        if self.is_learner:
            self._repair_gap()

    def _repair_undecided(self) -> None:
        """Re-execute Phase 2 for instances started but never decided.

        A crash or partition can eat a ``Phase2`` or ``Decision`` mid-ring,
        leaving the instance open forever and stalling every learner's
        in-order cursor behind the hole.  The coordinator re-proposes its own
        accepted value (logged before the original message left, so a durable
        log always has it); an instance with no logged vote never put a
        message on the wire and is filled with a skip.  An instance is only
        repaired after staying undecided for two consecutive ticks, giving
        in-flight decisions one repair interval of grace.
        """
        while self._repair_floor < self.next_instance and (
            self._repair_floor in self._learned
            or (self.storage is not None and self.storage.is_trimmed(self._repair_floor))
        ):
            self._repair_floor += 1
        undecided: List[InstanceId] = []
        instance = self._repair_floor
        while instance < self.next_instance and len(undecided) < self.config.repair_batch:
            if instance not in self._learned:
                undecided.append(instance)
            instance += 1
        due = [i for i in undecided if i in self._repair_pending]
        self._repair_pending = set(undecided)
        for instance in due:
            value: Optional[Value] = None
            if self.storage is not None:
                try:
                    value = self.storage.accepted_value(instance)
                except StorageError:
                    continue  # trimmed in the meantime: decided long ago
            if value is None:
                value = skip_value(created_at=self.host.now, proposer=self.name)
            message = Phase2(
                group=self.group,
                instance=instance,
                count=1,
                ballot=self.ballot,
                value=value,
                votes=frozenset([self.name]),
                origin=self.name,
            )
            self.repairs_proposed += 1
            self._log_vote(message, self._after_vote, message)

    def _repair_gap(self) -> None:
        """Fetch decided instances missing below the learner's known horizon.

        A decision dropped downstream of the quorum leaves this learner with
        a hole below ``highest_learned``.  If the in-order cursor has not
        moved since the previous tick, ask a live acceptor to retransmit the
        missing range.  Recovery owns retransmission while it is running.
        """
        cursor = self._next_delivery
        stuck = cursor == self._repair_cursor_seen
        self._repair_cursor_seen = cursor
        if not stuck or self.highest_learned <= cursor:
            return
        merge = getattr(self.host, "merge", None)
        if merge is not None and merge.paused:
            return
        recovery = getattr(self.host, "recovery", None)
        if recovery is not None and recovery.recovering:
            return
        acceptor = self._live_acceptor()
        if acceptor is None:
            return
        self.gap_requests += 1
        self.host.send_direct(
            acceptor,
            RetransmitRequest(
                group=self.group,
                first=cursor,
                last=min(self.highest_learned, cursor + self.config.repair_batch),
                reply_to=self.name,
                token=REPAIR_TOKEN,
            ),
        )

    def _live_acceptor(self) -> Optional[str]:
        """A live, reachable acceptor, rotated across attempts.

        Rotation matters: only acceptors the decision passed through know an
        instance is decided, so consecutive requests must not keep hitting
        the same (possibly unknowing) acceptor.
        """
        world = self.host.world
        candidates = [name for name in self.descriptor.acceptors if name != self.name]
        if not candidates:
            return None
        start = self.gap_requests % len(candidates)
        for offset in range(len(candidates)):
            name = candidates[(start + offset) % len(candidates)]
            if world.has_process(name) and world.process(name).alive:
                if not world.network.link_faulted(self.name, name):
                    return name
        return None

    def on_repair_reply(self, msg: RetransmitReply) -> None:
        """Inject retransmitted instances fetched by :meth:`_repair_gap`."""
        if (
            msg.trimmed_up_to is not None
            and not msg.entries
            and self._next_delivery <= msg.trimmed_up_to
        ):
            # The gap was trimmed from the acceptor logs: those instances are
            # only recoverable through a checkpoint (Section 5 trim
            # predicate), so hand the problem to the recovery manager instead
            # of re-requesting a range no acceptor can serve.
            recovery = getattr(self.host, "recovery", None)
            if recovery is not None and not recovery.recovering:
                self.host.log(
                    f"gap repair hit trimmed log on {self.group}; starting state transfer"
                )
                recovery.begin_recovery()
            return
        for instance, value in msg.entries:
            if instance < self._next_delivery or instance in self._learned:
                continue
            self.gap_instances_recovered += 1
            self._learn(instance, 1, value)

    def on_host_crash(self) -> None:
        """Volatile-state handling when the hosting process crashes."""
        if self.storage is not None and self.storage.mode is StorageMode.MEMORY:
            # In-memory acceptor state does not survive a crash.
            trimmed = self.storage.trimmed_up_to
            self.storage = AcceptorStorage(self.host.world.sim, mode=StorageMode.MEMORY)
            if trimmed is not None:
                self.storage.trim(trimmed)
        # Volatile coordinator state: the pending batch, the queue of starts
        # waiting for the window, and the in-flight accounting (decisions for
        # open instances were dropped while the process was down).
        if self.batcher is not None:
            self.batcher.reset()
        self._start_queue.clear()
        self.queued_skip_instances = 0
        self._inflight = 0
        # Repair bookkeeping: the timer died with the host's other timers;
        # forget the undecided set so restarted instances get a fresh grace
        # period before being re-proposed.
        self._repair_timer = None
        self._repair_pending = set()
        self._repair_cursor_seen = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        roles = []
        if self.is_proposer:
            roles.append("P")
        if self.is_acceptor:
            roles.append("A")
        if self.is_learner:
            roles.append("L")
        if self.is_coordinator:
            roles.append("C")
        return f"RingRole({self.group!r}@{self.name!r}, {'/'.join(roles)})"
