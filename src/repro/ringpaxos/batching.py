"""Coordinator-side batching of proposed values into consensus instances.

URingPaxos owes its throughput to amortizing per-instance protocol cost: the
coordinator packs many application messages into one Paxos value, so one
Phase 2 circulation, one acceptor log write and one decision cover the whole
batch.  :class:`CoordinatorBatcher` reproduces that component.  It sits
between the coordinator's proposal intake and the instance window:

* values accumulate in a pending batch;
* the batch flushes when it reaches the configured value-count cap or byte
  cap, or when the flush timeout expires (armed when the first value enters
  an empty batch) -- whichever comes first;
* reconfiguration control commands are *never* batched with application
  values: an arriving control value flushes the pending batch and is then
  proposed in its own instance, so its agreed delivery position stays
  unambiguous.

Skip values (rate leveling) bypass the batcher entirely -- the coordinator
proposes them directly through the instance window.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.config import BatchingConfig
from repro.types import Value, batch_values

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ringpaxos.role import RingRole

__all__ = ["CoordinatorBatcher", "is_control_payload"]

#: Lazily resolved ``(ControlCommand, ForwardedCommand)`` -- populated on the
#: first call to :func:`is_control_payload`.  :mod:`repro.reconfig` sits above
#: the ring layer, so importing it at module load would invert the layering;
#: resolving once keeps the per-value hot path free of import machinery.
_control_types = None


def is_control_payload(value: Value) -> bool:
    """True when ``value`` carries a reconfiguration control command.

    ``ForwardedCommand`` is exempt: it re-multicasts an *application* write
    whose delivery position is not a reconfiguration agreement point (the
    destination dedups by command id), so it batches like any other value --
    important because migrations forward a burst of writes exactly when the
    destination ring is busiest.  The merge unpacks batches value by value,
    so a co-batched forwarded command still reaches the control routing path.
    """
    global _control_types
    if _control_types is None:
        from repro.reconfig.commands import ControlCommand, ForwardedCommand

        _control_types = (ControlCommand, ForwardedCommand)
    control_command, forwarded_command = _control_types
    return isinstance(value.payload, control_command) and not isinstance(
        value.payload, forwarded_command
    )


class CoordinatorBatcher:
    """Packs proposed values into batch values at the ring coordinator."""

    def __init__(self, role: "RingRole", config: BatchingConfig) -> None:
        self.role = role
        self.config = config
        self._pending: List[Value] = []
        self._pending_bytes = 0
        self._timer = None
        # Statistics.
        self.values_offered = 0
        self.batches_flushed = 0
        self.size_flushes = 0
        self.timeout_flushes = 0
        self.control_flushes = 0

    # ------------------------------------------------------------------
    @property
    def pending_values(self) -> int:
        return len(self._pending)

    def offer(self, value: Value) -> None:
        """Add ``value`` to the pending batch, flushing when a cap is hit."""
        if is_control_payload(value):
            # Control commands get their own instance; their position in the
            # delivery sequence is the reconfiguration agreement point and
            # must not be blurred by co-batched application values.
            self.flush()
            self.control_flushes += 1
            self.role.enqueue_instances(value, 1)
            return
        self.values_offered += 1
        self._pending.append(value)
        self._pending_bytes += value.size_bytes
        if (
            len(self._pending) >= self.config.max_batch_values
            or self._pending_bytes >= self.config.max_batch_bytes
        ):
            self.size_flushes += 1
            self.flush()
        elif self._timer is None:
            self._timer = self.role.host.set_timer(
                self.config.max_batch_delay, self._on_timeout
            )

    def _on_timeout(self) -> None:
        self._timer = None
        if self._pending:
            self.timeout_flushes += 1
            self.flush()

    def flush(self) -> None:
        """Propose the pending batch as one consensus value (no-op when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        pending = self._pending
        self._pending = []
        self._pending_bytes = 0
        if len(pending) == 1:
            value = pending[0]
        else:
            value = batch_values(
                tuple(pending), proposer=self.role.name, created_at=self.role.host.now
            )
        self.batches_flushed += 1
        self.role.enqueue_instances(value, 1)

    def reset(self) -> None:
        """Drop pending values (coordinator crash: the batch was volatile)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._pending = []
        self._pending_bytes = 0
