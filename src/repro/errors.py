"""Exception hierarchy for the reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "NetworkError",
    "ProcessCrashedError",
    "ConfigurationError",
    "CoordinationError",
    "ConsensusError",
    "MulticastError",
    "RecoveryError",
    "StorageError",
    "ServiceError",
    "PartitioningError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. scheduling in the past)."""


class NetworkError(ReproError):
    """A message could not be routed (unknown destination, no link, ...)."""


class ProcessCrashedError(ReproError):
    """An operation was attempted on a crashed process."""


class ConfigurationError(ReproError):
    """An experiment or protocol configuration is inconsistent."""


class CoordinationError(ReproError):
    """The coordination service (Zookeeper substitute) rejected a request."""


class ConsensusError(ReproError):
    """A Paxos / Ring Paxos invariant would be violated."""


class MulticastError(ReproError):
    """Atomic multicast misuse (unknown group, delivery before subscription, ...)."""


class RecoveryError(ReproError):
    """Checkpointing, trimming or replica recovery failed."""


class StorageError(ReproError):
    """Stable-storage model failure (e.g. reading a trimmed instance)."""


class ServiceError(ReproError):
    """MRP-Store or dLog rejected a client request."""


class PartitioningError(ReproError):
    """A key or range could not be mapped to a partition."""


class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""
