"""The FaultPlan DSL: declarative, timed fault schedules.

A :class:`FaultPlan` is an ordered collection of fault specifications --
process crashes/restarts, ring-link partitions, disk stalls, message-delay
spikes, NIC isolations -- compiled at :meth:`FaultPlan.arm` time into timed
callbacks on a :class:`~repro.sim.failure.FailureInjector`, so every injected
fault shows up in the injector's applied-event log and the world trace.

Targets may be literal process names or *selectors* resolved when the fault
fires (not when the plan is written), against the deployment's live state:

* ``coordinator:<group>`` -- the ring's current coordinator, obtained by
  running :func:`~repro.coordination.election.elect_coordinator` over the
  ring-ordered acceptors that are alive at that moment;
* ``replica:<partition>:<index>`` -- the ``index``-th replica of an MRP-Store
  partition.

Times are absolute simulation seconds from the start of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union, TYPE_CHECKING

from repro.coordination.election import elect_coordinator
from repro.errors import ConfigurationError
from repro.sim.failure import FailureInjector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.multiring.deployment import Deployment
    from repro.services.mrpstore import MRPStore
    from repro.sim.world import World

__all__ = [
    "ProcessCrash",
    "ProcessIsolation",
    "LinkPartition",
    "DiskStall",
    "DelaySpike",
    "FaultPlan",
]


@dataclass(frozen=True)
class ProcessCrash:
    """Crash a process at ``at``; optionally restart it at ``restart_at``."""

    target: str
    at: float
    restart_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("faults cannot fire before t=0")
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ConfigurationError("a restart must happen after the crash")

    @property
    def end(self) -> float:
        return self.restart_at if self.restart_at is not None else self.at


@dataclass(frozen=True)
class ProcessIsolation:
    """Cut a process off the network (NIC/switch fault) without crashing it."""

    target: str
    at: float
    rejoin_at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("faults cannot fire before t=0")
        if self.rejoin_at <= self.at:
            raise ConfigurationError("a rejoin must happen after the isolation")

    @property
    def end(self) -> float:
        return self.rejoin_at


@dataclass(frozen=True)
class LinkPartition:
    """Partition every site in ``sites_a`` from every site in ``sites_b``."""

    sites_a: Tuple[str, ...]
    sites_b: Tuple[str, ...]
    at: float
    heal_at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("faults cannot fire before t=0")
        if self.heal_at <= self.at:
            raise ConfigurationError("a partition must heal after it starts")
        if not self.sites_a or not self.sites_b:
            raise ConfigurationError("both sides of a partition need at least one site")

    @property
    def end(self) -> float:
        return self.heal_at


@dataclass(frozen=True)
class DiskStall:
    """Stall the acceptor disks of one ring for ``duration`` seconds."""

    group: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("faults cannot fire before t=0")
        if self.duration <= 0:
            raise ConfigurationError("a disk stall needs a positive duration")

    @property
    def end(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class DelaySpike:
    """Add one-way latency between two sites for a window of time."""

    site_a: str
    site_b: str
    extra_ms: float
    at: float
    clear_at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("faults cannot fire before t=0")
        if self.clear_at <= self.at:
            raise ConfigurationError("a delay spike must clear after it starts")
        if self.extra_ms <= 0:
            raise ConfigurationError("a delay spike needs positive extra latency")

    @property
    def end(self) -> float:
        return self.clear_at


Fault = Union[ProcessCrash, ProcessIsolation, LinkPartition, DiskStall, DelaySpike]


class FaultPlan:
    """A named, ordered schedule of faults to inject into one run."""

    def __init__(self, name: str, faults: Optional[Sequence[Fault]] = None) -> None:
        self.name = name
        self.faults: List[Fault] = list(faults or [])

    # ------------------------------------------------------------------
    # builder API
    # ------------------------------------------------------------------
    def crash(self, target: str, at: float, restart_at: Optional[float] = None) -> "FaultPlan":
        self.faults.append(ProcessCrash(target, at, restart_at))
        return self

    def crash_coordinator(
        self, group: str, at: float, restart_at: Optional[float] = None
    ) -> "FaultPlan":
        """Crash the ring's *current* coordinator (resolved when the fault fires)."""
        return self.crash(f"coordinator:{group}", at, restart_at)

    def crash_replica(
        self, partition: str, index: int, at: float, restart_at: Optional[float] = None
    ) -> "FaultPlan":
        return self.crash(f"replica:{partition}:{index}", at, restart_at)

    def isolate(self, target: str, at: float, rejoin_at: float) -> "FaultPlan":
        self.faults.append(ProcessIsolation(target, at, rejoin_at))
        return self

    def partition(
        self,
        sites_a: Sequence[str],
        sites_b: Sequence[str],
        at: float,
        heal_at: float,
    ) -> "FaultPlan":
        self.faults.append(LinkPartition(tuple(sites_a), tuple(sites_b), at, heal_at))
        return self

    def disk_stall(self, group: str, at: float, duration: float) -> "FaultPlan":
        self.faults.append(DiskStall(group, at, duration))
        return self

    def delay_spike(
        self, site_a: str, site_b: str, extra_ms: float, at: float, clear_at: float
    ) -> "FaultPlan":
        self.faults.append(DelaySpike(site_a, site_b, extra_ms, at, clear_at))
        return self

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def end_time(self) -> float:
        """The time of the last fault transition (all faults healed after this)."""
        return max((fault.end for fault in self.faults), default=0.0)

    def replica_restarts(self) -> int:
        """How many replica crash faults schedule a restart (recovery runs)."""
        return sum(
            1
            for fault in self.faults
            if isinstance(fault, ProcessCrash)
            and fault.restart_at is not None
            and fault.target.startswith("replica:")
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.name!r}, {len(self.faults)} faults)"

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def arm(
        self,
        world: "World",
        deployment: Optional["Deployment"] = None,
        store: Optional["MRPStore"] = None,
    ) -> FailureInjector:
        """Compile the plan into timed actions on a fresh failure injector.

        Selector targets are resolved when their fault fires, against the
        live state of the deployment at that moment.  ``deployment`` and
        ``store`` are only required for plans using selector targets or
        disk stalls; plans over literal process names work without them.
        """
        injector = FailureInjector(world)
        # Crash targets resolved at fire time, remembered for the restart leg.
        resolved: Dict[int, str] = {}
        for index, fault in enumerate(self.faults):
            if isinstance(fault, ProcessCrash):
                self._arm_crash(injector, world, deployment, store, index, fault, resolved)
            elif isinstance(fault, ProcessIsolation):
                self._arm_isolation(injector, world, deployment, store, index, fault, resolved)
            elif isinstance(fault, LinkPartition):
                injector.schedule_callback(
                    fault.at,
                    f"partition {'/'.join(fault.sites_a)} | {'/'.join(fault.sites_b)}",
                    lambda f=fault: world.network.partition_sites(f.sites_a, f.sites_b),
                )
                injector.schedule_callback(
                    fault.heal_at,
                    f"heal {'/'.join(fault.sites_a)} | {'/'.join(fault.sites_b)}",
                    lambda f=fault: world.network.heal_sites(f.sites_a, f.sites_b),
                )
            elif isinstance(fault, DiskStall):
                injector.schedule_callback(
                    fault.at,
                    f"disk stall {fault.group} for {fault.duration:g}s",
                    lambda f=fault: self._stall_disks(deployment, f),
                )
            elif isinstance(fault, DelaySpike):
                injector.schedule_callback(
                    fault.at,
                    f"delay spike {fault.site_a}<->{fault.site_b} +{fault.extra_ms:g}ms",
                    lambda f=fault: world.network.set_extra_latency(
                        f.site_a, f.site_b, f.extra_ms * 1e-3
                    ),
                )
                injector.schedule_callback(
                    fault.clear_at,
                    f"delay clear {fault.site_a}<->{fault.site_b}",
                    lambda f=fault: world.network.clear_extra_latency(f.site_a, f.site_b),
                )
        return injector

    # ------------------------------------------------------------------
    def _arm_crash(
        self,
        injector: FailureInjector,
        world: "World",
        deployment: "Deployment",
        store: Optional["MRPStore"],
        index: int,
        fault: ProcessCrash,
        resolved: Dict[int, str],
    ) -> None:
        def do_crash() -> None:
            name = _resolve_target(fault.target, world, deployment, store)
            resolved[index] = name
            injector.crash_now(name)

        injector.schedule_callback(fault.at, f"crash {fault.target}", do_crash)
        if fault.restart_at is not None:

            def do_restart() -> None:
                name = resolved.get(index)
                if name is not None:
                    injector.recover_now(name)

            injector.schedule_callback(fault.restart_at, f"restart {fault.target}", do_restart)

    def _arm_isolation(
        self,
        injector: FailureInjector,
        world: "World",
        deployment: "Deployment",
        store: Optional["MRPStore"],
        index: int,
        fault: ProcessIsolation,
        resolved: Dict[int, str],
    ) -> None:
        def do_isolate() -> None:
            name = _resolve_target(fault.target, world, deployment, store)
            resolved[index] = name
            world.network.isolate(name)

        def do_rejoin() -> None:
            name = resolved.get(index)
            if name is not None:
                world.network.rejoin(name)

        injector.schedule_callback(fault.at, f"isolate {fault.target}", do_isolate)
        injector.schedule_callback(fault.rejoin_at, f"rejoin {fault.target}", do_rejoin)

    @staticmethod
    def _stall_disks(deployment: Optional["Deployment"], fault: DiskStall) -> None:
        if deployment is None:
            raise ConfigurationError(
                f"cannot stall disks of {fault.group!r}: the fault plan was "
                "armed without a deployment"
            )
        descriptor = deployment.ring(fault.group)
        for acceptor in descriptor.acceptors:
            disk = deployment.ring_disk(fault.group, acceptor)
            if disk is not None:
                disk.stall(fault.duration)


def _resolve_target(
    target: str,
    world: "World",
    deployment: Optional["Deployment"],
    store: Optional["MRPStore"],
) -> str:
    """Resolve a fault target (literal name or selector) to a process name."""
    if target.startswith("coordinator:"):
        if deployment is None:
            raise ConfigurationError(
                f"cannot resolve {target!r}: the fault plan was armed without a deployment"
            )
        group = target.split(":", 1)[1]
        descriptor = deployment.registry.ring(group)
        acceptor_set = set(descriptor.acceptors)
        acceptors_in_order = [
            name for name in descriptor.overlay.members if name in acceptor_set
        ]
        return elect_coordinator(
            acceptors_in_order,
            lambda name: world.has_process(name) and world.process(name).alive,
        )
    if target.startswith("replica:"):
        _, partition, index = target.split(":", 2)
        if store is None:
            raise ConfigurationError(
                f"cannot resolve {target!r}: the fault plan was armed without a store"
            )
        replicas = store.replicas_of(partition)
        return replicas[int(index) % len(replicas)].name
    return target
