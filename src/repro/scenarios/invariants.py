"""Global invariant checks run after every chaos scenario.

The campaign runner evaluates these against the quiesced deployment at the
end of each run:

* **no-acked-write-lost** -- every live replica has executed at least as many
  updates as its partition's clients got acknowledgements for (an ack may
  only follow execution; duplicates from client retries can push execution
  counts higher, never lower);
* **replica-convergence** -- all live replicas of a partition hold identical
  state digests (same keys, sizes and versions);
* **merge-liveness** -- every live replica delivered from every ring it
  subscribes to (no ring silently dropped out of the round-robin merge);
* **bounded-delivery-skew** -- within each live replica, the per-ring
  delivery cursors stay within M instances of each other (the round-robin
  merge consumes M instances per ring per round, so a larger spread means
  the merge wedged on a hole);
* **recovery-complete** -- every replica crash/restart in the fault plan ran
  the Section 5 recovery protocol to completion, and nobody is left with a
  paused merge.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.services.mrpstore import MRPStore
    from repro.smr.replica import Replica

__all__ = [
    "InvariantResult",
    "replica_digest",
    "executed_updates",
    "live_replicas",
    "check_no_acked_write_lost",
    "check_replica_convergence",
    "check_merge_liveness",
    "check_delivery_skew",
    "check_recovery_complete",
]


@dataclass(frozen=True)
class InvariantResult:
    """Outcome of one invariant check."""

    name: str
    passed: bool
    detail: str

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "passed": self.passed, "detail": self.detail}


def replica_digest(replica: "Replica") -> str:
    """A digest of the replica's application state (keys, sizes, versions)."""
    machine = replica.state_machine
    items = tuple(
        (key, machine.value_size_of(key), machine.version_of(key))
        for key in machine.keys()
    )
    return hashlib.sha1(repr(items).encode()).hexdigest()[:16]


def executed_updates(replica: "Replica") -> int:
    """Updates executed by the replica: version increments above the loaded 1."""
    machine = replica.state_machine
    return sum(max(0, (machine.version_of(key) or 1) - 1) for key in machine.keys())


def live_replicas(store: "MRPStore", partition: str) -> List["Replica"]:
    """The partition's replicas that are up and not mid-recovery."""
    result = []
    for replica in store.replicas_of(partition):
        if not replica.alive:
            continue
        if replica.recovery is not None and replica.recovery.recovering:
            continue
        result.append(replica)
    return result


def check_no_acked_write_lost(
    store: "MRPStore", acked_by_partition: Dict[str, int]
) -> InvariantResult:
    failures = []
    for partition, acked in sorted(acked_by_partition.items()):
        for replica in live_replicas(store, partition):
            executed = executed_updates(replica)
            if executed < acked:
                failures.append(
                    f"{replica.name}: executed {executed} updates < {acked} acked"
                )
    if failures:
        return InvariantResult("no-acked-write-lost", False, "; ".join(failures))
    total = sum(acked_by_partition.values())
    return InvariantResult(
        "no-acked-write-lost", True, f"{total} acked updates all executed"
    )


def check_replica_convergence(store: "MRPStore") -> InvariantResult:
    failures = []
    for partition in sorted(store.partitions):
        replicas = live_replicas(store, partition)
        digests = {replica.name: replica_digest(replica) for replica in replicas}
        if len(set(digests.values())) > 1:
            failures.append(f"{partition}: divergent digests {digests}")
    if failures:
        return InvariantResult("replica-convergence", False, "; ".join(failures))
    return InvariantResult(
        "replica-convergence", True, "live replicas agree in every partition"
    )


def check_merge_liveness(store: "MRPStore") -> InvariantResult:
    failures = []
    for partition in sorted(store.partitions):
        for replica in live_replicas(store, partition):
            cursor = replica.delivery_cursor()
            stalled = [group for group in replica.subscriptions if cursor.get(group, 0) <= 0]
            if stalled:
                failures.append(f"{replica.name}: nothing delivered from {stalled}")
            if replica.merge.paused:
                failures.append(f"{replica.name}: merge still paused")
    if failures:
        return InvariantResult("merge-liveness", False, "; ".join(failures))
    return InvariantResult(
        "merge-liveness", True, "every live replica delivered from every ring"
    )


def check_delivery_skew(store: "MRPStore", bound: Optional[int] = None) -> InvariantResult:
    limit = bound if bound is not None else store.config.m
    failures = []
    worst = 0
    for partition in sorted(store.partitions):
        for replica in live_replicas(store, partition):
            cursor = replica.delivery_cursor()
            positions = [cursor.get(group, 0) for group in replica.subscriptions]
            if len(positions) < 2:
                continue
            skew = max(positions) - min(positions)
            worst = max(worst, skew)
            if skew > limit:
                failures.append(
                    f"{replica.name}: cross-ring cursor skew {skew} > {limit} ({cursor})"
                )
    if failures:
        return InvariantResult("bounded-delivery-skew", False, "; ".join(failures))
    return InvariantResult(
        "bounded-delivery-skew", True, f"worst cross-ring skew {worst} <= {limit}"
    )


def check_recovery_complete(store: "MRPStore", expected_recoveries: int) -> InvariantResult:
    completed = store.world.monitor.counter("recovery/completed")
    stuck = [
        replica.name
        for replica in store.all_replicas()
        if replica.alive and replica.recovery is not None and replica.recovery.recovering
    ]
    if stuck:
        return InvariantResult(
            "recovery-complete", False, f"still recovering: {', '.join(stuck)}"
        )
    if completed < expected_recoveries:
        return InvariantResult(
            "recovery-complete",
            False,
            f"{completed} recoveries completed < {expected_recoveries} restarts",
        )
    return InvariantResult(
        "recovery-complete", True, f"{completed} recoveries completed"
    )
