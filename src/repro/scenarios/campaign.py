"""Campaign runner: sweep scenario × fault-plan combinations, check invariants.

A *scenario* describes a deployment (WAN preset, partition/replica counts,
storage mode, Multi-Ring parameters); a *fault plan* describes what goes
wrong and when.  :class:`CampaignRunner` runs every requested combination,
drives an update-only workload against each deployment, injects the plan's
faults, quiesces, and evaluates the global invariants from
:mod:`repro.scenarios.invariants`.  The result feeds ``BENCH_chaos.json``
through the benchmark harness (``python -m repro.bench chaos``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.report import format_table
from repro.config import MultiRingConfig, RecoveryConfig, RingConfig
from repro.errors import ConfigurationError
from repro.scenarios.faults import FaultPlan
from repro.scenarios.invariants import (
    InvariantResult,
    check_delivery_skew,
    check_merge_liveness,
    check_no_acked_write_lost,
    check_recovery_complete,
    check_replica_convergence,
)
from repro.scenarios.topologies import get_preset
from repro.services.mrpstore import MRPStore
from repro.sim.disk import StorageMode
from repro.sim.world import World
from repro.smr.client import ClosedLoopClient
from repro.workloads.simple import UpdateWorkload

__all__ = ["ScenarioSpec", "CampaignRunner"]

#: Seconds after the last fault transition before the liveness window opens
#: (time for retries and instance repair to drain the backlog).
_LIVENESS_GRACE = 2.0


@dataclass(frozen=True)
class ScenarioSpec:
    """One deployment configuration a fault plan runs against."""

    name: str
    preset: str = "wan3"
    partitions: int = 3
    replicas_per_partition: int = 2
    acceptors_per_partition: int = 3
    use_global_ring: bool = True
    storage_mode: StorageMode = StorageMode.ASYNC_SSD
    enable_recovery: bool = True
    client_threads: int = 4
    record_count: int = 300
    value_size: int = 512
    retry_timeout: float = 1.0
    # Multi-Ring parameters.  The paper's WAN configuration uses Δ=20 ms; λ
    # is scaled down from the paper's 2000 so the global ring can sustain the
    # skip rate within one pipeline window even at the worst preset RTT
    # (λ · RTT in-flight instances), and the repair interval sits above any
    # WAN decision latency so in-flight instances get a full grace period
    # before being re-proposed.
    m: int = 1
    delta: float = 20e-3
    lam: float = 200.0
    pipeline_depth: int = 512
    repair_interval: float = 1.0
    #: Per-tick repair cap; sized so one tick covers the whole backlog a
    #: multi-second partition leaves behind (λ instances per second per ring).
    repair_batch: int = 2048
    checkpoint_interval: float = 2.0
    trim_interval: float = 30.0

    def build_config(self) -> MultiRingConfig:
        return MultiRingConfig.wide_area(
            m=self.m,
            delta=self.delta,
            lam=self.lam,
            ring=RingConfig(
                repair_interval=self.repair_interval,
                repair_batch=self.repair_batch,
                pipeline_depth=self.pipeline_depth,
            ),
        )

    def build_recovery_config(self) -> RecoveryConfig:
        return RecoveryConfig(
            checkpoint_interval=self.checkpoint_interval,
            trim_interval=self.trim_interval,
            synchronous_checkpoints=True,
            max_replay_instances=500,
        )


@dataclass
class ComboResult:
    """Outcome of one scenario × fault-plan run."""

    scenario: str
    plan: str
    passed: bool
    invariants: List[InvariantResult]
    metrics: Dict[str, float]
    events: List[str] = field(default_factory=list)
    #: Timestamped fault-injection events from the metrics event log.
    fault_timeline: List[Dict[str, object]] = field(default_factory=list)
    #: Observability snapshot (metric state + sampled trace IDs), attached
    #: when an invariant failed so the violation report carries the evidence.
    observability: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        result: Dict[str, object] = {
            "scenario": self.scenario,
            "plan": self.plan,
            "passed": self.passed,
            "invariants": [result.as_dict() for result in self.invariants],
            "metrics": dict(self.metrics),
            "events": list(self.events),
            "fault_timeline": list(self.fault_timeline),
        }
        if self.observability is not None:
            result["observability"] = self.observability
        return result


class CampaignRunner:
    """Runs scenario × fault-plan combinations and aggregates the outcomes."""

    def __init__(
        self,
        combos: Sequence[Tuple[ScenarioSpec, FaultPlan]],
        duration: float = 12.0,
        settle: float = 3.0,
        seed: int = 42,
        trace_dir: Optional[str] = None,
        tracing: bool = False,
        trace_sample: int = 64,
    ) -> None:
        if not combos:
            raise ConfigurationError("a campaign needs at least one scenario × fault combo")
        for scenario, plan in combos:
            if plan.end_time() + _LIVENESS_GRACE >= duration:
                raise ConfigurationError(
                    f"plan {plan.name!r} ends at {plan.end_time():g}s; the run must "
                    f"outlive it by more than {_LIVENESS_GRACE:g}s to judge liveness "
                    f"(duration {duration:g}s)"
                )
        self.combos = list(combos)
        self.duration = duration
        self.settle = settle
        self.seed = seed
        self.trace_dir = trace_dir
        self.tracing = tracing
        self.trace_sample = trace_sample

    # ------------------------------------------------------------------
    def run(self) -> Dict:
        results = [self.run_combo(scenario, plan) for scenario, plan in self.combos]
        rows = []
        for result in results:
            failed = [check.name for check in result.invariants if not check.passed]
            rows.append(
                [
                    result.scenario,
                    result.plan,
                    "PASS" if result.passed else "FAIL",
                    int(result.metrics["acked_ops"]),
                    int(result.metrics["repairs_proposed"]),
                    ", ".join(failed) or "-",
                ]
            )
        report = format_table(
            "Chaos campaign: scenario × fault-plan sweep",
            ["scenario", "fault plan", "verdict", "acked ops", "repairs", "failed invariants"],
            rows,
        )
        return {
            "experiment": "chaos",
            "combos": len(results),
            "passed": all(result.passed for result in results),
            "results": [result.as_dict() for result in results],
            "report": report,
        }

    # ------------------------------------------------------------------
    def run_combo(self, scenario: ScenarioSpec, plan: FaultPlan) -> ComboResult:
        preset = get_preset(scenario.preset)
        world = World(
            topology=preset.build(),
            seed=self.seed,
            timeline_window=0.5,
            trace_enabled=True,
            default_site=preset.sites[0],
            tracing=self.tracing,
            trace_sample=self.trace_sample,
        )
        partition_sites = preset.partition_sites(scenario.partitions)
        store = MRPStore(
            world,
            partitions=scenario.partitions,
            replicas_per_partition=scenario.replicas_per_partition,
            acceptors_per_partition=scenario.acceptors_per_partition,
            use_global_ring=scenario.use_global_ring,
            storage_mode=scenario.storage_mode,
            config=scenario.build_config(),
            recovery_config=scenario.build_recovery_config(),
            enable_recovery=scenario.enable_recovery,
            partition_sites=partition_sites,
            key_space=scenario.record_count,
        )
        store.load(scenario.record_count, value_size=scenario.value_size)

        clients: Dict[str, ClosedLoopClient] = {}
        for index, partition in enumerate(sorted(store.partitions)):
            series = f"chaos/{partition}"
            indices = _owned_key_indices(store, partition, scenario.record_count)
            workload = UpdateWorkload(
                store, indices, value_size=scenario.value_size, series=series
            )
            clients[partition] = ClosedLoopClient(
                world,
                f"chaos-client-{partition}",
                workload,
                store.frontends_for_client(index),
                threads=scenario.client_threads,
                site=partition_sites.get(partition),
                series=series,
                retry_timeout=scenario.retry_timeout,
            )

        injector = plan.arm(world, store.deployment, store)
        world.run(until=self.duration)

        # Quiesce: freeze the workload, then give in-flight commands, repair
        # and recovery a settle window to drain.
        acked = {partition: client.completed for partition, client in clients.items()}
        for client in clients.values():
            client.crash()
        world.run(until=self.duration + self.settle)

        invariants = [
            check_no_acked_write_lost(store, acked),
            check_replica_convergence(store),
            check_merge_liveness(store),
            check_delivery_skew(store),
            check_recovery_complete(store, plan.replica_restarts()),
            self._check_liveness(world, plan, clients),
        ]
        metrics = self._collect_metrics(world, store, clients, acked)
        events = [
            f"{action.time:.3f}s {action.label}" for action in injector.applied_actions
        ]
        passed = all(check.passed for check in invariants)
        observability: Optional[Dict[str, object]] = None
        if not passed:
            # Attach the evidence to the violation report: full metric
            # snapshot plus the sampled causal trace IDs active in the run.
            observability = world.obs.snapshot()
            observability["trace_ids"] = world.obs.tracer.trace_ids()
        result = ComboResult(
            scenario=scenario.name,
            plan=plan.name,
            passed=passed,
            invariants=invariants,
            metrics=metrics,
            events=events,
            fault_timeline=world.obs.metrics.events(),
            observability=observability,
        )
        self._maybe_write_trace(world, scenario, plan)
        return result

    # ------------------------------------------------------------------
    def _check_liveness(
        self,
        world: World,
        plan: FaultPlan,
        clients: Dict[str, ClosedLoopClient],
    ) -> InvariantResult:
        """The system must make progress after the last fault heals."""
        window_start = plan.end_time() + _LIVENESS_GRACE
        stalled = []
        for partition in sorted(clients):
            ops = world.monitor.throughput_ops(
                f"chaos/{partition}", start=window_start, end=self.duration
            )
            if ops <= 0:
                stalled.append(partition)
        if stalled:
            return InvariantResult(
                "post-fault-liveness",
                False,
                f"no acked ops after {window_start:g}s in: {', '.join(stalled)}",
            )
        return InvariantResult(
            "post-fault-liveness", True, f"all partitions live after {window_start:g}s"
        )

    def _collect_metrics(
        self,
        world: World,
        store: MRPStore,
        clients: Dict[str, ClosedLoopClient],
        acked: Dict[str, int],
    ) -> Dict[str, float]:
        repairs = gap_requests = gap_recovered = 0
        for node in store.deployment.nodes.values():
            for role in node.roles.values():
                repairs += role.repairs_proposed
                gap_requests += role.gap_requests
                gap_recovered += role.gap_instances_recovered
        monitor = world.monitor
        return {
            "acked_ops": float(sum(acked.values())),
            "throughput_ops": monitor.throughput_ops(start=1.0, end=self.duration),
            "client_retries": float(sum(client.retries for client in clients.values())),
            "messages_blocked": float(world.network.messages_blocked),
            "messages_dropped": float(world.network.messages_dropped),
            "repairs_proposed": float(repairs),
            "gap_requests": float(gap_requests),
            "gap_instances_recovered": float(gap_recovered),
            "recoveries_completed": float(monitor.counter("recovery/completed")),
            "checkpoints_durable": float(monitor.counter("recovery/checkpoints_durable")),
        }

    def _maybe_write_trace(
        self, world: World, scenario: ScenarioSpec, plan: FaultPlan
    ) -> None:
        if self.trace_dir is None:
            return
        from pathlib import Path

        directory = Path(self.trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{scenario.name}__{plan.name}.trace"
        lines = [str(record) for record in world.trace]
        path.write_text("\n".join(lines) + "\n")


def _owned_key_indices(
    store: MRPStore, partition: str, key_space: int, wanted: int = 200
) -> List[int]:
    """Key indices owned by ``partition`` (clients stay partition-local)."""
    indices: List[int] = []
    for index in range(key_space):
        if store.partition_map.partition_of(store.key(index)) == partition:
            indices.append(index)
            if len(indices) >= wanted:
                break
    return indices or [0]
