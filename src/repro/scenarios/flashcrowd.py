"""Fault plans aligned with workload phase schedules.

The FaultPlan DSL (:mod:`repro.scenarios.faults`) speaks absolute times; the
workload engine (:mod:`repro.workloads.engine`) speaks phases.  This module
joins them: given a :class:`~repro.workloads.engine.PhaseSchedule`, build a
plan whose faults land *inside* specific phases -- the canonical example
being a coordinator crash in the middle of a flash crowd, when the ring
serving the hot key range is already the bottleneck.

Lining faults up with phases by hand invites off-by-one-boundary bugs
(``phase_at`` puts a boundary instant in the *new* phase); deriving the
fault times from the schedule keeps the two subsystems agreeing about which
phase a fault belongs to.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.scenarios.faults import FaultPlan
from repro.workloads.engine import PhaseSchedule

__all__ = ["flash_crowd_fault_plan"]


def flash_crowd_fault_plan(
    schedule: PhaseSchedule,
    hot_group: str,
    *,
    crash_fraction: float = 0.5,
    restart_delay: Optional[float] = None,
    name: str = "flash-crowd",
) -> FaultPlan:
    """A plan crashing the hot ring's coordinator mid-peak.

    The crash lands ``crash_fraction`` of the way through the schedule's
    highest-rate phase (its flash crowd), targeting the *current* coordinator
    of ``hot_group`` -- the ring serving the crowded key range -- resolved
    when the fault fires, so an earlier election does not stale the plan.
    The coordinator restarts ``restart_delay`` seconds later (default: at
    the peak phase's end, so recovery overlaps the tail of the spike).
    """
    if not 0.0 < crash_fraction < 1.0:
        raise ConfigurationError("crash_fraction must be inside (0, 1)")
    peak = schedule.peak_phase()
    peak_end = schedule.next_boundary(peak.start)
    crash_at = peak.start + crash_fraction * (peak_end - peak.start)
    if restart_delay is None:
        restart_at = peak_end
    else:
        restart_at = crash_at + restart_delay
    if restart_at <= crash_at:
        raise ConfigurationError("the coordinator must restart after it crashes")
    plan = FaultPlan(name)
    plan.crash_coordinator(hot_group, at=crash_at, restart_at=min(restart_at, schedule.duration))
    return plan
