"""Declarative chaos scenarios: WAN presets, fault plans, invariant campaigns.

The subsystem has three layers:

* :mod:`repro.scenarios.topologies` -- named WAN geographies (``wan3``,
  ``dc8``) compiled into simulator topologies;
* :mod:`repro.scenarios.faults` -- the :class:`FaultPlan` DSL for timed
  coordinator/replica crashes, ring-link partitions, disk stalls, latency
  spikes and NIC isolations;
* :mod:`repro.scenarios.campaign` -- the :class:`CampaignRunner` that sweeps
  scenario × fault combinations and checks the global invariants
  (:mod:`repro.scenarios.invariants`) after each run.

:mod:`repro.scenarios.flashcrowd` bridges to the workload engine: it derives
fault plans from :class:`~repro.workloads.engine.PhaseSchedule` phases (e.g.
a coordinator crash in the middle of a flash crowd).

``python -m repro.bench chaos`` is the command-line entry point.
"""

from repro.scenarios.campaign import CampaignRunner, ScenarioSpec
from repro.scenarios.faults import (
    DelaySpike,
    DiskStall,
    FaultPlan,
    LinkPartition,
    ProcessCrash,
    ProcessIsolation,
)
from repro.scenarios.flashcrowd import flash_crowd_fault_plan
from repro.scenarios.invariants import InvariantResult
from repro.scenarios.topologies import TOPOLOGY_PRESETS, TopologyPreset, get_preset

__all__ = [
    "CampaignRunner",
    "ScenarioSpec",
    "FaultPlan",
    "ProcessCrash",
    "ProcessIsolation",
    "LinkPartition",
    "DiskStall",
    "DelaySpike",
    "InvariantResult",
    "flash_crowd_fault_plan",
    "TopologyPreset",
    "TOPOLOGY_PRESETS",
    "get_preset",
]
