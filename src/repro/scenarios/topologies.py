"""WAN topology presets for the chaos scenario engine.

The paper evaluates DLog and MRP-Store "deployed across Amazon EC2 regions";
the chaos campaigns replay that geography.  Each preset is a named pairwise
RTT/bandwidth matrix compiled into a :class:`~repro.sim.topology.Topology`
through :func:`~repro.sim.topology.matrix_topology`:

* ``wan3`` -- three regions on three continents (EU, US east coast,
  Singapore), the smallest deployment with genuinely asymmetric RTTs;
* ``dc8`` -- eight datacenters modeled on the EC2 regions available at the
  time of the paper, for campaign runs at global scale.

RTT values are representative public inter-region measurements; as with
:data:`~repro.sim.topology.EC2_REGION_RTT_MS` they shape absolute latency,
not the qualitative behaviour under faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.sim.topology import Topology, matrix_topology

__all__ = ["TopologyPreset", "TOPOLOGY_PRESETS", "get_preset", "WAN3", "DC8"]


@dataclass(frozen=True)
class TopologyPreset:
    """A named WAN geography: sites plus their pairwise RTT matrix."""

    name: str
    description: str
    sites: Tuple[str, ...]
    rtt_ms: Dict[Tuple[str, str], float] = field(default_factory=dict)
    default_rtt_ms: float = 100.0
    intra_site_rtt: float = 0.5e-3
    intra_site_bandwidth_bps: float = 1e9
    inter_site_bandwidth_bps: float = 200e6

    def __post_init__(self) -> None:
        # A typo'd site in the matrix would silently fall back to the
        # default RTT in matrix_topology; make the preset self-checking.
        known = set(self.sites)
        for pair in self.rtt_ms:
            unknown = set(pair) - known
            if unknown:
                raise ConfigurationError(
                    f"preset {self.name!r}: rtt_ms pair {pair} names unknown "
                    f"site(s) {sorted(unknown)}"
                )

    def build(self) -> Topology:
        """Compile the preset into a simulator topology."""
        return matrix_topology(
            self.sites,
            self.rtt_ms,
            default_rtt_ms=self.default_rtt_ms,
            intra_site_rtt=self.intra_site_rtt,
            intra_site_bandwidth_bps=self.intra_site_bandwidth_bps,
            inter_site_bandwidth_bps=self.inter_site_bandwidth_bps,
        )

    def partition_sites(self, partitions: int) -> Dict[str, str]:
        """Round-robin placement of ``partitions`` named ``p0..pN`` onto sites."""
        return {f"p{i}": self.sites[i % len(self.sites)] for i in range(partitions)}

    def max_rtt_ms(self) -> float:
        """The worst pairwise RTT of the preset (used to size fault windows)."""
        return max(self.rtt_ms.values(), default=self.default_rtt_ms)


WAN3 = TopologyPreset(
    name="wan3",
    description="Three regions on three continents (EU, US east, Singapore)",
    sites=("eu-west-1", "us-east-1", "ap-southeast-1"),
    rtt_ms={
        ("eu-west-1", "us-east-1"): 80.0,
        ("eu-west-1", "ap-southeast-1"): 170.0,
        ("us-east-1", "ap-southeast-1"): 215.0,
    },
)

DC8 = TopologyPreset(
    name="dc8",
    description="Eight EC2-like datacenters across four continents",
    sites=(
        "us-east-1",
        "us-west-1",
        "us-west-2",
        "eu-west-1",
        "eu-central-1",
        "ap-southeast-1",
        "ap-northeast-1",
        "sa-east-1",
    ),
    rtt_ms={
        ("us-east-1", "us-west-1"): 75.0,
        ("us-east-1", "us-west-2"): 70.0,
        ("us-west-1", "us-west-2"): 22.0,
        ("us-east-1", "eu-west-1"): 80.0,
        ("us-east-1", "eu-central-1"): 90.0,
        ("us-west-1", "eu-west-1"): 140.0,
        ("us-west-1", "eu-central-1"): 150.0,
        ("us-west-2", "eu-west-1"): 130.0,
        ("us-west-2", "eu-central-1"): 145.0,
        ("eu-west-1", "eu-central-1"): 25.0,
        ("us-east-1", "ap-southeast-1"): 215.0,
        ("us-west-1", "ap-southeast-1"): 170.0,
        ("us-west-2", "ap-southeast-1"): 165.0,
        ("eu-west-1", "ap-southeast-1"): 170.0,
        ("eu-central-1", "ap-southeast-1"): 160.0,
        ("us-east-1", "ap-northeast-1"): 170.0,
        ("us-west-1", "ap-northeast-1"): 110.0,
        ("us-west-2", "ap-northeast-1"): 100.0,
        ("eu-west-1", "ap-northeast-1"): 210.0,
        ("eu-central-1", "ap-northeast-1"): 225.0,
        ("ap-southeast-1", "ap-northeast-1"): 70.0,
        ("us-east-1", "sa-east-1"): 115.0,
        ("us-west-1", "sa-east-1"): 180.0,
        ("us-west-2", "sa-east-1"): 175.0,
        ("eu-west-1", "sa-east-1"): 190.0,
        ("eu-central-1", "sa-east-1"): 205.0,
        ("ap-southeast-1", "sa-east-1"): 320.0,
        ("ap-northeast-1", "sa-east-1"): 260.0,
    },
)

TOPOLOGY_PRESETS: Dict[str, TopologyPreset] = {
    preset.name: preset for preset in (WAN3, DC8)
}


def get_preset(name: str) -> TopologyPreset:
    """Look up a topology preset by name."""
    try:
        return TOPOLOGY_PRESETS[name]
    except KeyError:
        known: List[str] = sorted(TOPOLOGY_PRESETS)
        raise ConfigurationError(
            f"unknown topology preset {name!r}; known presets: {known}"
        ) from None
