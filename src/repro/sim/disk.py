"""Stable-storage device models.

Figure 3 and Figure 6 of the paper evaluate Multi-Ring Paxos under five
storage modes for the acceptor log:

* in-memory (no stable storage at all),
* asynchronous writes to a hard disk,
* asynchronous writes to an SSD,
* synchronous writes to a hard disk, and
* synchronous writes to an SSD.

The :class:`Disk` model captures the two properties that drive those curves:
per-operation latency (dominant for synchronous writes, where the paper
disables batching and writes instances one by one) and sequential bandwidth
(the ceiling for asynchronous writes and for dLog appends).  Writes are
serialized on the device; outstanding asynchronous writes accumulate in a
write-back queue whose occupancy is visible to callers so that protocols can
apply back-pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import StorageError
from repro.runtime.interfaces import StorageMode
from repro.sim.engine import Simulator

# ``StorageMode`` moved to the runtime layer (it is configuration shared by
# every backend); re-exported here for the historical import path.
__all__ = ["StorageMode", "DiskConfig", "Disk", "disk_for_mode", "HDD_CONFIG", "SSD_CONFIG"]


@dataclass
class DiskConfig:
    """Physical characteristics of a storage device."""

    #: Fixed cost of one *forced* (synchronous) write operation (seek +
    #: rotational for HDD, channel latency for SSD), in seconds.
    op_latency: float
    #: Sequential write bandwidth in bytes/second.
    bandwidth_bytes_per_sec: float
    #: Fixed cost of one write-back (asynchronous) write.  Much smaller than
    #: ``op_latency``: the OS and the device coalesce buffered writes, so the
    #: per-operation seek is amortized over many operations.
    async_op_latency: float = 0.0
    #: Size of the write-back cache used for asynchronous writes, in bytes.
    writeback_buffer_bytes: int = 64 * 1024 * 1024
    #: Human readable device name.
    name: str = "disk"


#: A 7200-RPM hard disk: ~5 ms per forced write, ~150 MB/s sequential.
HDD_CONFIG = DiskConfig(
    op_latency=5e-3, bandwidth_bytes_per_sec=150e6, async_op_latency=50e-6, name="hdd"
)

#: A SATA SSD: ~100 us per forced write, ~450 MB/s sequential.
SSD_CONFIG = DiskConfig(
    op_latency=100e-6, bandwidth_bytes_per_sec=450e6, async_op_latency=10e-6, name="ssd"
)


class Disk:
    """A single storage device with serialized writes.

    ``write`` models a synchronous (forced) write: the callback fires when the
    data is durable.  ``write_async`` models a write-back write: the callback
    fires immediately unless the write-back buffer is full, in which case it
    fires once enough previously buffered data has drained to the device.
    """

    __slots__ = (
        "sim",
        "config",
        "_busy_until",
        "_buffered_bytes",
        "_busy_time",
        "bytes_written",
        "ops",
        "stalls",
        "stalled_seconds",
    )

    def __init__(self, sim: Simulator, config: DiskConfig) -> None:
        self.sim = sim
        self.config = config
        self._busy_until = 0.0
        self._buffered_bytes = 0
        self._busy_time = 0.0
        self.bytes_written = 0
        self.ops = 0
        self.stalls = 0
        self.stalled_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def queue_depth_bytes(self) -> int:
        """Bytes currently sitting in the write-back buffer."""
        return self._buffered_bytes

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def utilization(self, start: float, end: float) -> float:
        """Approximate fraction of ``[start, end)`` the device spent writing."""
        if end <= start:
            return 0.0
        return min(1.0, self._busy_time / (end - start))

    # ------------------------------------------------------------------
    def _service_time(self, nbytes: int, forced: bool = True) -> float:
        op_latency = self.config.op_latency if forced else self.config.async_op_latency
        return op_latency + nbytes / self.config.bandwidth_bytes_per_sec

    def _reserve(self, nbytes: int, forced: bool = True) -> float:
        """Reserve device time for ``nbytes`` and return the completion time."""
        if nbytes < 0:
            raise StorageError("cannot write a negative number of bytes")
        start = max(self.sim.now, self._busy_until)
        service = self._service_time(nbytes, forced)
        self._busy_until = start + service
        self._busy_time += service
        self.bytes_written += nbytes
        self.ops += 1
        return self._busy_until

    def stall(self, duration: float) -> float:
        """Make the device unresponsive for ``duration`` seconds (fault injection).

        Models a controller hiccup / GC pause / degraded RAID rebuild: every
        write issued during (or queued behind) the stall completes only after
        the device comes back.  Returns the time the device becomes free.
        """
        if duration < 0:
            raise StorageError("a disk stall cannot have a negative duration")
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + duration
        self.stalls += 1
        self.stalled_seconds += duration
        return self._busy_until

    def write(
        self,
        nbytes: int,
        callback: Optional[Callable[..., None]] = None,
        callback_args: tuple = (),
    ) -> float:
        """Synchronous (forced) write.  Returns the durability time."""
        done = self._reserve(nbytes)
        if callback is not None:
            self.sim.call_at(done, callback, *callback_args)
        return done

    def write_async(
        self,
        nbytes: int,
        callback: Optional[Callable[..., None]] = None,
        callback_args: tuple = (),
    ) -> float:
        """Write-back write.  Returns the time at which the *caller* may proceed.

        Data is considered accepted as soon as it fits in the write-back
        buffer; the device drains the buffer in the background.  When the
        buffer is full the caller is delayed until space frees up, which is
        what bounds asynchronous throughput at the device bandwidth.
        """
        done = self._reserve(nbytes, forced=False)
        self._buffered_bytes += nbytes
        self.sim.call_at(done, self._drained, nbytes)
        if self._buffered_bytes <= self.config.writeback_buffer_bytes:
            accept = self.sim.now
        else:
            # Caller must wait until the backlog that exceeds the buffer drains.
            excess = self._buffered_bytes - self.config.writeback_buffer_bytes
            accept = self.sim.now + excess / self.config.bandwidth_bytes_per_sec
        if callback is not None:
            self.sim.call_at(accept, callback, *callback_args)
        return accept

    def _drained(self, nbytes: int) -> None:
        self._buffered_bytes = max(0, self._buffered_bytes - nbytes)

    def read(self, nbytes: int, callback: Optional[Callable[[], None]] = None) -> float:
        """Sequential read of ``nbytes``; shares the device with writes."""
        done = self._reserve(nbytes)
        if callback is not None:
            self.sim.call_at(done, callback)
        return done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Disk({self.config.name}, written={self.bytes_written}B)"


def disk_for_mode(sim: Simulator, mode: StorageMode) -> Optional[Disk]:
    """Build the device matching a :class:`StorageMode` (``None`` for in-memory)."""
    if mode is StorageMode.MEMORY:
        return None
    if mode in (StorageMode.ASYNC_HDD, StorageMode.SYNC_HDD):
        return Disk(sim, HDD_CONFIG)
    return Disk(sim, SSD_CONFIG)
