"""Backwards-compatible shim: the actor model now lives in the runtime layer.

:class:`~repro.runtime.actor.Process` and :class:`~repro.runtime.actor.Timer`
are backend-agnostic (they depend only on the runtime protocols), so they
moved to :mod:`repro.runtime.actor`; this module keeps the historical import
path ``repro.sim.process`` working for existing code and tests.
"""

from repro.runtime.actor import Process, Timer

__all__ = ["Timer", "Process"]
