"""Deprecated alias module: the actor model lives in :mod:`repro.runtime.actor`.

:class:`~repro.runtime.actor.Process` and :class:`~repro.runtime.actor.Timer`
are backend-agnostic (they depend only on the runtime protocols), so they
moved to the runtime layer.  Importing them through ``repro.sim.process``
still works for one release but emits a :class:`DeprecationWarning`; this
module will then be removed.
"""

import warnings

__all__ = ["Timer", "Process"]


def __getattr__(name):
    if name in __all__:
        warnings.warn(
            f"repro.sim.process.{name} is deprecated; import it from repro.runtime.actor",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.runtime import actor as _actor

        return getattr(_actor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
