"""Discrete-event simulation substrate.

The paper evaluates Multi-Ring Paxos on a dedicated cluster (4 x 32-core
Xeon, 10 Gbps switching, SSDs and hard disks) and on Amazon EC2 across four
regions.  Neither environment is available to this reproduction, and a pure
Python implementation could not drive a real 10 Gbps ring anyway.  Instead,
every experiment runs on this deterministic discrete-event simulator:

* :mod:`repro.sim.engine` -- the event loop and simulated clock.
* :mod:`repro.runtime.actor` -- the actor model used by every protocol role
  (proposer, acceptor, learner, replica, client, ...); backend-agnostic,
  re-exported here for convenience.
* :mod:`repro.sim.network` -- latency / bandwidth / NIC-serialization model.
* :mod:`repro.sim.topology` -- LAN and WAN (EC2-like) topologies.
* :mod:`repro.sim.disk` -- HDD/SSD models with synchronous and asynchronous
  write semantics (the paper's five storage modes).
* :mod:`repro.runtime.cpu` -- per-process CPU cost accounting (coordinator
  CPU utilization in Figure 3); backend-agnostic, re-exported here.
* :mod:`repro.sim.failure` -- crash / restart injection (Figure 8).
* :mod:`repro.sim.monitor` -- throughput timelines, latency samples and CDFs.
* :mod:`repro.sim.world` -- binds all of the above into one experiment
  environment.

All timestamps are in **seconds of simulated time**; all sizes are in bytes.
Simulations are deterministic for a fixed seed.
"""

from repro.sim.engine import Event, Simulator
from repro.runtime.actor import Process, Timer
from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import Topology, lan_topology, wan_topology, EC2_REGION_RTT_MS
from repro.sim.disk import Disk, DiskConfig, StorageMode, disk_for_mode
from repro.runtime.cpu import CPU, CPUConfig
from repro.sim.failure import FailureInjector, FailureSchedule
from repro.sim.monitor import Monitor
from repro.obs.stats import LatencyStats, ThroughputTimeline
from repro.sim.random import RandomStreams
from repro.sim.world import World

__all__ = [
    "Event",
    "Simulator",
    "Process",
    "Timer",
    "Network",
    "NetworkConfig",
    "Topology",
    "lan_topology",
    "wan_topology",
    "EC2_REGION_RTT_MS",
    "Disk",
    "DiskConfig",
    "StorageMode",
    "disk_for_mode",
    "CPU",
    "CPUConfig",
    "FailureInjector",
    "FailureSchedule",
    "Monitor",
    "LatencyStats",
    "ThroughputTimeline",
    "RandomStreams",
    "World",
]
