"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events are
callbacks scheduled at absolute simulated times.  Ties are broken by an
insertion sequence number so that two events scheduled for the same instant
fire in FIFO order -- this keeps every run deterministic, which the test
suite and the benchmark harness rely on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be cancelled
    with :meth:`Simulator.cancel` (or :meth:`Event.cancel`).  Cancelled events
    stay in the heap and are skipped when popped; when they outnumber the
    live events the simulator compacts the heap (see
    :meth:`Simulator._note_cancelled`), so long runs with heavy timer churn
    (leveling intervals, reconfigurations) keep the calendar queue bounded.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        owner: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.owner = owner

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {state})"


class Simulator:
    """The simulated clock and event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second in"))
        sim.run(until=10.0)

    The clock only advances when :meth:`run` or :meth:`step` pops events, and
    it never goes backwards.  Scheduling in the past raises
    :class:`~repro.errors.SimulationError`.
    """

    #: Queues smaller than this are never compacted (the rebuild would cost
    #: more than the garbage it reclaims).
    COMPACT_MIN_QUEUE = 64

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._running = False
        self._cancelled_pending = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (cancelled events included)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time:.6f}, clock is already at t={self._now:.6f}"
            )
        event = Event(time, next(self._seq), callback, args, kwargs, owner=self)
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event.  ``None`` is accepted and ignored."""
        if event is not None:
            event.cancel()

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled_pending

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel`.

        When cancelled events outnumber live ones the heap is rebuilt without
        them: long-running experiments with heavy timer churn would otherwise
        grow the calendar queue without bound.
        """
        self._cancelled_pending += 1
        if (
            len(self._queue) > self.COMPACT_MIN_QUEUE
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_pending = max(0, self._cancelled_pending - 1)
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args, **event.kwargs)
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled_pending = max(0, self._cancelled_pending - 1)
        return self._queue[0].time if self._queue else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the simulated time at which execution stopped.  When ``until``
        is given the clock is advanced to exactly ``until`` even if the last
        event fired earlier, which makes fixed-duration experiments easy to
        express.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_for(self, duration: float, max_events: Optional[int] = None) -> float:
        """Run for ``duration`` seconds of simulated time starting from now."""
        return self.run(until=self._now + duration, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={len(self._queue)})"
