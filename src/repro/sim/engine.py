"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events are
callbacks scheduled at absolute simulated times.  Ties are broken by an
insertion sequence number so that two events scheduled for the same instant
fire in FIFO order -- this keeps every run deterministic, which the test
suite and the benchmark harness rely on.

Hot-path design: heap entries are plain ``(time, seq, callback, args)``
tuples, not objects.  Tuple comparison resolves on ``(time, seq)`` before it
ever reaches the callback (sequence numbers are unique), so ordering is the
exact FIFO-tie-break order the old ``Event.__lt__`` implemented -- without a
Python-level dispatch per heap operation or an allocation per event.
Cancellation works through a *tombstone set* of sequence numbers: cancelling
marks the seq, and the pop loop discards marked entries.  Schedulers that
never cancel (the network, CPU and disk models -- the vast majority of
traffic) use :meth:`Simulator.call_at` / :meth:`Simulator.call_later`, which
skip the kwargs plumbing and do not allocate a cancellation handle at all.
"""

from __future__ import annotations

import heapq
import math
from functools import partial
from itertools import count
from typing import Any, Callable, List, Optional, Set, Tuple

from repro.errors import SimulationError

__all__ = ["Event", "Simulator"]


class Event:
    """A cancellation handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be cancelled
    with :meth:`Simulator.cancel` (or :meth:`Event.cancel`).  Cancelled events
    stay in the heap as tombstoned entries and are skipped when popped; when
    they outnumber the live events the simulator compacts the heap (see
    :meth:`Simulator._note_cancelled`), so long runs with heavy timer churn
    (leveling intervals, reconfigurations) keep the calendar queue bounded.
    """

    __slots__ = ("owner", "seq", "time", "cancelled")

    def __init__(self, owner: "Simulator", seq: int, time: float) -> None:
        self.owner = owner
        self.seq = seq
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled(self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """The simulated clock and event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second in"))
        sim.run(until=10.0)

    The clock only advances when :meth:`run` or :meth:`step` pops events, and
    it never goes backwards.  Scheduling in the past raises
    :class:`~repro.errors.SimulationError`.
    """

    #: Queues smaller than this are never compacted (the rebuild would cost
    #: more than the garbage it reclaims).
    COMPACT_MIN_QUEUE = 64

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_tombstones",
        "_processed",
        "_running",
        "compactions",
    )

    def __init__(self) -> None:
        self._now: float = 0.0
        #: Heap of ``(time, seq, callback, args)`` entries.
        self._queue: List[Tuple[float, int, Callable[..., Any], tuple]] = []
        self._seq = count()
        #: Sequence numbers of cancelled-but-not-yet-popped entries.
        self._tombstones: Set[int] = set()
        self._processed = 0
        self._running = False
        self.compactions = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (cancelled events included)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fast-path scheduling: no kwargs, no cancellation handle.

        This is what the network, CPU and disk models use for their
        fire-and-forget completions -- the overwhelming majority of events in
        any experiment.  Use :meth:`schedule_at` when the event may need to
        be cancelled.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time:.6f}, clock is already at t={self._now:.6f}"
            )
        heapq.heappush(self._queue, (time, next(self._seq), callback, args))

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fast-path scheduling ``delay`` seconds from now (see :meth:`call_at`)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), callback, args))

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time:.6f}, clock is already at t={self._now:.6f}"
            )
        if kwargs:
            callback = partial(callback, *args, **kwargs)
            args = ()
        seq = next(self._seq)
        heapq.heappush(self._queue, (time, seq, callback, args))
        return Event(self, seq, time)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event.  ``None`` is accepted and ignored."""
        if event is not None:
            event.cancel()

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return len(self._tombstones)

    def _note_cancelled(self, seq: int) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel`.

        When cancelled events outnumber live ones the heap is rebuilt without
        them: long-running experiments with heavy timer churn would otherwise
        grow the calendar queue without bound.
        """
        self._tombstones.add(seq)
        if (
            len(self._queue) > self.COMPACT_MIN_QUEUE
            and len(self._tombstones) * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        # In-place rebuild: run() holds a local reference to the queue list,
        # so the list object's identity must survive compaction.
        tombstones = self._tombstones
        self._queue[:] = [entry for entry in self._queue if entry[1] not in tombstones]
        heapq.heapify(self._queue)
        tombstones.clear()
        self.compactions += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        queue = self._queue
        tombstones = self._tombstones
        while queue:
            time, seq, callback, args = heapq.heappop(queue)
            if seq in tombstones:
                tombstones.discard(seq)
                continue
            self._now = time
            self._processed += 1
            callback(*args)
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None`` if idle."""
        queue = self._queue
        tombstones = self._tombstones
        while queue and queue[0][1] in tombstones:
            tombstones.discard(queue[0][1])
            heapq.heappop(queue)
        return queue[0][0] if queue else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the simulated time at which execution stopped.  When ``until``
        is given the clock is advanced to exactly ``until`` even if the last
        event fired earlier, which makes fixed-duration experiments easy to
        express.

        The loop examines each popped entry exactly once: a cancelled head is
        discarded on sight instead of being skipped by ``peek_time`` and then
        re-scanned by ``step``.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        # Local bindings keep attribute lookups off the per-event path.
        # Callbacks may mutate the queue and tombstone set, but both are
        # only ever mutated in place (see _compact), so the references stay
        # valid for the whole run.  The processed-event counter is batched
        # into the finally block for the same reason.
        queue = self._queue
        tombstones = self._tombstones
        heappop = heapq.heappop
        horizon = math.inf if until is None else until
        try:
            if max_events is None:
                while queue:
                    time, seq, callback, args = queue[0]
                    if tombstones and seq in tombstones:
                        tombstones.discard(seq)
                        heappop(queue)
                        continue
                    if time > horizon:
                        break
                    heappop(queue)
                    self._now = time
                    callback(*args)
                    executed += 1
            else:
                while queue and executed < max_events:
                    time, seq, callback, args = queue[0]
                    if tombstones and seq in tombstones:
                        tombstones.discard(seq)
                        heappop(queue)
                        continue
                    if time > horizon:
                        break
                    heappop(queue)
                    self._now = time
                    callback(*args)
                    executed += 1
        finally:
            self._processed += executed
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_for(self, duration: float, max_events: Optional[int] = None) -> float:
        """Run for ``duration`` seconds of simulated time starting from now."""
        return self.run(until=self._now + duration, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={len(self._queue)})"
