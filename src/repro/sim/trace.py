"""Lightweight event tracing.

Tracing is disabled by default (every protocol message would otherwise produce
a record and slow large experiments down).  Enable it on the
:class:`~repro.sim.world.World` to debug protocol behaviour or to assert on
event sequences in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: ``time``, emitting ``process`` and free-form ``message``."""

    time: float
    process: str
    message: str

    def __str__(self) -> str:
        return f"[{self.time:10.6f}] {self.process}: {self.message}"


class Trace:
    """An append-only in-memory trace buffer."""

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._records: List[TraceRecord] = []

    def record(self, time: float, process: str, message: str) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self._records) >= self.capacity:
            return
        self._records.append(TraceRecord(time, process, message))

    def records(self, process: Optional[str] = None, containing: Optional[str] = None) -> List[TraceRecord]:
        """Filter trace records by emitting process and/or substring."""
        result = self._records
        if process is not None:
            result = [record for record in result if record.process == process]
        if containing is not None:
            result = [record for record in result if containing in record.message]
        return list(result)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterable[TraceRecord]:
        return iter(self._records)
