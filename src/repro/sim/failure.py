"""Failure injection.

Figure 8 of the paper terminates one MRP-Store replica 20 seconds into the
run and restarts it at 240 seconds, observing the effect of checkpointing,
acceptor log trimming, and state transfer on throughput and latency.
:class:`FailureSchedule` expresses such scenarios declaratively and
:class:`FailureInjector` executes them against a :class:`~repro.sim.world.World`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs import obs_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.world import World

__all__ = ["FailureEvent", "FailureSchedule", "FailureInjector", "ChaosAction"]


@dataclass(frozen=True)
class FailureEvent:
    """A single scheduled failure action."""

    time: float
    action: str  # "crash" or "recover"
    process: str

    def __post_init__(self) -> None:
        if self.action not in ("crash", "recover"):
            raise ConfigurationError(f"unknown failure action {self.action!r}")
        if self.time < 0:
            raise ConfigurationError("failure events cannot be scheduled before t=0")


@dataclass
class FailureSchedule:
    """An ordered list of crash/recover events."""

    events: List[FailureEvent] = field(default_factory=list)

    def crash(self, process: str, at: float) -> "FailureSchedule":
        self.events.append(FailureEvent(at, "crash", process))
        return self

    def recover(self, process: str, at: float) -> "FailureSchedule":
        self.events.append(FailureEvent(at, "recover", process))
        return self

    def crash_and_recover(self, process: str, crash_at: float, recover_at: float) -> "FailureSchedule":
        """Convenience for the Figure 8 scenario (kill at 20 s, restart at 240 s)."""
        if recover_at <= crash_at:
            raise ConfigurationError("recovery must happen after the crash")
        return self.crash(process, crash_at).recover(process, recover_at)

    def sorted_events(self) -> List[FailureEvent]:
        return sorted(self.events, key=lambda event: (event.time, event.action))


@dataclass(frozen=True)
class ChaosAction:
    """A generic timed fault action applied by the injector.

    Crash/recover cover process failures; everything else the chaos engine
    injects (partitions, disk stalls, latency spikes, ...) is an arbitrary
    callback recorded under a human-readable label so that scenario traces
    list every injected fault with its firing time.
    """

    time: float
    label: str


class FailureInjector:
    """Applies a :class:`FailureSchedule` to the processes of a world."""

    def __init__(self, world: "World", schedule: Optional[FailureSchedule] = None) -> None:
        self.world = world
        self.schedule = schedule or FailureSchedule()
        self.applied: List[FailureEvent] = []
        self.applied_actions: List[ChaosAction] = []
        self._on_crash: List[Callable[[str], None]] = []
        self._on_recover: List[Callable[[str], None]] = []

    def on_crash(self, callback: Callable[[str], None]) -> None:
        """Register a callback invoked with the process name after each crash."""
        self._on_crash.append(callback)

    def on_recover(self, callback: Callable[[str], None]) -> None:
        """Register a callback invoked with the process name after each recovery."""
        self._on_recover.append(callback)

    def arm(self) -> None:
        """Schedule every event in the failure schedule on the simulator."""
        for event in self.schedule.sorted_events():
            self.world.sim.schedule_at(event.time, self._apply, event)

    def _apply(self, event: FailureEvent) -> None:
        process = self.world.process(event.process)
        if event.action == "crash":
            process.crash()
            callbacks = self._on_crash
        else:
            process.recover()
            callbacks = self._on_recover
        self.applied.append(event)
        self.world.trace.record(self.world.sim.now, "failure-injector", f"{event.action} {event.process}")
        obs_of(self.world).metrics.record_event(
            self.world.sim.now, f"fault/{event.action}", event.process
        )
        for callback in callbacks:
            callback(event.process)

    def schedule_callback(self, time: float, label: str, callback: Callable[[], None]) -> None:
        """Schedule an arbitrary fault action at ``time`` (chaos engine hook).

        The action is recorded in :attr:`applied_actions` and the world trace
        when it fires, exactly like crash/recover events, so a scenario run
        leaves a complete, ordered fault log.
        """
        if time < 0:
            raise ConfigurationError("fault actions cannot be scheduled before t=0")
        self.world.sim.schedule_at(time, self._apply_callback, label, callback)

    def _apply_callback(self, label: str, callback: Callable[[], None]) -> None:
        self.applied_actions.append(ChaosAction(self.world.sim.now, label))
        self.world.trace.record(self.world.sim.now, "failure-injector", label)
        obs_of(self.world).metrics.record_event(self.world.sim.now, "fault/action", label)
        callback()

    def crash_now(self, process: str) -> None:
        """Immediately crash a process (outside of any schedule)."""
        self.world.process(process).crash()
        self.applied.append(FailureEvent(self.world.sim.now, "crash", process))
        obs_of(self.world).metrics.record_event(self.world.sim.now, "fault/crash", process)

    def recover_now(self, process: str) -> None:
        """Immediately recover a process (outside of any schedule)."""
        self.world.process(process).recover()
        self.applied.append(FailureEvent(self.world.sim.now, "recover", process))
        obs_of(self.world).metrics.record_event(self.world.sim.now, "fault/recover", process)
