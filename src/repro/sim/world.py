"""The experiment environment.

A :class:`World` bundles everything a simulation needs -- the event engine,
the network (with its topology), the metric monitor, deterministic random
streams, the trace buffer and the registry of processes.  Protocol code never
instantiates these pieces individually; it receives a world and builds on it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError, NetworkError
from repro.obs import Observability
from repro.runtime.interfaces import StorageMode
from repro.sim.engine import Simulator
from repro.sim.monitor import Monitor
from repro.sim.network import Network, NetworkConfig
from repro.sim.random import RandomStreams
from repro.sim.topology import Topology, lan_topology
from repro.sim.trace import Trace

__all__ = ["World"]


class World:
    """Container for one simulated deployment.

    ``World`` is the simulator's implementation of the
    :class:`~repro.runtime.interfaces.Runtime` protocol: ``.sim`` is its
    :class:`~repro.runtime.interfaces.Clock`, ``.network`` its
    :class:`~repro.runtime.interfaces.Transport`, and :meth:`new_store`
    builds the timing-model disks behind the
    :class:`~repro.runtime.interfaces.StableStore` surface.
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        seed: int = 0,
        network_config: Optional[NetworkConfig] = None,
        timeline_window: float = 1.0,
        trace_enabled: bool = False,
        default_site: Optional[str] = None,
        tracing: bool = False,
        trace_sample: int = 64,
    ) -> None:
        self.sim = Simulator()
        self.topology = topology or lan_topology()
        self.network = Network(self.sim, self.topology, network_config)
        self.monitor = Monitor(timeline_window=timeline_window)
        self.rng = RandomStreams(seed)
        self.trace = Trace(enabled=trace_enabled)
        # Observability bundle (causal tracing + metrics registry), shared by
        # every process of this world.  ``tracing`` enables sampled causal
        # traces (``trace_sample`` = every Nth proposed value); the metrics
        # side is always available -- collectors cost nothing until snapshot.
        self.obs = Observability(tracing=tracing, trace_sample=trace_sample)
        self.obs.metrics.add_collector(self._world_metric_samples)
        self._processes: Dict[str, "Process"] = {}
        if default_site is None:
            default_site = self.topology.sites[0]
        if not self.topology.has_site(default_site):
            raise ConfigurationError(f"default site {default_site!r} is not in the topology")
        self.default_site = default_site
        self._started = False

    # ------------------------------------------------------------------
    # process registry
    # ------------------------------------------------------------------
    def register(self, process: "Process", site: str) -> None:
        """Called by :class:`~repro.runtime.actor.Process` on construction."""
        if process.name in self._processes:
            raise ConfigurationError(f"a process named {process.name!r} already exists")
        self._processes[process.name] = process
        self.network.attach(process, site)
        if self._started:
            # Late-joining processes (e.g. a replacement replica) start
            # immediately.
            self.sim.call_later(0.0, process.on_start)

    def process(self, name: str) -> "Process":
        try:
            return self._processes[name]
        except KeyError:
            raise NetworkError(f"unknown process {name!r}") from None

    def get_process(self, name: str) -> Optional["Process"]:
        """The process named ``name``, or ``None`` (no-raise hot-path lookup)."""
        return self._processes.get(name)

    def has_process(self, name: str) -> bool:
        return name in self._processes

    def processes(self) -> List["Process"]:
        return list(self._processes.values())

    def process_names(self) -> List[str]:
        return list(self._processes)

    # ------------------------------------------------------------------
    # storage factory (Runtime protocol)
    # ------------------------------------------------------------------
    def new_store(self, mode: StorageMode) -> Optional["Disk"]:
        """A stable-storage device for ``mode`` (``None`` for in-memory)."""
        return disk_for_mode(self.sim, mode)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Invoke ``on_start`` on every registered process (once)."""
        if self._started:
            return
        self._started = True
        for process in list(self._processes.values()):
            self.sim.call_later(0.0, process.on_start)

    @property
    def started(self) -> bool:
        """True once :meth:`start` has run (late joiners start immediately)."""
        return self._started

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Start all processes (if needed) and run the simulation."""
        self.start()
        return self.sim.run(until=until, max_events=max_events)

    def run_for(self, duration: float) -> float:
        self.start()
        return self.sim.run_for(duration)

    @property
    def now(self) -> float:
        return self.sim.now

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _world_metric_samples(self):
        """Pull-collector for world-level counters (network, engine, monitor)."""
        network = self.network
        samples = [
            ("mrp_network_messages_sent_total", network.messages_sent),
            ("mrp_network_messages_delivered_total", network.messages_delivered),
            ("mrp_network_messages_dropped_total", network.messages_dropped),
            ("mrp_network_messages_blocked_total", network.messages_blocked),
            ("mrp_sim_heap_compactions_total", self.sim.compactions),
            ("mrp_sim_events_total", self.sim.processed_events),
            ("mrp_sim_time_seconds", self.sim.now),
        ]
        for name, value in sorted(self.monitor.counters().items()):
            label = "".join(c if c.isalnum() else "_" for c in name)
            samples.append((f"mrp_monitor_{label}_total", value))
        return samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"World(t={self.sim.now:.3f}, processes={len(self._processes)})"


# Imported late to avoid a circular import at module load time.
from repro.sim.disk import Disk, disk_for_mode  # noqa: E402  (intentional tail import)
from repro.runtime.actor import Process  # noqa: E402  (intentional tail import)
