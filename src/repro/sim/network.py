"""Message-level network model.

The paper's implementation sends all protocol traffic over TCP connections
arranged in a unidirectional ring.  The simulator models each process with a
single full-duplex NIC:

* outgoing messages are **serialized** on the sender's NIC at the link
  bandwidth (a 32 KB packet on a 10 Gbps NIC occupies it for ~26 us),
* the message then experiences the one-way **propagation latency** between
  the sender's and receiver's sites (from the :class:`~repro.sim.topology.Topology`),
* incoming messages are serialized on the receiver's NIC as well, and
* delivery between any ordered pair of processes is **FIFO**, matching TCP.

Messages destined to a crashed process are dropped (TCP would reset the
connection; the protocols above re-establish state through recovery).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional, Set, Tuple, TYPE_CHECKING

from repro.errors import NetworkError
from repro.sim.engine import Simulator
from repro.sim.topology import Topology, lan_topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.actor import Process

__all__ = ["NetworkConfig", "Network"]


@dataclass(slots=True)
class NetworkConfig:
    """Tunable constants of the network model.

    ``per_message_overhead_bytes`` accounts for TCP/IP and protocol framing;
    ``min_delivery_delay`` is a floor modelling kernel/scheduling overhead so
    that even empty messages take a non-zero time.
    """

    per_message_overhead_bytes: int = 64
    min_delivery_delay: float = 20e-6
    drop_to_crashed: bool = True


class _Nic:
    """Tracks when a process's transmit/receive path next becomes free."""

    __slots__ = ("tx_free_at", "rx_free_at", "tx_bytes", "rx_bytes")

    def __init__(self) -> None:
        self.tx_free_at = 0.0
        self.rx_free_at = 0.0
        self.tx_bytes = 0
        self.rx_bytes = 0


class Network:
    """Routes messages between attached processes."""

    __slots__ = (
        "sim",
        "topology",
        "config",
        "_processes",
        "_sites",
        "_nics",
        "_fifo_clock",
        "_final_nic_bytes",
        "messages_sent",
        "messages_delivered",
        "messages_dropped",
        "bytes_sent",
        "_blocked_site_pairs",
        "_isolated",
        "_extra_latency",
        "messages_blocked",
        "_link_cache",
        "_route_cache",
        "_topology_version",
    )

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[Topology] = None,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology or lan_topology()
        self.config = config or NetworkConfig()
        self._processes: Dict[str, "Process"] = {}
        self._sites: Dict[str, str] = {}
        self._nics: Dict[str, _Nic] = {}
        self._fifo_clock: Dict[Tuple[str, str], float] = {}
        #: Final byte counters of detached processes (``name -> (tx, rx)``),
        #: so churn-heavy campaigns can still report per-process totals after
        #: the NIC state itself has been pruned.
        self._final_nic_bytes: Dict[str, Tuple[int, int]] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        # Fault-injection state (driven by the chaos scenario engine): site
        # pairs whose links are partitioned, processes cut off entirely, and
        # per-site-pair extra one-way latency ("WAN weather").
        self._blocked_site_pairs: Set[FrozenSet[str]] = set()
        self._isolated: Set[str] = set()
        self._extra_latency: Dict[FrozenSet[str], float] = {}
        self.messages_blocked = 0
        # Hot-path caches.  ``_link_cache``: ``(src_site, dst_site) ->
        # (blocked, bandwidth_bps, propagation_incl_extra)``.  ``_route_cache``
        # goes one step further, ``(src, dst) -> link entry + both NIC
        # objects``, so the per-send path does a single dict hit instead of
        # topology lookups and frozenset allocations.  Both are computed
        # lazily on first send and invalidated wholesale whenever a fault
        # mutates link state, membership changes, or the topology itself
        # changes (tracked by its version counter).
        self._link_cache: Dict[Tuple[str, str], Tuple[bool, float, float]] = {}
        self._route_cache: Dict[Tuple[str, str], tuple] = {}
        self._topology_version = self.topology.version

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def attach(self, process: "Process", site: str) -> None:
        """Attach ``process`` to ``site``.  Called by :class:`~repro.sim.world.World`."""
        if not self.topology.has_site(site):
            raise NetworkError(f"unknown site {site!r} for process {process.name!r}")
        self._processes[process.name] = process
        self._sites[process.name] = site
        self._nics.setdefault(process.name, _Nic())
        self._route_cache.clear()

    def detach(self, name: str) -> None:
        """Remove a process from the network, pruning its per-process state.

        Chaos campaigns with crash/restart churn detach and re-attach
        processes constantly; leaving NIC and FIFO-clock entries behind would
        grow memory without bound.  The final byte counters stay retrievable
        through :meth:`nic_bytes`.
        """
        self._processes.pop(name, None)
        self._sites.pop(name, None)
        self._isolated.discard(name)
        self._route_cache.clear()
        nic = self._nics.pop(name, None)
        if nic is not None:
            self._final_nic_bytes[name] = (nic.tx_bytes, nic.rx_bytes)
        if self._fifo_clock:
            stale = [pair for pair in self._fifo_clock if name in pair]
            for pair in stale:
                del self._fifo_clock[pair]

    def site_of(self, name: str) -> str:
        try:
            return self._sites[name]
        except KeyError:
            raise NetworkError(f"process {name!r} is not attached to the network") from None

    def is_attached(self, name: str) -> bool:
        return name in self._processes

    # ------------------------------------------------------------------
    # fault injection (chaos scenarios)
    # ------------------------------------------------------------------
    def _check_site(self, site: str) -> None:
        if not self.topology.has_site(site):
            raise NetworkError(f"unknown site {site!r} in fault injection")

    def block_sites(self, site_a: str, site_b: str) -> None:
        """Partition the link between two sites: messages crossing it are dropped.

        Messages already in flight when the partition starts are still
        delivered (a real partition does not eat packets retroactively);
        everything sent afterwards is dropped until :meth:`unblock_sites`.
        """
        self._check_site(site_a)
        self._check_site(site_b)
        self._blocked_site_pairs.add(frozenset((site_a, site_b)))
        self._link_cache.clear()
        self._route_cache.clear()

    def unblock_sites(self, site_a: str, site_b: str) -> None:
        """Heal a partition created with :meth:`block_sites` (idempotent)."""
        self._blocked_site_pairs.discard(frozenset((site_a, site_b)))
        self._link_cache.clear()
        self._route_cache.clear()

    def partition_sites(self, sites_a: Iterable[str], sites_b: Iterable[str]) -> None:
        """Partition every site in ``sites_a`` from every site in ``sites_b``."""
        for site_a in sites_a:
            for site_b in sites_b:
                self.block_sites(site_a, site_b)

    def heal_sites(self, sites_a: Iterable[str], sites_b: Iterable[str]) -> None:
        """Heal a partition created with :meth:`partition_sites`."""
        for site_a in sites_a:
            for site_b in sites_b:
                self.unblock_sites(site_a, site_b)

    def isolate(self, name: str) -> None:
        """Cut a process off the network without crashing it (NIC/switch fault)."""
        if name not in self._processes:
            raise NetworkError(f"cannot isolate unknown process {name!r}")
        self._isolated.add(name)

    def rejoin(self, name: str) -> None:
        """Reconnect a process isolated with :meth:`isolate` (idempotent)."""
        self._isolated.discard(name)

    def set_extra_latency(self, site_a: str, site_b: str, extra_seconds: float) -> None:
        """Add one-way latency on top of the topology between two sites."""
        if extra_seconds < 0:
            raise NetworkError("extra latency cannot be negative")
        self._check_site(site_a)
        self._check_site(site_b)
        self._extra_latency[frozenset((site_a, site_b))] = extra_seconds
        self._link_cache.clear()
        self._route_cache.clear()

    def clear_extra_latency(self, site_a: str, site_b: str) -> None:
        """Remove a latency spike set with :meth:`set_extra_latency` (idempotent)."""
        self._extra_latency.pop(frozenset((site_a, site_b)), None)
        self._link_cache.clear()
        self._route_cache.clear()

    def link_faulted(self, src: str, dst: str) -> bool:
        """True when a message from ``src`` to ``dst`` would currently be dropped."""
        if src in self._isolated or dst in self._isolated:
            return True
        if not self._blocked_site_pairs:
            return False
        pair = frozenset((self._sites[src], self._sites[dst]))
        return pair in self._blocked_site_pairs

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _link_entry(self, src_site: str, dst_site: str) -> Tuple[bool, float, float]:
        """Compute and cache ``(blocked, bandwidth, propagation)`` for a site pair."""
        blocked = False
        if self._blocked_site_pairs:
            blocked = frozenset((src_site, dst_site)) in self._blocked_site_pairs
        bandwidth = self.topology.bandwidth(src_site, dst_site)
        propagation = self.topology.latency(src_site, dst_site)
        if self._extra_latency:
            propagation += self._extra_latency.get(frozenset((src_site, dst_site)), 0.0)
        entry = (blocked, bandwidth, propagation)
        self._link_cache[(src_site, dst_site)] = entry
        return entry

    def _build_route(self, src: str, dst: str) -> tuple:
        """Compute and cache the full per-process-pair route tuple.

        The last element is the interned FIFO-clock key, so the send path
        does not rebuild the ``(src, dst)`` tuple for the clock lookup.
        """
        sites = self._sites
        src_site = sites.get(src)
        if src_site is None:
            raise NetworkError(f"unknown sender {src!r}")
        dst_site = sites.get(dst)
        if dst_site is None:
            raise NetworkError(f"unknown destination {dst!r}")
        entry = self._link_cache.get((src_site, dst_site))
        if entry is None:
            entry = self._link_entry(src_site, dst_site)
        key = (src, dst)
        route = entry + (self._nics[src], self._nics[dst], key)
        self._route_cache[key] = route
        return route

    def send(self, src: str, dst: str, payload: Any, size_bytes: int) -> float:
        """Send ``payload`` from ``src`` to ``dst``.

        Returns the scheduled delivery time.  The payload object is handed to
        the destination's ``on_message`` untouched (the simulator does not
        serialize Python objects; ``size_bytes`` drives the timing model).
        """
        if self._isolated and (src in self._isolated or dst in self._isolated):
            # NIC/switch fault on either endpoint: the message never leaves.
            self.messages_blocked += 1
            return self.sim.now
        if self.topology.version != self._topology_version:
            self._link_cache.clear()
            self._route_cache.clear()
            self._topology_version = self.topology.version
        route = self._route_cache.get((src, dst))
        if route is None:
            route = self._build_route(src, dst)
        blocked, bandwidth, propagation, src_nic, dst_nic, key = route
        if blocked:
            # Partitioned link: TCP would stall and eventually reset; the
            # protocols recover through retransmission.
            self.messages_blocked += 1
            return self.sim.now

        config = self.config
        if size_bytes < 0:
            size_bytes = 0
        wire_bytes = size_bytes + config.per_message_overhead_bytes
        transmit_time = wire_bytes * 8.0 / bandwidth

        sim = self.sim
        now = sim._now

        # Serialize on the sender's transmit path.
        tx_start = src_nic.tx_free_at
        if now > tx_start:
            tx_start = now
        tx_end = tx_start + transmit_time
        src_nic.tx_free_at = tx_end
        src_nic.tx_bytes += wire_bytes

        # Propagation plus serialization on the receiver's receive path.
        arrival = tx_end + propagation
        rx_start = dst_nic.rx_free_at
        if arrival > rx_start:
            rx_start = arrival
        rx_end = rx_start + transmit_time
        dst_nic.rx_free_at = rx_end
        dst_nic.rx_bytes += wire_bytes

        delivery = now + config.min_delivery_delay
        if rx_end > delivery:
            delivery = rx_end

        # FIFO per ordered (src, dst) pair, like a TCP connection.
        fifo_clock = self._fifo_clock
        previous = fifo_clock.get(key)
        if previous is not None and previous > delivery:
            delivery = previous
        fifo_clock[key] = delivery

        self.messages_sent += 1
        self.bytes_sent += wire_bytes
        # Inlined Simulator.call_at: ``delivery`` can never be in the past
        # (it is floored at now + min_delivery_delay above), so the
        # validation -- and one call per message -- is skipped.
        heappush(sim._queue, (delivery, next(sim._seq), self._deliver, (src, dst, payload)))
        return delivery

    def _deliver(self, src: str, dst: str, payload: Any) -> None:
        process = self._processes.get(dst)
        if process is None or not process.alive:
            if self.config.drop_to_crashed:
                self.messages_dropped += 1
                return
            raise NetworkError(f"destination {dst!r} is not available")
        self.messages_delivered += 1
        # Process.deliver_message inlined (its alive check is already done).
        process.messages_received += 1
        process.on_message(src, payload)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def nic_bytes(self, name: str) -> Tuple[int, int]:
        """Return ``(tx_bytes, rx_bytes)`` transferred by a process's NIC.

        For a detached process the snapshot taken at :meth:`detach` time is
        returned.
        """
        nic = self._nics.get(name)
        if nic is None:
            return self._final_nic_bytes.get(name, (0, 0))
        return (nic.tx_bytes, nic.rx_bytes)

    def one_way_latency(self, src: str, dst: str) -> float:
        """The propagation latency currently configured between two processes."""
        return self.topology.latency(self.site_of(src), self.site_of(dst))
