"""Backwards-compatible shim: the CPU model now lives in the runtime layer.

:class:`~repro.runtime.cpu.CPU` only needs a
:class:`~repro.runtime.interfaces.Clock`, so it moved to
:mod:`repro.runtime.cpu`; this module keeps the historical import path
``repro.sim.cpu`` working for existing code and tests.
"""

from repro.runtime.cpu import CPU, CPUConfig

__all__ = ["CPUConfig", "CPU"]
