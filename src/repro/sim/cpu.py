"""Deprecated alias module: the CPU model lives in :mod:`repro.runtime.cpu`.

:class:`~repro.runtime.cpu.CPU` only needs a
:class:`~repro.runtime.interfaces.Clock`, so it moved to the runtime layer.
Importing it through ``repro.sim.cpu`` still works for one release but emits
a :class:`DeprecationWarning`; this module will then be removed.
"""

import warnings

__all__ = ["CPUConfig", "CPU"]


def __getattr__(name):
    if name in __all__:
        warnings.warn(
            f"repro.sim.cpu.{name} is deprecated; import it from repro.runtime.cpu",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.runtime import cpu as _cpu

        return getattr(_cpu, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
