"""Measurement infrastructure: latency statistics and throughput timelines.

Every figure in the paper reports one or more of

* throughput in operations/second or Mbps (Figures 3-8),
* average latency in milliseconds (Figures 3, 4, 5, 8),
* a latency CDF (Figures 3, 6, 7),
* a throughput/latency *timeline* during recovery (Figure 8),
* CPU utilization at the coordinator (Figure 3).

:class:`Monitor` collects the raw samples during a simulation and exposes the
aggregations the benchmark harness needs.  Samples are tagged with a free-form
series name (e.g. ``"ring-1"`` or ``"us-west-2"``) so a single run can report
per-ring or per-region results.

The statistics primitives (:class:`LatencyStats`, :class:`ThroughputTimeline`,
:func:`percentile`) moved to :mod:`repro.obs.stats` with the observability
layer.  Importing them through this module still works for one release but
emits a :class:`DeprecationWarning`; import them from :mod:`repro.obs.stats`.
"""

from __future__ import annotations

import bisect
import math
import warnings
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.obs.stats import (
    LatencyStats as _LatencyStats,
    ThroughputTimeline as _ThroughputTimeline,
    percentile as _percentile,
)

__all__ = ["Monitor"]

#: One-release deprecation aliases (PEP 562): resolved on attribute access so
#: merely importing this module stays warning-free.
_MOVED_TO_OBS_STATS = {
    "LatencyStats": _LatencyStats,
    "ThroughputTimeline": _ThroughputTimeline,
    "percentile": _percentile,
}


def __getattr__(name):
    moved = _MOVED_TO_OBS_STATS.get(name)
    if moved is not None:
        warnings.warn(
            f"repro.sim.monitor.{name} is deprecated; import it from repro.obs.stats",
            DeprecationWarning,
            stacklevel=2,
        )
        return moved
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class Monitor:
    """Collects operation samples for one simulation run.

    Recording is the hot path (one call per completed operation, across the
    whole experiment); aggregation happens at query time.
    :meth:`record_operation` therefore only appends a raw
    ``(completion_time, latency, size_bytes)`` sample, and the per-interval
    throughput timelines are materialized lazily -- incrementally folding in
    the samples recorded since the previous query -- instead of being updated
    per event.
    """

    def __init__(self, timeline_window: float = 1.0) -> None:
        self._samples: Dict[str, List[Tuple[float, float, int]]] = defaultdict(list)
        self._timelines: Dict[str, _ThroughputTimeline] = {}
        #: Per-series count of samples already folded into the timeline.
        self._timeline_counts: Dict[str, int] = {}
        self._timeline_window = timeline_window
        self._counters: Dict[str, int] = defaultdict(int)
        self._gauges: Dict[str, List[Tuple[float, float]]] = defaultdict(list)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_operation(
        self,
        series: str,
        completion_time: float,
        latency: float,
        size_bytes: int = 0,
    ) -> None:
        """Record a completed operation on ``series``."""
        self._samples[series].append((completion_time, latency, size_bytes))

    def increment(self, counter: str, amount: int = 1) -> None:
        """Increment a named counter (e.g. aborts, retransmissions, skips)."""
        self._counters[counter] += amount

    def record_gauge(self, gauge: str, time: float, value: float) -> None:
        """Record a time-stamped gauge value (e.g. CPU utilization, queue length)."""
        self._gauges[gauge].append((time, value))

    def timeline(self, series: str) -> _ThroughputTimeline:
        """The (lazily materialized) throughput timeline for ``series``."""
        timeline = self._timelines.get(series)
        if timeline is None:
            timeline = _ThroughputTimeline(self._timeline_window)
            self._timelines[series] = timeline
            self._timeline_counts[series] = 0
        samples = self._samples.get(series)
        if samples is not None:
            folded = self._timeline_counts[series]
            if folded < len(samples):
                record = timeline.record
                for completion_time, _, size_bytes in samples[folded:]:
                    record(completion_time, size_bytes)
                self._timeline_counts[series] = len(samples)
        return timeline

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def series_names(self) -> List[str]:
        return sorted(set(self._samples) | set(self._timelines))

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def gauge_series(self, gauge: str) -> List[Tuple[float, float]]:
        return list(self._gauges.get(gauge, []))

    def gauge_mean(self, gauge: str) -> float:
        points = self._gauges.get(gauge, [])
        if not points:
            return 0.0
        return sum(value for _, value in points) / len(points)

    def latencies(self, series: Optional[str] = None) -> List[float]:
        """Raw latency samples for one series, or for all series combined."""
        if series is not None:
            return [latency for _, latency, _ in self._samples.get(series, [])]
        merged: List[float] = []
        for samples in self._samples.values():
            merged.extend(latency for _, latency, _ in samples)
        return merged

    def latency_stats(self, series: Optional[str] = None) -> _LatencyStats:
        return _LatencyStats.from_samples(self.latencies(series))

    def latency_cdf(self, series: Optional[str] = None, points: int = 100) -> List[Tuple[float, float]]:
        """Return ``(latency_seconds, cumulative_fraction)`` pairs."""
        samples = sorted(self.latencies(series))
        if not samples:
            return []
        cdf = []
        for index in range(points + 1):
            fraction = index / points
            cdf.append((_percentile(samples, fraction), fraction))
        return cdf

    def fraction_below(self, threshold: float, series: Optional[str] = None) -> float:
        """Fraction of samples with latency strictly below ``threshold`` seconds."""
        samples = sorted(self.latencies(series))
        if not samples:
            return 0.0
        return bisect.bisect_left(samples, threshold) / len(samples)

    def throughput_ops(
        self,
        series: Optional[str] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> float:
        """Average operations/second over ``[start, end)`` of the run.

        When ``start``/``end`` are omitted the full recorded span is used.
        """
        names = [series] if series is not None else self.series_names()
        total_ops = 0
        span_start = math.inf
        span_end = -math.inf
        for name in names:
            timeline = self._materialized(name)
            if timeline is None:
                continue
            for bucket_start, ops, _ in timeline.buckets():
                bucket_end = bucket_start + timeline.window
                if start is not None and bucket_end <= start:
                    continue
                if end is not None and bucket_start >= end:
                    continue
                total_ops += ops
                span_start = min(span_start, bucket_start)
                span_end = max(span_end, bucket_end)
        if span_start is math.inf or span_end <= span_start:
            return 0.0
        window_start = start if start is not None else span_start
        window_end = end if end is not None else span_end
        duration = window_end - window_start
        if duration <= 0:
            return 0.0
        return total_ops / duration

    def throughput_mbps(
        self,
        series: Optional[str] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> float:
        """Average goodput in megabits/second over ``[start, end)``."""
        names = [series] if series is not None else self.series_names()
        total_bytes = 0
        span_start = math.inf
        span_end = -math.inf
        for name in names:
            timeline = self._materialized(name)
            if timeline is None:
                continue
            for bucket_start, _, nbytes in timeline.buckets():
                bucket_end = bucket_start + timeline.window
                if start is not None and bucket_end <= start:
                    continue
                if end is not None and bucket_start >= end:
                    continue
                total_bytes += nbytes
                span_start = min(span_start, bucket_start)
                span_end = max(span_end, bucket_end)
        if span_start is math.inf or span_end <= span_start:
            return 0.0
        window_start = start if start is not None else span_start
        window_end = end if end is not None else span_end
        duration = window_end - window_start
        if duration <= 0:
            return 0.0
        return total_bytes * 8 / 1e6 / duration

    def _materialized(self, series: str) -> Optional[_ThroughputTimeline]:
        """The series' timeline, or ``None`` for a series never recorded."""
        if series not in self._samples and series not in self._timelines:
            return None
        return self.timeline(series)

    def throughput_series(self, series: str) -> List[Tuple[float, float]]:
        """``(time, ops_per_second)`` timeline for one series (Figure 8)."""
        return self.timeline(series).ops_series()
