"""Network topologies: the paper's LAN cluster and EC2-like WAN.

A :class:`Topology` maps *sites* (a rack inside one datacenter, or an EC2
region) to pairwise one-way latencies and link bandwidths.  Processes are
attached to sites when they join the :class:`~repro.sim.world.World`; the
:class:`~repro.sim.network.Network` consults the topology for every message.

Two factory functions cover the paper's setups:

* :func:`lan_topology` -- the local cluster: 10 Gbps, 0.1 ms RTT
  (Section 8.1, "local experiments").
* :func:`wan_topology` -- four EC2 regions (eu-west-1, us-west-1, us-west-2,
  us-east-1) with published inter-region round-trip times (Section 8.1,
  "global experiments").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Topology",
    "lan_topology",
    "wan_topology",
    "matrix_topology",
    "EC2_REGION_RTT_MS",
    "EC2_REGIONS",
]


#: Approximate inter-region round-trip times in milliseconds for the four
#: regions used in the paper's horizontal-scalability experiment.  The exact
#: values are not in the paper; these are representative public measurements
#: and only influence absolute latency, not the scalability shape.
EC2_REGION_RTT_MS: Dict[Tuple[str, str], float] = {
    ("eu-west-1", "us-east-1"): 80.0,
    ("eu-west-1", "us-west-1"): 140.0,
    ("eu-west-1", "us-west-2"): 130.0,
    ("us-east-1", "us-west-1"): 75.0,
    ("us-east-1", "us-west-2"): 70.0,
    ("us-west-1", "us-west-2"): 22.0,
}

#: Region order used throughout the Figure 7 reproduction.
EC2_REGIONS: List[str] = ["eu-west-1", "us-west-1", "us-east-1", "us-west-2"]


@dataclass(slots=True)
class _Link:
    latency: float  # one-way seconds
    bandwidth_bps: float  # bits per second


class Topology:
    """Pairwise latency/bandwidth between named sites."""

    __slots__ = ("_sites", "_default", "_links", "version")

    def __init__(
        self,
        sites: Iterable[str],
        default_latency: float = 50e-6,
        default_bandwidth_bps: float = 10e9,
    ) -> None:
        self._sites: List[str] = list(dict.fromkeys(sites))
        if not self._sites:
            raise ConfigurationError("a topology needs at least one site")
        self._default = _Link(default_latency, default_bandwidth_bps)
        self._links: Dict[Tuple[str, str], _Link] = {}
        #: Bumped on every mutation (new site, changed link).  The network
        #: layer snapshots it to know when its per-site-pair link cache is
        #: stale without registering callbacks on the topology.
        self.version = 0

    # ------------------------------------------------------------------
    @property
    def sites(self) -> List[str]:
        return list(self._sites)

    def has_site(self, site: str) -> bool:
        return site in self._sites

    def add_site(self, site: str) -> None:
        if site not in self._sites:
            self._sites.append(site)
            self.version += 1

    def set_link(
        self,
        site_a: str,
        site_b: str,
        latency: float,
        bandwidth_bps: Optional[float] = None,
    ) -> None:
        """Set the symmetric link between two sites (one-way latency in seconds)."""
        for site in (site_a, site_b):
            if site not in self._sites:
                raise ConfigurationError(f"unknown site {site!r}")
        link = _Link(latency, bandwidth_bps or self._default.bandwidth_bps)
        self._links[(site_a, site_b)] = link
        self._links[(site_b, site_a)] = link
        self.version += 1

    def _link(self, src_site: str, dst_site: str) -> _Link:
        return self._links.get((src_site, dst_site), self._default)

    def latency(self, src_site: str, dst_site: str) -> float:
        """One-way propagation latency between two sites in seconds."""
        if src_site == dst_site:
            return self._default.latency
        return self._link(src_site, dst_site).latency

    def bandwidth(self, src_site: str, dst_site: str) -> float:
        """Link bandwidth in bits/second between two sites."""
        if src_site == dst_site:
            return self._default.bandwidth_bps
        return self._link(src_site, dst_site).bandwidth_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(sites={self._sites})"


def lan_topology(
    rtt: float = 0.1e-3,
    bandwidth_bps: float = 10e9,
    site: str = "lan",
) -> Topology:
    """The paper's local cluster: one site, 0.1 ms RTT, 10 Gbps links."""
    return Topology([site], default_latency=rtt / 2.0, default_bandwidth_bps=bandwidth_bps)


def matrix_topology(
    sites: Iterable[str],
    rtt_ms: Dict[Tuple[str, str], float],
    default_rtt_ms: float = 100.0,
    intra_site_rtt: float = 0.5e-3,
    intra_site_bandwidth_bps: float = 1e9,
    inter_site_bandwidth_bps: float = 200e6,
    bandwidth_bps: Optional[Dict[Tuple[str, str], float]] = None,
) -> Topology:
    """Build a topology from an explicit pairwise RTT matrix.

    ``rtt_ms`` maps unordered site pairs to round-trip times in milliseconds;
    missing pairs fall back to ``default_rtt_ms``.  ``bandwidth_bps`` may
    override individual links.  This is the generic factory behind the WAN
    presets used by the chaos scenario engine (:mod:`repro.scenarios`).
    """
    site_list = list(dict.fromkeys(sites))
    topo = Topology(
        site_list,
        default_latency=intra_site_rtt / 2.0,
        default_bandwidth_bps=intra_site_bandwidth_bps,
    )
    overrides = bandwidth_bps or {}
    for i, site_a in enumerate(site_list):
        for site_b in site_list[i + 1 :]:
            pair_rtt = rtt_ms.get((site_a, site_b), rtt_ms.get((site_b, site_a), default_rtt_ms))
            bandwidth = overrides.get(
                (site_a, site_b), overrides.get((site_b, site_a), inter_site_bandwidth_bps)
            )
            topo.set_link(
                site_a,
                site_b,
                latency=pair_rtt * 1e-3 / 2.0,
                bandwidth_bps=bandwidth,
            )
    return topo


def wan_topology(
    regions: Optional[Iterable[str]] = None,
    intra_region_rtt: float = 0.5e-3,
    intra_region_bandwidth_bps: float = 1e9,
    inter_region_bandwidth_bps: float = 200e6,
    rtt_matrix_ms: Optional[Dict[Tuple[str, str], float]] = None,
) -> Topology:
    """An EC2-like WAN with one site per region.

    ``rtt_matrix_ms`` maps unordered region pairs to round-trip times in
    milliseconds; missing pairs fall back to 100 ms RTT.
    """
    region_list = list(regions) if regions is not None else list(EC2_REGIONS)
    matrix = dict(EC2_REGION_RTT_MS)
    if rtt_matrix_ms:
        matrix.update(rtt_matrix_ms)
    topo = Topology(
        region_list,
        default_latency=intra_region_rtt / 2.0,
        default_bandwidth_bps=intra_region_bandwidth_bps,
    )
    for i, region_a in enumerate(region_list):
        for region_b in region_list[i + 1 :]:
            rtt_ms = matrix.get((region_a, region_b), matrix.get((region_b, region_a), 100.0))
            topo.set_link(
                region_a,
                region_b,
                latency=rtt_ms * 1e-3 / 2.0,
                bandwidth_bps=inter_region_bandwidth_bps,
            )
    return topo
