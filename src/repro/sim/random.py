"""Deterministic random-number streams.

Experiments need several independent sources of randomness (key selection,
value sizes, client think times, network jitter, ...).  Using one shared
``random.Random`` would make results depend on the order in which components
draw numbers, which changes whenever code is refactored.  Instead every
component asks :class:`RandomStreams` for a *named* stream; the stream's seed
is derived deterministically from the experiment seed and the name, so adding
a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of named, independently seeded ``random.Random`` instances."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The experiment-level seed all streams are derived from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same ``(seed, name)`` pair always yields the same sequence.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory, useful for giving a whole subsystem its own namespace."""
        digest = hashlib.sha256(f"{self._seed}:fork:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
