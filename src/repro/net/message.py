"""Protocol message envelopes.

Messages exchanged by the protocols are plain dataclasses.  The network model
needs a byte size for each one; :class:`ProtocolMessage` provides a
``size_bytes`` property combining a fixed header with the size of any carried
:class:`~repro.types.Value` payloads, and :func:`estimate_size` estimates the
wire size of arbitrary Python payloads for application-level messages.
"""

from __future__ import annotations

from typing import Any

from repro.types import Value

__all__ = ["ProtocolMessage", "estimate_size", "utf8_len", "HEADER_BYTES"]

#: Fixed per-message header: message type, ring id, instance id, ballot, CRC.
HEADER_BYTES = 48

#: Memoized UTF-8 byte lengths.  Message sizing encodes the same short,
#: endlessly repeated strings (process names, group ids) on every ring hop;
#: the cache turns that into a dict hit.  Capped so pathological workloads
#: with unbounded distinct strings cannot leak.
_UTF8_LEN_CACHE: dict = {}
_UTF8_LEN_CACHE_MAX = 65536


def utf8_len(text: str) -> int:
    """The UTF-8 encoded length of ``text``, memoized for repeated names."""
    size = _UTF8_LEN_CACHE.get(text)
    if size is None:
        size = len(text.encode("utf-8"))
        if len(_UTF8_LEN_CACHE) < _UTF8_LEN_CACHE_MAX:
            _UTF8_LEN_CACHE[text] = size
    return size


def estimate_size(payload: Any) -> int:
    """Rough wire-size estimate (bytes) of an application payload.

    The estimate only has to be *consistent*, not exact: it drives relative
    bandwidth consumption in the simulator.
    """
    if payload is None:
        return 0
    if isinstance(payload, Value):
        return payload.size_bytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return utf8_len(payload)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 8
    if isinstance(payload, float):
        return 8
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_size(item) for item in payload)
    if isinstance(payload, dict):
        return 8 + sum(estimate_size(k) + estimate_size(v) for k, v in payload.items())
    size = getattr(payload, "size_bytes", None)
    if isinstance(size, int):
        return size
    return 64  # opaque object


class ProtocolMessage:
    """Base class for protocol messages.

    Subclasses are dataclasses; ``size_bytes`` walks their fields and adds
    the sizes of any embedded values so that, for example, a Phase 2A/2B
    message carrying a 32 KB value occupies the ring links accordingly.

    Deliberately a plain class, not a dataclass: subclasses are free to be
    frozen or (for the ring hot-path messages, where the frozen
    ``object.__setattr__`` init cost is measurable per hop) mutable-but-
    treated-immutable, which dataclass inheritance rules would otherwise
    forbid mixing.  The empty ``__slots__`` keeps ``slots=True`` subclasses
    genuinely dict-free.
    """

    __slots__ = ()

    @property
    def size_bytes(self) -> int:
        # ``__dataclass_fields__`` is iterated directly instead of calling
        # :func:`dataclasses.fields`: this property runs once per ring hop
        # for every message and the tuple rebuild is measurable there.
        total = HEADER_BYTES
        for name in self.__dataclass_fields__:
            total += estimate_size(getattr(self, name))
        return total

    @property
    def type_name(self) -> str:
        return type(self).__name__
