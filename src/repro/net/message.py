"""Protocol message envelopes.

Messages exchanged by the protocols are plain dataclasses.  The network model
needs a byte size for each one; :class:`ProtocolMessage` provides a
``size_bytes`` property combining a fixed header with the size of any carried
:class:`~repro.types.Value` payloads, and :func:`estimate_size` estimates the
wire size of arbitrary Python payloads for application-level messages.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

from repro.types import Value

__all__ = ["ProtocolMessage", "estimate_size", "HEADER_BYTES"]

#: Fixed per-message header: message type, ring id, instance id, ballot, CRC.
HEADER_BYTES = 48


def estimate_size(payload: Any) -> int:
    """Rough wire-size estimate (bytes) of an application payload.

    The estimate only has to be *consistent*, not exact: it drives relative
    bandwidth consumption in the simulator.
    """
    if payload is None:
        return 0
    if isinstance(payload, Value):
        return payload.size_bytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 8
    if isinstance(payload, float):
        return 8
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_size(item) for item in payload)
    if isinstance(payload, dict):
        return 8 + sum(estimate_size(k) + estimate_size(v) for k, v in payload.items())
    size = getattr(payload, "size_bytes", None)
    if isinstance(size, int):
        return size
    return 64  # opaque object


@dataclass(frozen=True)
class ProtocolMessage:
    """Base class for protocol messages.

    Subclasses are frozen dataclasses; ``size_bytes`` walks their fields and
    adds the sizes of any embedded values so that, for example, a Phase 2A/2B
    message carrying a 32 KB value occupies the ring links accordingly.
    """

    @property
    def size_bytes(self) -> int:
        total = HEADER_BYTES
        for spec in fields(self):
            total += estimate_size(getattr(self, spec.name))
        return total

    @property
    def type_name(self) -> str:
        return type(self).__name__
