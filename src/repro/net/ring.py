"""The unidirectional ring overlay used by Ring Paxos.

All Ring Paxos traffic flows clockwise around a logical ring of process
names: proposals travel from the proposer to the coordinator, Phase 2A/2B
messages accumulate votes as they pass the acceptors, and decisions continue
around until every member has seen them.  :class:`RingOverlay` is the pure
data structure describing that ring -- Ring Paxos is oblivious to the relative
position of processes in the ring (Section 4), so the overlay just fixes *an*
order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError

__all__ = ["RingOverlay"]


class RingOverlay:
    """An ordered ring of process names with successor/predecessor lookup.

    The overlay is immutable (mutators return new overlays), so positions and
    successors are precomputed once: message forwarding asks for the next
    hop on every ring transit, and a list scan per hop would dominate the
    fan-out path.
    """

    __slots__ = ("_members", "_positions", "_successors")

    def __init__(self, members: Sequence[str]) -> None:
        ordered = list(dict.fromkeys(members))
        if len(ordered) < 1:
            raise ConfigurationError("a ring needs at least one member")
        self._members: List[str] = ordered
        self._positions: Dict[str, int] = {name: i for i, name in enumerate(ordered)}
        size = len(ordered)
        self._successors: Dict[str, str] = {
            name: ordered[(i + 1) % size] for i, name in enumerate(ordered)
        }

    # ------------------------------------------------------------------
    @property
    def members(self) -> List[str]:
        return list(self._members)

    @property
    def size(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._positions

    def __len__(self) -> int:
        return len(self._members)

    def position(self, name: str) -> int:
        try:
            return self._positions[name]
        except KeyError:
            raise ConfigurationError(f"{name!r} is not a member of the ring") from None

    def successor(self, name: str) -> str:
        """The next process clockwise from ``name``."""
        try:
            return self._successors[name]
        except KeyError:
            raise ConfigurationError(f"{name!r} is not a member of the ring") from None

    def predecessor(self, name: str) -> str:
        """The previous process clockwise from ``name``."""
        index = self.position(name)
        return self._members[(index - 1) % len(self._members)]

    def walk_from(self, name: str) -> List[str]:
        """Members in ring order starting after ``name`` and ending at ``name``."""
        index = self.position(name)
        return self._members[index + 1 :] + self._members[: index + 1]

    def distance(self, src: str, dst: str) -> int:
        """Number of hops a message needs to travel clockwise from ``src`` to ``dst``."""
        src_index = self.position(src)
        dst_index = self.position(dst)
        return (dst_index - src_index) % len(self._members)

    def with_member(self, name: str) -> "RingOverlay":
        """A new overlay with ``name`` appended (no-op if already present)."""
        if name in self._members:
            return RingOverlay(self._members)
        return RingOverlay(self._members + [name])

    def without_member(self, name: str) -> "RingOverlay":
        """A new overlay with ``name`` removed."""
        remaining = [member for member in self._members if member != name]
        return RingOverlay(remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingOverlay({' -> '.join(self._members)} -> ...)"
