"""Messaging helpers built on top of the simulated network.

The paper's implementation uses TCP connections arranged in a unidirectional
ring overlay per Ring Paxos instance.  This package provides:

* :mod:`repro.net.message` -- the base envelope for protocol messages with a
  wire-size estimate used by the timing model,
* :mod:`repro.net.ring` -- the ring overlay (successor lookup, membership).
"""

from repro.net.message import ProtocolMessage, estimate_size
from repro.net.ring import RingOverlay

__all__ = ["ProtocolMessage", "estimate_size", "RingOverlay"]
