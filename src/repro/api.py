"""Public entry point: backend- and engine-agnostic atomic multicast.

:class:`AtomicMulticast` is the redesigned front door to the library.  It is
a context-managed deployment builder with two orthogonal choices:

* **backend** -- where the protocol runs: ``backend="sim"`` (default) is the
  deterministic simulator; ``backend="live"`` runs every node as an asyncio
  task with its own TCP server on localhost, every protocol message crossing
  a socket through the versioned codec (the facade runs the event loop on a
  background thread so the synchronous API below works unchanged).
* **engine** -- *which protocol orders the messages*: ``engine="multiring"``
  (default) is the paper's Multi-Ring Paxos; ``engine="whitebox"`` is
  White-Box Atomic Multicast (genuine, no global rings).  Engines implement
  the :class:`~repro.engines.base.OrderingEngine` seam and are resolved from
  the :mod:`repro.engines` registry, so tests and downstream code can plug
  in their own with :func:`repro.engines.register`.

Core surface::

    with AtomicMulticast(seed=1) as am:                  # sim + multiring
        am.ring("ring-1", acceptors=["a1", "a2", "a3"], learners=["L1", "L2"])
        future = am.submit("ring-1", "hello", size_bytes=1024)
        am.run_for(1.0)
        delivery = future.result(timeout=0)              # acked: delivered
        for d in am.deliveries("ring-1"):
            ...

    with AtomicMulticast(engine="whitebox", seed=1) as am:   # same code
        ...

    with AtomicMulticast(backend="live") as am:          # same code, real TCP
        ...

``submit(group, payload)`` returns a :class:`concurrent.futures.Future`
resolved with the :class:`~repro.multiring.merge.Delivery` once the value is
delivered at the group's witness learner (the ack the "zero lost acked
writes" invariant counts).  ``multicast(groups, payload)`` addresses several
groups atomically.  ``deliveries(group)`` returns a stream that can be
iterated synchronously or with ``async for``.

The live backend currently drives the Multi-Ring stack directly (its node
set fixes the TCP topology before the loop starts); engines advertise
:attr:`~repro.engines.base.OrderingEngine.supports_live` and the facade
refuses unsupported combinations up front.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
import warnings
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.config import MultiRingConfig, RingConfig
from repro.errors import ConfigurationError, MulticastError
from repro.runtime.interfaces import StorageMode
from repro.types import GroupId, Value

__all__ = ["AtomicMulticast", "DeliveryStream"]

_BACKENDS = ("sim", "live")


class DeliveryStream:
    """Deliveries of one group at its witness learner, oldest first.

    Iterable synchronously (yields what has been delivered so far; on the
    live backend it keeps blocking up to ``idle_timeout`` for more) and
    asynchronously (``async for`` -- the sim backend advances the simulation
    on demand, the live backend awaits real deliveries).
    """

    def __init__(self, api: "AtomicMulticast", group: GroupId) -> None:
        self._api = api
        self._group = group
        self.items: List[Any] = []
        self._closed = False
        #: Live backend: how long a blocking iteration waits for the next
        #: delivery before concluding the stream is idle.
        self.idle_timeout = 1.0

    # -- producer side (called on the backend's execution context) -------
    def _push(self, delivery: Any) -> None:
        self.items.append(delivery)

    def _close(self) -> None:
        self._closed = True

    # -- sync iteration ----------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        index = 0
        while True:
            while index < len(self.items):
                yield self.items[index]
                index += 1
            if self._api._backend == "sim" or self._closed:
                return
            deadline = time.monotonic() + self.idle_timeout
            while len(self.items) <= index and not self._closed:
                if time.monotonic() > deadline:
                    return
                time.sleep(0.005)

    def __len__(self) -> int:
        return len(self.items)

    # -- async iteration -----------------------------------------------------
    async def __aiter__(self):
        index = 0
        while True:
            while index < len(self.items):
                yield self.items[index]
                index += 1
            if self._closed:
                return
            if self._api._backend == "sim":
                # Advance the simulation until the next delivery materializes.
                self._api.world.start()
                if not self._api.world.sim.step():
                    return
            else:
                await asyncio.sleep(0.005)


class AtomicMulticast:
    """Context-managed, backend- and engine-agnostic atomic multicast."""

    #: How long :meth:`__enter__` waits for the live backend to come up.
    #: A class attribute so tests can shrink it; a failed or timed-out
    #: startup tears the loop thread down before raising -- the constructor
    #: never leaks a running background thread.
    _STARTUP_TIMEOUT = 30.0

    def __init__(
        self,
        *args: str,
        backend: str = "sim",
        engine: str = "multiring",
        seed: int = 0,
        config: Optional[MultiRingConfig] = None,
        topology: Any = None,
        network_config: Any = None,
        default_site: Optional[str] = None,
        trace: bool = False,
        host: str = "127.0.0.1",
        storage_dir: Optional[str] = None,
    ) -> None:
        if args:
            if len(args) > 1 or not isinstance(args[0], str):
                raise TypeError(
                    "AtomicMulticast() takes only keyword arguments "
                    "(backend=..., engine=...)"
                )
            warnings.warn(
                "passing the backend positionally is deprecated; "
                'use AtomicMulticast(backend="sim"/"live", ...)',
                DeprecationWarning,
                stacklevel=2,
            )
            backend = args[0]
        if backend not in _BACKENDS:
            raise ConfigurationError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")

        from repro import engines as engine_registry

        # Unknown engine names raise ConfigurationError listing the registry.
        self.engine = engine_registry.create(engine)
        self._engine_name = engine
        if backend == "live" and not self.engine.supports_live:
            raise ConfigurationError(
                f"engine {engine!r} does not support the live backend; "
                f"engines that do: "
                f"{[n for n in engine_registry.available() if engine_registry.create(n).supports_live]}"
            )

        self._backend = backend
        self.seed = seed
        self.config = config or MultiRingConfig.datacenter()
        self._streams: Dict[GroupId, DeliveryStream] = {}
        self._pending: Dict[int, concurrent.futures.Future] = {}
        self._witness_hooked: Dict[GroupId, str] = {}
        self._entered = False

        if backend == "sim":
            from repro.sim.world import World

            self.world = World(
                topology=topology,
                seed=seed,
                network_config=network_config,
                trace_enabled=trace,
                default_site=default_site,
            )
            self.deployment = self.engine.build(self.world, self.config)
        else:
            if topology is not None or network_config is not None:
                raise ConfigurationError(
                    "topology / network_config model simulated networks; "
                    "the live backend uses the real one"
                )
            self.world = None
            self.deployment = None
            self._host = host
            self._storage_dir = storage_dir
            self._live_specs: List[Any] = []
            self._live = None
            self._proposer_rr: Dict[GroupId, int] = {}
            self._loop: Optional[asyncio.AbstractEventLoop] = None
            self._thread: Optional[threading.Thread] = None
            self._main_task: Optional["asyncio.Task"] = None
            self._ready = threading.Event()
            self._stop_event: Optional[asyncio.Event] = None
            self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # deployment building
    # ------------------------------------------------------------------
    def ring(
        self,
        group: GroupId,
        members: Optional[Sequence[str]] = None,
        *,
        acceptors: Optional[Sequence[str]] = None,
        proposers: Optional[Sequence[str]] = None,
        learners: Optional[Sequence[str]] = None,
        coordinator: Optional[str] = None,
        storage: StorageMode = StorageMode.MEMORY,
        sites: Optional[Dict[str, str]] = None,
        ring_config: Optional[RingConfig] = None,
        multi_group_route: bool = False,
    ) -> None:
        """Declare one multicast group (historically named after the ring).

        ``members`` defaults to ``acceptors + learners`` in that order;
        ``proposers`` defaults to the acceptors.  ``multi_group_route`` marks
        this group's ring as the route for multi-group messages on the
        multiring engine (genuine engines ignore it).  On the live backend
        rings must be declared before entering the context (the node set
        fixes the TCP topology).
        """
        if members is None:
            if acceptors is None:
                raise ConfigurationError("a ring needs members or acceptors")
            members = list(acceptors) + [
                name for name in (learners or []) if name not in set(acceptors)
            ]
        if proposers is None and acceptors is not None:
            proposers = list(acceptors)
        if self._backend == "sim":
            from repro.engines.base import EngineSpec

            options: Dict[str, Any] = {}
            if ring_config is not None:
                options["ring_config"] = ring_config
            if multi_group_route:
                options["multi_group_route"] = True
            self.engine.add_group(
                EngineSpec(
                    group=group,
                    members=list(members),
                    acceptors=list(acceptors) if acceptors is not None else None,
                    proposers=list(proposers) if proposers is not None else None,
                    learners=list(learners) if learners is not None else None,
                    coordinator=coordinator,
                    storage_mode=storage,
                    sites=sites,
                    options=options,
                )
            )
        else:
            if self._entered:
                raise ConfigurationError(
                    "live rings must be declared before entering the context"
                )
            from repro.runtime.live import LiveRingSpec

            self._live_specs.append(
                LiveRingSpec(
                    group=group,
                    members=list(members),
                    acceptors=list(acceptors) if acceptors is not None else None,
                    proposers=list(proposers) if proposers is not None else None,
                    learners=list(learners) if learners is not None else None,
                    coordinator=coordinator,
                    storage_mode=storage,
                )
            )

    # -- service builders (simulator backend) ----------------------------
    def _require_sim(self, what: str):
        if self._backend != "sim":
            raise ConfigurationError(f"{what} is only available on the sim backend (for now)")

    def dlog(self, **kwargs):
        """Build a dLog service deployment (sim backend)."""
        self._require_sim("dlog()")
        from repro.services.dlog import DLog

        return DLog(self.world, config=kwargs.pop("config", self.config), **kwargs)

    def mrpstore(self, **kwargs):
        """Build an MRP-Store deployment (sim backend)."""
        self._require_sim("mrpstore()")
        from repro.services.mrpstore import MRPStore

        return MRPStore(self.world, config=kwargs.pop("config", self.config), **kwargs)

    def client(self, name: str, workload, frontends, **kwargs):
        """Attach a closed-loop client machine (sim backend)."""
        self._require_sim("client()")
        from repro.smr.client import ClosedLoopClient

        return ClosedLoopClient(self.world, name, workload, frontends, **kwargs)

    def inject_failures(self, schedule):
        """Arm a failure schedule (sim backend chaos hook)."""
        self._require_sim("inject_failures()")
        from repro.sim.failure import FailureInjector

        injector = FailureInjector(self.world, schedule)
        injector.arm()
        return injector

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "AtomicMulticast":
        self._entered = True
        if self._backend == "sim":
            return self
        if not self._live_specs:
            raise ConfigurationError("declare at least one ring before entering live mode")
        self._thread = threading.Thread(
            target=self._live_thread_main, name="repro-live", daemon=True
        )
        self._thread.start()
        ready = self._ready.wait(timeout=self._STARTUP_TIMEOUT)
        if self._startup_error is not None:
            self._abort_live()
            raise self._startup_error
        if not ready or self._live is None:
            self._abort_live()
            raise ConfigurationError(
                f"live backend failed to start within {self._STARTUP_TIMEOUT:g}s"
            )
        return self

    def __exit__(self, *exc_info) -> None:
        if self._backend == "sim":
            return
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=self._STARTUP_TIMEOUT)
            if self._thread.is_alive():
                # Graceful stop stalled (e.g. a wedged shutdown path): cancel
                # the loop's main task rather than abandon the thread.
                self._cancel_live_task()
                self._thread.join(timeout=5.0)
            self._thread = None
        for stream in self._streams.values():
            stream._close()

    def _abort_live(self) -> None:
        """Tear down a live loop thread after a failed startup.

        Called before ``__enter__`` re-raises, so a constructor/startup
        failure never leaks a running background thread: the main task is
        cancelled (which unwinds a deployment wedged mid-``__aenter__``) and
        the thread joined.
        """
        self._cancel_live_task()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None

    def _cancel_live_task(self) -> None:
        loop, task = self._loop, self._main_task
        if loop is None or task is None:
            return
        try:
            loop.call_soon_threadsafe(task.cancel)
        except RuntimeError:
            pass  # loop already closed

    def _live_thread_main(self) -> None:
        try:
            asyncio.run(self._live_main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            if self._startup_error is None:
                self._startup_error = exc
            self._ready.set()

    async def _live_main(self) -> None:
        from repro.runtime.live import LiveDeployment

        self._loop = asyncio.get_running_loop()
        self._main_task = asyncio.current_task()
        self._stop_event = asyncio.Event()
        deployment = LiveDeployment(
            self._live_specs,
            config=self.config,
            host=self._host,
            seed=self.seed,
            storage_dir=self._storage_dir,
            record_deliveries=False,
        )
        async with deployment:
            self._live = deployment
            # Hook every ring's witness learner while on the loop thread.
            for spec in self._live_specs:
                self._hook_witness(spec.group)
            self._ready.set()
            await self._stop_event.wait()

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def _ring_descriptor(self, group: GroupId):
        if self._backend == "sim":
            return self.engine.descriptor(group)
        if self._live is None:
            raise ConfigurationError("enter the live context before submitting traffic")
        for live in self._live.nodes.values():
            if live.registry.has_ring(group):
                return live.registry.ring(group)
        raise MulticastError(f"unknown group {group!r}")

    def _witness_of(self, group: GroupId) -> str:
        descriptor = self._ring_descriptor(group)
        if not descriptor.learners:
            raise MulticastError(f"group {group!r} has no learners to ack deliveries")
        return descriptor.learners[0]

    def _node(self, name: str):
        if self._backend == "sim":
            return self.engine.node(name)
        return self._live.node(name).node

    def node(self, name: str):
        """The engine's protocol node object named ``name``."""
        if self._backend == "live" and self._live is None:
            raise ConfigurationError("enter the context before accessing live nodes")
        return self._node(name)

    def coordinator_of(self, group: GroupId):
        """The node currently coordinating (leading) ``group``."""
        return self.node(self._ring_descriptor(group).coordinator)

    def _hook_witness(self, group: GroupId) -> None:
        if group in self._witness_hooked:
            return
        stream = self._streams.setdefault(group, DeliveryStream(self, group))
        callback = lambda d: self._on_witness_delivery(stream, d)  # noqa: E731
        if self._backend == "sim":
            self._witness_hooked[group] = self.engine.on_deliver(group, callback)
        else:
            witness = self._witness_of(group)
            self._live.node(witness).node.on_deliver(callback, group=group)
            self._witness_hooked[group] = witness

    def _on_witness_delivery(self, stream: DeliveryStream, delivery) -> None:
        stream._push(delivery)
        future = self._pending.pop(delivery.value.uid, None)
        if future is not None and not future.done():
            future.set_result(delivery)

    def submit(
        self, group: GroupId, payload: Any, size_bytes: Optional[int] = None
    ) -> "concurrent.futures.Future":
        """Atomically multicast ``payload`` to ``group``.

        Returns a future resolved with the :class:`Delivery` once the value
        is delivered at the group's witness learner.  On the sim backend the
        future resolves while :meth:`run` advances virtual time; on the live
        backend it resolves from the node's event loop and can be awaited
        with ``future.result(timeout=...)``.
        """
        if size_bytes is None:
            from repro.net.message import estimate_size

            size_bytes = estimate_size(payload)
        self._hook_witness(group)
        future: concurrent.futures.Future = concurrent.futures.Future()
        if self._backend == "sim":
            value = self.engine.submit(group, payload, size_bytes)
            self._pending[value.uid] = future
        else:
            descriptor = self._ring_descriptor(group)
            proposers = descriptor.proposers or descriptor.acceptors
            index = self._proposer_rr.get(group, 0)
            self._proposer_rr[group] = index + 1
            proposer = proposers[index % len(proposers)]
            live = self._live.node(proposer)
            value = Value.create(
                payload, size_bytes, proposer=proposer, created_at=live.runtime.now
            )
            self._pending[value.uid] = future
            self._loop.call_soon_threadsafe(
                live.runtime.sim.post, live.node.propose_value, group, value
            )
        return future

    def multicast(
        self,
        groups: Sequence[GroupId],
        payload: Any,
        size_bytes: Optional[int] = None,
    ) -> "concurrent.futures.Future":
        """Atomically multicast ``payload`` to every group in ``groups``.

        The future resolves at the first witness delivery (any destination);
        per-group streams via :meth:`deliveries` see every delivery.  Only
        the sim backend supports multi-group addressing today.
        """
        self._require_sim("multicast()")
        dests = tuple(groups)
        if not dests:
            raise MulticastError("multicast() needs at least one destination group")
        if size_bytes is None:
            from repro.net.message import estimate_size

            size_bytes = estimate_size(payload)
        for group in dests:
            self._hook_witness(group)
        future: concurrent.futures.Future = concurrent.futures.Future()
        value = self.engine.multicast(dests, payload, size_bytes)
        self._pending[value.uid] = future
        return future

    def deliveries(self, group: GroupId) -> DeliveryStream:
        """The group's delivery stream at its witness learner (see class doc)."""
        self._hook_witness(group)
        return self._streams[group]

    def workload(
        self,
        group: GroupId,
        schedule=None,
        *,
        replay=None,
        key_space: int = 10_000,
        users: int = 1_000_000,
        seed: Optional[int] = None,
        op: str = "append",
        size_bytes: int = 512,
        record: bool = False,
    ):
        """Open-loop arrival-sampled traffic against ``group``, either backend.

        Pass either a :class:`~repro.workloads.engine.PhaseSchedule`
        (``schedule=``) to sample a fresh Poisson/Zipf arrival stream, or a
        recorded :class:`~repro.workloads.engine.WorkloadTrace` (``replay=``)
        to reproduce a captured storm byte-for-byte -- e.g. one recorded on
        the sim backend, replayed over real TCP.  Returns a
        :class:`~repro.workloads.engine.FacadeWorkloadManager`
        (start / stop / collect / recent_entries); completions resolve at the
        group's witness learner, and latency is measured from the *intended*
        arrival instant (no coordinated omission).  ``record=True`` captures
        the submitted stream on ``manager.trace`` for later replay.
        """
        from repro.workloads.engine import FacadeWorkloadManager, OpenLoopSampler

        if (schedule is None) == (replay is None):
            raise ConfigurationError("pass exactly one of schedule= or replay=")
        if replay is not None:
            events = list(replay)
        else:
            sampler = OpenLoopSampler(
                schedule,
                key_space=key_space,
                users=users,
                seed=self.seed if seed is None else seed,
                op=op,
                size_bytes=size_bytes,
            )
            events = list(sampler.events())
        return FacadeWorkloadManager(self, group, events, record=record)

    # ------------------------------------------------------------------
    # execution / time
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Advance the deployment: virtual time (sim) or wall-clock sleep (live)."""
        if self._backend == "sim":
            return self.world.run(until=until)
        if until is None:
            raise ConfigurationError("live run() needs an explicit horizon; use run_for")
        remaining = until - self.now
        if remaining > 0:
            time.sleep(remaining)
        return self.now

    def run_for(self, duration: float) -> float:
        if self._backend == "sim":
            return self.world.run_for(duration)
        time.sleep(max(0.0, duration))
        return self.now

    @property
    def now(self) -> float:
        if self._backend == "sim":
            return self.world.now
        if self._live is None:
            return 0.0
        first = next(iter(self._live.nodes.values()))
        return first.runtime.now

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def engine_name(self) -> str:
        """The registered name of the ordering engine in use."""
        return self._engine_name

    def engine_stats(self) -> Dict[str, Any]:
        """The ordering engine's counters (see :meth:`OrderingEngine.stats`)."""
        self._require_sim("engine_stats()")
        return self.engine.stats()

    @property
    def monitor(self):
        """The metric monitor (sim backend)."""
        self._require_sim("monitor")
        return self.world.monitor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicMulticast(backend={self._backend!r}, engine={self._engine_name!r})"
