"""Shared value types used across the library.

The central abstraction is :class:`Value` -- the unit proposed to consensus,
multicast to a group, and delivered to learners.  Real deployments carry byte
arrays; the simulator carries an opaque ``payload`` plus an explicit
``size_bytes`` that drives the network, disk and CPU models.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

__all__ = [
    "Value",
    "ValueBatch",
    "skip_value",
    "batch_values",
    "unpack_value",
    "is_batch",
    "GroupId",
    "InstanceId",
    "RingPosition",
]

#: Multicast-group identifier (the paper uses small integers; strings read better).
GroupId = str

#: Consensus-instance number inside one ring, starting at 0.
InstanceId = int

#: Index of a process in the ring order.
RingPosition = int

_value_counter = itertools.count(1)


@dataclass(slots=True)
class Value:
    """A proposed/decided value.

    ``uid`` is globally unique, assigned at creation time.  ``is_skip`` marks
    the null values coordinators propose to skip consensus instances for rate
    leveling (Section 4).  ``trace`` is the sampled causal-trace id (see
    :mod:`repro.obs.tracing`); ``None`` -- the overwhelmingly common case --
    adds nothing to the wire.  Slotted and non-frozen (values are the
    most-created and most-touched objects in the whole simulator; the frozen
    ``object.__setattr__`` init cost is measurable), but treated as
    immutable everywhere -- nothing may mutate a value after creation.
    """

    uid: int
    payload: Any
    size_bytes: int
    proposer: Optional[str] = None
    created_at: float = 0.0
    is_skip: bool = False
    trace: Optional[str] = None

    @classmethod
    def create(
        cls,
        payload: Any,
        size_bytes: int,
        proposer: Optional[str] = None,
        created_at: float = 0.0,
        trace: Optional[str] = None,
    ) -> "Value":
        return cls(
            uid=next(_value_counter),
            payload=payload,
            size_bytes=max(0, int(size_bytes)),
            proposer=proposer,
            created_at=created_at,
            trace=trace,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "skip" if self.is_skip else "value"
        return f"Value(uid={self.uid}, {kind}, {self.size_bytes}B, from={self.proposer})"


def skip_value(created_at: float = 0.0, proposer: Optional[str] = None) -> Value:
    """Create a null (skip) value used by rate leveling."""
    return Value(
        uid=next(_value_counter),
        payload=None,
        size_bytes=0,
        proposer=proposer,
        created_at=created_at,
        is_skip=True,
    )


#: Serialization overhead per value packed into a batch (framing, length prefix).
BATCH_HEADER_BYTES = 16


@dataclass(frozen=True, slots=True)
class ValueBatch:
    """Several application values packed into one consensus value.

    The coordinator amortizes per-instance protocol cost (one Phase 2
    circulation, one acceptor log write, one decision) over every value in
    the batch.  Learners unpack the batch and deliver the inner values in
    packing order, so the delivery sequence is exactly the one the unbatched
    protocol would produce for the same coordinator arrival order.
    """

    values: Tuple[Value, ...]

    @property
    def size_bytes(self) -> int:
        return sum(v.size_bytes for v in self.values) + BATCH_HEADER_BYTES * len(self.values)

    def __len__(self) -> int:
        return len(self.values)


def batch_values(
    values: Tuple[Value, ...],
    proposer: Optional[str] = None,
    created_at: float = 0.0,
) -> Value:
    """Pack ``values`` into a single batch :class:`Value`.

    ``created_at`` stamps the envelope; the inner values keep their own
    creation times so end-to-end latency measurements include queueing delay
    in the batcher.
    """
    batch = ValueBatch(values=tuple(values))
    return Value(
        uid=next(_value_counter),
        payload=batch,
        size_bytes=batch.size_bytes,
        proposer=proposer,
        created_at=created_at,
    )


def is_batch(value: Value) -> bool:
    """True when ``value`` is a coordinator-side batch envelope."""
    return isinstance(value.payload, ValueBatch)


def unpack_value(value: Value) -> Tuple[Value, ...]:
    """The application values carried by ``value`` (itself, unless batched)."""
    if isinstance(value.payload, ValueBatch):
        return value.payload.values
    return (value,)
