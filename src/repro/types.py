"""Shared value types used across the library.

The central abstraction is :class:`Value` -- the unit proposed to consensus,
multicast to a group, and delivered to learners.  Real deployments carry byte
arrays; the simulator carries an opaque ``payload`` plus an explicit
``size_bytes`` that drives the network, disk and CPU models.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

__all__ = ["Value", "skip_value", "GroupId", "InstanceId", "RingPosition"]

#: Multicast-group identifier (the paper uses small integers; strings read better).
GroupId = str

#: Consensus-instance number inside one ring, starting at 0.
InstanceId = int

#: Index of a process in the ring order.
RingPosition = int

_value_counter = itertools.count(1)


@dataclass(frozen=True)
class Value:
    """A proposed/decided value.

    ``uid`` is globally unique, assigned at creation time.  ``is_skip`` marks
    the null values coordinators propose to skip consensus instances for rate
    leveling (Section 4).
    """

    uid: int
    payload: Any
    size_bytes: int
    proposer: Optional[str] = None
    created_at: float = 0.0
    is_skip: bool = False

    @classmethod
    def create(
        cls,
        payload: Any,
        size_bytes: int,
        proposer: Optional[str] = None,
        created_at: float = 0.0,
    ) -> "Value":
        return cls(
            uid=next(_value_counter),
            payload=payload,
            size_bytes=max(0, int(size_bytes)),
            proposer=proposer,
            created_at=created_at,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "skip" if self.is_skip else "value"
        return f"Value(uid={self.uid}, {kind}, {self.size_bytes}B, from={self.proposer})"


def skip_value(created_at: float = 0.0, proposer: Optional[str] = None) -> Value:
    """Create a null (skip) value used by rate leveling."""
    return Value(
        uid=next(_value_counter),
        payload=None,
        size_bytes=0,
        proposer=proposer,
        created_at=created_at,
        is_skip=True,
    )
