"""The narrow interfaces the protocol stack needs from a runtime.

These protocols were extracted from the call surface the protocol packages
actually exercise, so the simulator classes satisfy them *structurally* --
:class:`~repro.sim.engine.Simulator` is a :class:`Clock`,
:class:`~repro.sim.network.Network` is a :class:`Transport`,
:class:`~repro.sim.disk.Disk` is a :class:`StableStore` and
:class:`~repro.sim.world.World` is a :class:`Runtime`.  The hot paths keep
calling concrete methods directly (duck typing costs nothing per call); the
protocols exist so that a second backend -- :mod:`repro.runtime.live` -- can
slot in underneath the unchanged protocol stack, and so the dependency
direction is explicit: protocol code imports *this* module, never a backend.

Two deliberately exposed conventions are part of the contract:

* ``Clock`` implementations expose the calendar-queue attributes ``_now``,
  ``_queue`` and ``_seq``: the PR-4 fast paths (``RingHost.after_cpu``,
  ``AcceptorStorage._persist``) push ``(time, seq, callback, args)`` entries
  straight onto the heap, and both backends share that representation (the
  live clock pumps the same heap against the wall clock).
* ``Transport.send`` guarantees FIFO delivery per ordered ``(src, dst)``
  pair, matching TCP -- the ring protocol relies on it.
"""

from __future__ import annotations

import enum
from typing import (
    Any,
    Callable,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)

__all__ = [
    "StorageMode",
    "CancelHandle",
    "Clock",
    "Transport",
    "StableStore",
    "Runtime",
]


class StorageMode(str, enum.Enum):
    """The five acceptor storage modes evaluated in the paper.

    Lives in the runtime layer (not the simulator) because it is
    *configuration*: both backends map a mode to their own device -- the
    simulator to a timing-model :class:`~repro.sim.disk.Disk`, the live
    backend to a real append log (or nothing for ``MEMORY``).
    """

    MEMORY = "memory"
    ASYNC_HDD = "async-hdd"
    ASYNC_SSD = "async-ssd"
    SYNC_HDD = "sync-hdd"
    SYNC_SSD = "sync-ssd"

    @property
    def synchronous(self) -> bool:
        return self in (StorageMode.SYNC_HDD, StorageMode.SYNC_SSD)

    @property
    def durable(self) -> bool:
        return self is not StorageMode.MEMORY

    @property
    def label(self) -> str:
        return {
            StorageMode.MEMORY: "In Memory",
            StorageMode.ASYNC_HDD: "Async Disk",
            StorageMode.ASYNC_SSD: "Async Disk (SSD)",
            StorageMode.SYNC_HDD: "Sync Disk",
            StorageMode.SYNC_SSD: "Sync Disk (SSD)",
        }[self]


@runtime_checkable
class CancelHandle(Protocol):
    """Handle for a scheduled callback that may be cancelled (idempotent)."""

    def cancel(self) -> None: ...


@runtime_checkable
class Clock(Protocol):
    """Time source and scheduler.

    ``call_at`` / ``call_later`` are the fire-and-forget fast paths (no
    cancellation handle); ``schedule`` / ``schedule_at`` return a
    :class:`CancelHandle` for timers.  The clock owns the calendar-queue
    attributes documented in the module docstring.
    """

    @property
    def now(self) -> float: ...

    def call_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None: ...

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> None: ...

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> CancelHandle: ...

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> CancelHandle: ...


@runtime_checkable
class Transport(Protocol):
    """FIFO-per-channel message delivery between named processes.

    ``size_bytes`` drives the backend's cost model (sim: NIC serialization
    and propagation; live: nothing -- the real network charges for itself).
    """

    def attach(self, process: Any, site: str) -> None: ...

    def detach(self, name: str) -> None: ...

    def send(self, src: str, dst: str, payload: Any, size_bytes: int) -> None: ...

    def link_faulted(self, src: str, dst: str) -> bool: ...


@runtime_checkable
class StableStore(Protocol):
    """The sync/async durable-write surface behind :mod:`repro.paxos.storage`.

    ``write`` returns once-durable completion time; ``write_async`` returns
    the time at which the *caller* may proceed (write-back semantics).  Both
    invoke ``callback(*callback_args)`` through the clock, never inline.
    """

    def write(
        self,
        nbytes: int,
        callback: Optional[Callable[..., None]] = None,
        callback_args: tuple = (),
    ) -> float: ...

    def write_async(
        self,
        nbytes: int,
        callback: Optional[Callable[..., None]] = None,
        callback_args: tuple = (),
    ) -> float: ...

    def read(self, nbytes: int, callback: Optional[Callable[[], None]] = None) -> float: ...


@runtime_checkable
class Runtime(Protocol):
    """The facade a deployment hands to every process.

    Bundles the clock (``.sim`` -- the attribute keeps its historical name,
    it is the one piece of wiring every hot path already binds), the
    transport (``.network``), the metric monitor, deterministic random
    streams and the trace buffer, plus the process registry and the
    spawn/crash hooks the failure machinery uses.

    Runtimes may additionally carry an ``obs`` attribute -- the
    :class:`repro.obs.Observability` bundle (causal tracer + metrics
    registry).  It is deliberately not required here: legacy runtimes get a
    disabled default through :func:`repro.obs.obs_of`.
    """

    # Backends expose their Clock as `.sim` and Transport as `.network`.
    sim: Any
    network: Any
    monitor: Any
    rng: Any
    trace: Any
    default_site: str

    @property
    def now(self) -> float: ...

    # -- process registry / spawn hooks ---------------------------------
    def register(self, process: Any, site: str) -> None: ...

    def process(self, name: str) -> Any: ...

    def get_process(self, name: str) -> Optional[Any]: ...

    def has_process(self, name: str) -> bool: ...

    def processes(self) -> List[Any]: ...

    def start(self) -> None: ...

    @property
    def started(self) -> bool: ...

    # -- storage factory -------------------------------------------------
    def new_store(self, mode: StorageMode) -> Optional[Any]: ...
