"""Versioned binary codec for the protocol wire types.

The live backend sends every protocol message over TCP; this module turns
the slotted wire dataclasses of :mod:`repro.ringpaxos.messages`,
:mod:`repro.recovery.messages`, :mod:`repro.reconfig.commands`,
:mod:`repro.smr.command` and the core value types into length-prefixed
frames and back.

Design:

* **Tagged values.**  Every encoded value starts with a one-byte type tag:
  primitives (``None``, booleans, 64-bit ints, big ints, doubles, UTF-8
  strings, bytes), containers (tuple, list, dict, set, frozenset) and
  registered dataclasses (a two-byte class id followed by the fields in
  declaration order).  Arbitrary Python objects are rejected -- the wire
  format is closed over the registered types, which is what makes it
  versionable.
* **Byte stability.**  Encoding is a pure function of the value: sets are
  encoded in sorted order and string-keyed dicts in sorted key order, so the
  same message always encodes to the same bytes regardless of hash
  randomization or insertion order.  The property tests assert
  ``encode(decode(encode(m))) == encode(m)`` for every wire type.
* **Versioned frames.**  A frame is ``!I`` length prefix + one version byte
  + body.  Decoders reject frames from a different codec version loudly
  (``CodecError``) instead of mis-parsing them; bumping ``CODEC_VERSION``
  is the upgrade path when a wire dataclass changes shape.

The class-id table below is append-only: ids are never reused, and new wire
types take fresh ids, so two builds sharing a version byte agree on every id.
"""

from __future__ import annotations

import struct
from dataclasses import fields, is_dataclass
from typing import Any, Dict, Tuple, Type

from repro.errors import ReproError

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "WIRE_TYPES",
    "encode_value",
    "decode_value",
    "encode_frame",
    "decode_frame",
    "frame_message",
    "iter_frames",
]

#: Bump when the encoding of any registered type changes incompatibly.
#: v2: ``Value`` gained a ``trace`` field and ``Phase2``/``Decision`` gained
#: optional trace timestamps (causal tracing, :mod:`repro.obs`).
CODEC_VERSION = 2

#: Refuse to parse frames beyond this size (corrupt length prefix guard).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class CodecError(ReproError):
    """Raised for unencodable values, unknown tags and version mismatches."""


# ----------------------------------------------------------------------
# registered wire dataclasses (append-only id table)
# ----------------------------------------------------------------------
def _wire_types() -> Dict[int, Type]:
    # Imported here (not at module top) to keep the runtime layer free of
    # static protocol-package dependencies; the table is built once.
    from repro.paxos.types import Ballot
    from repro.recovery.checkpoint import Checkpoint
    from repro.recovery.messages import (
        CheckpointData,
        CheckpointFetch,
        CheckpointInfo,
        CheckpointQuery,
        TrimCommand,
        TrimQuery,
        TrimReply,
    )
    from repro.reconfig.commands import (
        ForwardedCommand,
        MigrationInstall,
        MigrationPrepare,
        ProposeControl,
        SpliceRing,
    )
    from repro.ringpaxos.messages import (
        Decision,
        Phase2,
        Proposal,
        RetransmitReply,
        RetransmitRequest,
    )
    from repro.engines.whitebox import (
        WbAccept,
        WbAccepted,
        WbCommit,
        WbSubmit,
        WbTimestamp,
    )
    from repro.smr.command import Command, CommandBatch, Response, SubmitCommand
    from repro.types import Value, ValueBatch

    return {
        # core value types
        1: Value,
        2: ValueBatch,
        3: Ballot,
        # ring paxos
        10: Proposal,
        11: Phase2,
        12: Decision,
        13: RetransmitRequest,
        14: RetransmitReply,
        # smr / client traffic
        20: Command,
        21: CommandBatch,
        22: SubmitCommand,
        23: Response,
        # recovery
        30: CheckpointQuery,
        31: CheckpointInfo,
        32: CheckpointFetch,
        33: CheckpointData,
        34: TrimQuery,
        35: TrimReply,
        36: TrimCommand,
        37: Checkpoint,
        # reconfiguration control payloads
        40: SpliceRing,
        41: MigrationPrepare,
        42: MigrationInstall,
        43: ForwardedCommand,
        44: ProposeControl,
        # white-box atomic multicast (engine #2)
        50: WbSubmit,
        51: WbAccept,
        52: WbAccepted,
        53: WbTimestamp,
        54: WbCommit,
    }


_BY_ID: Dict[int, Type] = {}
_BY_CLS: Dict[Type, int] = {}
_FIELDS: Dict[Type, Tuple[str, ...]] = {}


def _ensure_registry() -> None:
    if _BY_ID:
        return
    table = _wire_types()
    for class_id, cls in table.items():
        _BY_ID[class_id] = cls
        _BY_CLS[cls] = class_id
        _FIELDS[cls] = tuple(f.name for f in fields(cls))


def WIRE_TYPES() -> Dict[int, Type]:
    """The registered ``class id -> dataclass`` table (for tests and tools)."""
    _ensure_registry()
    return dict(_BY_ID)


# ----------------------------------------------------------------------
# value encoding
# ----------------------------------------------------------------------
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT64 = 0x03
_T_BIGINT = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_TUPLE = 0x08
_T_LIST = 0x09
_T_DICT = 0x0A
_T_SET = 0x0B
_T_FROZENSET = 0x0C
_T_DATACLASS = 0x0D

_pack_q = struct.Struct("!q").pack
_pack_d = struct.Struct("!d").pack
_pack_I = struct.Struct("!I").pack
_pack_H = struct.Struct("!H").pack
_unpack_q = struct.Struct("!q").unpack_from
_unpack_d = struct.Struct("!d").unpack_from
_unpack_I = struct.Struct("!I").unpack_from
_unpack_H = struct.Struct("!H").unpack_from

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif type(value) is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(_T_INT64)
            out += _pack_q(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            out.append(_T_BIGINT)
            out += _pack_I(len(raw))
            out += raw
    elif type(value) is float:
        out.append(_T_FLOAT)
        out += _pack_d(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _pack_I(len(raw))
        out += raw
    elif type(value) is bytes or type(value) is bytearray:
        out.append(_T_BYTES)
        out += _pack_I(len(value))
        out += value
    elif type(value) is tuple:
        out.append(_T_TUPLE)
        out += _pack_I(len(value))
        for item in value:
            _encode_into(out, item)
    elif type(value) is list:
        out.append(_T_LIST)
        out += _pack_I(len(value))
        for item in value:
            _encode_into(out, item)
    elif type(value) is dict:
        out.append(_T_DICT)
        out += _pack_I(len(value))
        items = value.items()
        if all(type(k) is str for k in value):
            # Sorted for byte stability (wire dicts are string-keyed).
            items = sorted(items)
        for key, item in items:
            _encode_into(out, key)
            _encode_into(out, item)
    elif type(value) is set or type(value) is frozenset:
        out.append(_T_SET if type(value) is set else _T_FROZENSET)
        encoded = sorted(_encode_value_bytes(item) for item in value)
        out += _pack_I(len(encoded))
        for raw in encoded:
            out += raw
    else:
        cls = type(value)
        class_id = _BY_CLS.get(cls)
        if class_id is None:
            raise CodecError(
                f"cannot encode {cls.__module__}.{cls.__qualname__}: not a registered wire type"
            )
        out.append(_T_DATACLASS)
        out += _pack_H(class_id)
        for name in _FIELDS[cls]:
            _encode_into(out, getattr(value, name))


def _encode_value_bytes(value: Any) -> bytes:
    buf = bytearray()
    _encode_into(buf, value)
    return bytes(buf)


def encode_value(value: Any) -> bytes:
    """Encode one value (a wire dataclass, primitive or container) to bytes."""
    _ensure_registry()
    return _encode_value_bytes(value)


def _decode_from(data: bytes, offset: int) -> Tuple[Any, int]:
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT64:
        return _unpack_q(data, offset)[0], offset + 8
    if tag == _T_BIGINT:
        (length,) = _unpack_I(data, offset)
        offset += 4
        return int.from_bytes(data[offset : offset + length], "big", signed=True), offset + length
    if tag == _T_FLOAT:
        return _unpack_d(data, offset)[0], offset + 8
    if tag == _T_STR:
        (length,) = _unpack_I(data, offset)
        offset += 4
        return data[offset : offset + length].decode("utf-8"), offset + length
    if tag == _T_BYTES:
        (length,) = _unpack_I(data, offset)
        offset += 4
        return bytes(data[offset : offset + length]), offset + length
    if tag == _T_TUPLE or tag == _T_LIST:
        (count,) = _unpack_I(data, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), offset
    if tag == _T_DICT:
        (count,) = _unpack_I(data, offset)
        offset += 4
        result = {}
        for _ in range(count):
            key, offset = _decode_from(data, offset)
            item, offset = _decode_from(data, offset)
            result[key] = item
        return result, offset
    if tag == _T_SET or tag == _T_FROZENSET:
        (count,) = _unpack_I(data, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return (set(items) if tag == _T_SET else frozenset(items)), offset
    if tag == _T_DATACLASS:
        (class_id,) = _unpack_H(data, offset)
        offset += 2
        cls = _BY_ID.get(class_id)
        if cls is None:
            raise CodecError(f"unknown wire class id {class_id}")
        values = []
        for _ in _FIELDS[cls]:
            item, offset = _decode_from(data, offset)
            values.append(item)
        return cls(*values), offset
    raise CodecError(f"unknown value tag 0x{tag:02x} at offset {offset - 1}")


def decode_value(data: bytes) -> Any:
    """Decode one value produced by :func:`encode_value` (must consume all bytes)."""
    _ensure_registry()
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise CodecError(f"trailing garbage after value: {len(data) - offset} bytes")
    return value


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(body: bytes) -> bytes:
    """Wrap ``body`` in a length prefix and the codec version byte."""
    return _pack_I(len(body) + 1) + bytes([CODEC_VERSION]) + body


def decode_frame(data, offset: int = 0) -> Tuple[bytes, int]:
    """Extract one frame from ``data`` starting at ``offset``.

    Returns ``(body, consumed)``; ``(b"", 0)`` when ``data`` does not yet
    hold a complete frame.  The length prefix covers version byte + body --
    the *encoded length contract* the framing tests pin down.  ``data`` may
    be ``bytes`` or a ``bytearray`` (the receive buffer); only the body is
    copied out.
    """
    if len(data) - offset < 4:
        return b"", 0
    (length,) = _unpack_I(data, offset)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
    if length < 1:
        raise CodecError("empty frame (missing version byte)")
    if len(data) - offset < 4 + length:
        return b"", 0
    version = data[offset + 4]
    if version != CODEC_VERSION:
        raise CodecError(
            f"codec version mismatch: peer speaks v{version}, this build speaks v{CODEC_VERSION}"
        )
    return bytes(data[offset + 5 : offset + 4 + length]), 4 + length


def frame_message(src: str, dst: str, payload: Any) -> bytes:
    """Encode one transport message (sender, receiver, payload) as a frame."""
    return encode_frame(encode_value((src, dst, payload)))


def iter_frames(buffer: bytearray):
    """Yield ``(src, dst, payload)`` for every complete frame in ``buffer``.

    Consumed bytes are removed from ``buffer`` in place; a trailing partial
    frame is left for the next read.  Frames are parsed at an advancing
    offset and the buffer trimmed once per call (a 64 KiB read full of
    small frames would otherwise recopy the whole buffer per frame).
    """
    offset = 0
    try:
        while True:
            body, consumed = decode_frame(buffer, offset)
            if not consumed:
                return
            offset += consumed
            value = decode_value(body)
            if not (isinstance(value, tuple) and len(value) == 3):
                raise CodecError("malformed transport frame: expected (src, dst, payload)")
            yield value
    finally:
        if offset:
            del buffer[:offset]


def is_registered(value: Any) -> bool:
    """True when ``value``'s type is a registered wire dataclass."""
    _ensure_registry()
    return is_dataclass(value) and type(value) in _BY_CLS
