"""Live runtime backend: asyncio tasks over real localhost TCP.

This is the second implementation of the runtime protocols
(:mod:`repro.runtime.interfaces`).  Where the simulator runs the whole
deployment inside one virtual clock, the live backend runs **each node as an
asyncio task set** -- a clock pump, a TCP server, and one writer task per
peer connection -- and ships every protocol message through the versioned
:mod:`repro.runtime.codec` over length-prefixed TCP.  The protocol stack
(:class:`~repro.multiring.node.MultiRingNode` and everything beneath it)
runs **unchanged**.

Key pieces:

* :class:`LiveClock` -- a wall-clock pacer sharing the simulator's calendar
  queue contract (``_now`` / ``_queue`` / ``_seq``), so the PR-4 fast paths
  that push heap entries directly keep working.  An asyncio pump executes
  due events and sleeps until the next deadline.
* :class:`LiveTransport` -- FIFO-per-channel messaging: local processes are
  delivered through the clock, remote ones through one ordered TCP stream
  per peer (one writer task each, mirroring the paper's per-ring TCP
  connections).
* :class:`LiveNodeRuntime` -- the per-node :class:`Runtime`: clock +
  transport + monitor/rng/trace + the process registry.  Remote ring members
  appear as always-alive :class:`RemotePeer` stubs (live failure detection
  is an open item; see ROADMAP).
* :class:`LiveFileStore` -- a real append log behind the
  :class:`~repro.runtime.interfaces.StableStore` surface (``fsync`` for the
  synchronous modes).  Record *content* persistence/recovery in live mode is
  an open item; the store provides real durability timing and accounting.
* :class:`LiveDeployment` -- builds an N-node deployment in one OS process
  (every node still talks TCP to every other through its own server socket;
  ports are ephemeral, so parallel runs never collide).  One node per OS
  process is the documented open item on the ROADMAP.
"""

from __future__ import annotations

import asyncio
import heapq
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.config import MultiRingConfig, RingConfig
from repro.coordination.registry import Registry
from repro.errors import ConfigurationError, NetworkError
from repro.multiring.node import MultiRingNode
from repro.obs import Observability
from repro.obs.http import ObsHTTPServer
from repro.obs.metrics import Histogram
from repro.runtime.codec import frame_message, iter_frames
from repro.runtime.cpu import CPUConfig
from repro.runtime.interfaces import StorageMode
from repro.sim.engine import Simulator
from repro.sim.monitor import Monitor
from repro.sim.random import RandomStreams
from repro.sim.trace import Trace

__all__ = [
    "LiveClock",
    "LiveTransport",
    "LiveNodeRuntime",
    "LiveFileStore",
    "RemotePeer",
    "LiveRingSpec",
    "LiveDeployment",
]

#: How many due events the clock pump executes before yielding to the event
#: loop so socket reads/writes make progress under bursty load.
_PUMP_BATCH = 512

#: Sentinel closing a peer writer task.
_CLOSE = object()


class LiveClock(Simulator):
    """Wall-clock event pacer sharing the simulator's scheduling contract.

    Inherits the calendar queue, the FIFO tie-break, tombstone cancellation
    and the ``call_at``/``call_later``/``schedule`` surface from
    :class:`~repro.sim.engine.Simulator`; instead of ``run()`` jumping the
    clock to each event, an asyncio :meth:`pump` advances ``_now`` with the
    loop's monotonic time and executes events as their deadlines pass.
    """

    def __init__(self) -> None:
        super().__init__()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._stopped = False

    # ------------------------------------------------------------------
    def attach(self, loop: asyncio.AbstractEventLoop, epoch: float) -> None:
        """Bind the clock to ``loop``, mapping loop time ``epoch`` to t=0.

        A shared epoch across all nodes of a deployment keeps their
        monitor timelines comparable.
        """
        self._loop = loop
        self._epoch = epoch
        self._wakeup = asyncio.Event()

    def _wall(self) -> float:
        return self._loop.time() - self._epoch

    def post(self, callback: Callable[..., Any], *args: Any) -> None:
        """Enqueue ``callback`` to run in the pump as soon as possible.

        The only scheduling entry point that may be called from *outside* a
        pump callback (socket readers, the API facade); it wakes the pump.
        """
        heapq.heappush(self._queue, (self._now, next(self._seq), callback, args))
        if self._wakeup is not None:
            self._wakeup.set()

    def stop(self) -> None:
        self._stopped = True
        if self._wakeup is not None:
            self._wakeup.set()

    # ------------------------------------------------------------------
    async def pump(self) -> None:
        """Execute events as the wall clock passes their deadlines."""
        queue = self._queue
        tombstones = self._tombstones
        heappop = heapq.heappop
        while not self._stopped:
            now = self._wall()
            if now > self._now:
                self._now = now
            executed = 0
            while queue and executed < _PUMP_BATCH:
                time, seq, callback, args = queue[0]
                if tombstones and seq in tombstones:
                    tombstones.discard(seq)
                    heappop(queue)
                    continue
                if time > self._now:
                    now = self._wall()
                    if now > self._now:
                        self._now = now
                    if time > self._now:
                        break
                heappop(queue)
                self._processed += 1
                try:
                    callback(*args)
                except Exception:  # noqa: BLE001 - a live node must not die on one handler
                    print(f"[live-clock] handler {callback!r} raised:", file=sys.stderr)
                    traceback.print_exc()
                executed += 1
            if self._stopped:
                return
            if executed >= _PUMP_BATCH:
                await asyncio.sleep(0)  # let socket IO progress mid-burst
                continue
            if queue:
                delay = queue[0][0] - self._wall()
                if delay > 0:
                    try:
                        await asyncio.wait_for(self._wakeup.wait(), timeout=delay)
                    except asyncio.TimeoutError:
                        pass
                else:
                    await asyncio.sleep(0)
            else:
                await self._wakeup.wait()
            self._wakeup.clear()


class RemotePeer:
    """Liveness stub for a ring member hosted by another node.

    The live backend has no failure detector yet (open item): remote peers
    are assumed alive, exactly like the paper's deployment assumes Zookeeper
    reconfigures the ring when a member actually dies.
    """

    __slots__ = ("name", "alive")

    def __init__(self, name: str) -> None:
        self.name = name
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemotePeer({self.name!r})"


class LiveTransport:
    """FIFO-per-channel transport over localhost TCP.

    Local destinations are delivered through the clock (preserving FIFO via
    the calendar queue's tie-break); remote destinations are framed by the
    codec and written to one ordered connection per peer node, so every
    ``(src, dst)`` channel is FIFO end to end -- the same guarantee the
    simulator's network model provides and TCP gives the paper's system.
    """

    def __init__(self, clock: LiveClock) -> None:
        self._clock = clock
        self._processes: Dict[str, Any] = {}
        self._sites: Dict[str, str] = {}
        #: Remote process name -> (host, port) of its node's server.
        self._addresses: Dict[str, Tuple[str, int]] = {}
        self._send_queues: Dict[Tuple[str, int], asyncio.Queue] = {}
        self._writer_tasks: Dict[Tuple[str, int], asyncio.Task] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_received = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.frames_sent = 0
        self.wire_bytes_sent = 0

    # -- Transport protocol ----------------------------------------------
    def attach(self, process: Any, site: str) -> None:
        self._processes[process.name] = process
        self._sites[process.name] = site

    def detach(self, name: str) -> None:
        self._processes.pop(name, None)
        self._sites.pop(name, None)

    def link_faulted(self, src: str, dst: str) -> bool:
        return False  # live fault injection is an open item

    def send(self, src: str, dst: str, payload: Any, size_bytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        process = self._processes.get(dst)
        if process is not None:
            if process.alive:
                self.messages_delivered += 1
                self._clock.post(process.deliver_message, src, payload)
            else:
                self.messages_dropped += 1
            return
        address = self._addresses.get(dst)
        if address is None:
            self.messages_dropped += 1
            return
        frame = frame_message(src, dst, payload)
        self.frames_sent += 1
        self.wire_bytes_sent += len(frame)
        self._queue_for(address).put_nowait(frame)

    # -- peer wiring ------------------------------------------------------
    def set_peer(self, name: str, address: Tuple[str, int]) -> None:
        self._addresses[name] = address

    def peer_names(self) -> List[str]:
        return list(self._addresses)

    def _queue_for(self, address: Tuple[str, int]) -> asyncio.Queue:
        queue = self._send_queues.get(address)
        if queue is None:
            queue = asyncio.Queue()
            self._send_queues[address] = queue
            self._writer_tasks[address] = asyncio.get_running_loop().create_task(
                self._writer(address, queue)
            )
        return queue

    async def _writer(self, address: Tuple[str, int], queue: asyncio.Queue) -> None:
        """Drain ``queue`` onto one ordered connection to ``address``."""
        writer: Optional[asyncio.StreamWriter] = None
        try:
            while True:
                frame = await queue.get()
                if frame is _CLOSE:
                    return
                while writer is None:
                    try:
                        _, writer = await asyncio.open_connection(*address)
                    except OSError:
                        await asyncio.sleep(0.05)  # peer server not up yet
                writer.write(frame)
                # Coalesce whatever queued up while awaiting: one syscall.
                closing = False
                while not queue.empty():
                    extra = queue.get_nowait()
                    if extra is _CLOSE:
                        closing = True
                        break
                    writer.write(extra)
                await writer.drain()
                if closing:
                    return
        finally:
            if writer is not None:
                writer.close()

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Server side: decode frames and deliver to local processes."""
        buffer = bytearray()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                buffer += chunk
                for src, dst, payload in iter_frames(buffer):
                    self.messages_received += 1
                    process = self._processes.get(dst)
                    if process is None or not process.alive:
                        self.messages_dropped += 1
                        continue
                    self._clock.post(process.deliver_message, src, payload)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return
        finally:
            writer.close()

    async def close(self) -> None:
        for queue in self._send_queues.values():
            queue.put_nowait(_CLOSE)
        tasks = list(self._writer_tasks.values())
        for task in tasks:
            try:
                await asyncio.wait_for(task, timeout=1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                task.cancel()
        self._send_queues.clear()
        self._writer_tasks.clear()


class LiveFileStore:
    """A real append log behind the :class:`StableStore` surface.

    ``write`` appends and (for synchronous modes) ``fsync``\\ s before
    returning; ``write_async`` leaves flushing to the OS.  The protocol
    layer only hands byte *counts* to its store (record content is opaque
    there), so the log carries placeholder blocks -- real durability timing
    and accounting, with content-level recovery left as an open item.
    """

    __slots__ = ("sim", "path", "_file", "_fsync", "_fsync_hist", "bytes_written", "ops")

    def __init__(
        self,
        clock: LiveClock,
        path: str,
        fsync: bool = True,
        fsync_hist: Optional[Histogram] = None,
    ) -> None:
        self.sim = clock
        self.path = path
        self._file = open(path, "ab")
        self._fsync = fsync
        #: Optional fsync-latency histogram (off the protocol hot path: the
        #: fsync syscall it times dwarfs the observation).
        self._fsync_hist = fsync_hist
        self.bytes_written = 0
        self.ops = 0

    def _append(self, nbytes: int, force: bool) -> float:
        if nbytes > 0:
            self._file.write(b"\x00" * nbytes)
        self._file.flush()
        if force and self._fsync:
            if self._fsync_hist is not None:
                begin = time.perf_counter()
                os.fsync(self._file.fileno())
                self._fsync_hist.observe(time.perf_counter() - begin)
            else:
                os.fsync(self._file.fileno())
        self.bytes_written += nbytes
        self.ops += 1
        return self.sim.now

    def write(self, nbytes, callback=None, callback_args=()) -> float:
        done = self._append(nbytes, force=True)
        if callback is not None:
            self.sim.call_later(0.0, callback, *callback_args)
        return done

    def write_async(self, nbytes, callback=None, callback_args=()) -> float:
        done = self._append(nbytes, force=False)
        if callback is not None:
            self.sim.call_later(0.0, callback, *callback_args)
        return done

    def read(self, nbytes, callback=None) -> float:
        if callback is not None:
            self.sim.call_later(0.0, callback)
        return self.sim.now

    def close(self) -> None:
        self._file.close()


class LiveNodeRuntime:
    """The :class:`~repro.runtime.interfaces.Runtime` of one live node."""

    def __init__(
        self,
        name: str,
        site: str = "local",
        seed: int = 0,
        storage_dir: Optional[str] = None,
        tracing: bool = False,
        trace_sample: int = 64,
    ) -> None:
        self.name = name
        self.sim = LiveClock()
        self.network = LiveTransport(self.sim)
        self.monitor = Monitor()
        self.rng = RandomStreams(seed)
        self.trace = Trace(enabled=False)
        # Per-node observability: each live node owns its tracer and metrics
        # registry (nothing is shared between nodes, matching the eventual
        # one-node-per-OS-process deployment).
        self.obs = Observability(
            tracing=tracing, trace_sample=trace_sample, labels={"node": name}
        )
        self.obs.metrics.add_collector(self._transport_samples)
        self.default_site = site
        self.storage_dir = storage_dir
        self._processes: Dict[str, Any] = {}
        self._peers: Set[str] = set()
        self._remote_stubs: Dict[str, RemotePeer] = {}
        self._stores: List[LiveFileStore] = []
        self._started = False

    # -- process registry -------------------------------------------------
    def register(self, process: Any, site: str) -> None:
        if process.name in self._processes:
            raise ConfigurationError(f"a process named {process.name!r} already exists")
        self._processes[process.name] = process
        self.network.attach(process, site)
        if self._started:
            self.sim.call_later(0.0, process.on_start)

    def process(self, name: str) -> Any:
        local = self._processes.get(name)
        if local is not None:
            return local
        if name in self._peers:
            return self._stub(name)
        raise NetworkError(f"unknown process {name!r}")

    def get_process(self, name: str) -> Optional[Any]:
        local = self._processes.get(name)
        if local is not None:
            return local
        if name in self._peers:
            return self._stub(name)
        return None

    def has_process(self, name: str) -> bool:
        return name in self._processes or name in self._peers

    def processes(self) -> List[Any]:
        return list(self._processes.values())

    def process_names(self) -> List[str]:
        return list(self._processes)

    def _stub(self, name: str) -> RemotePeer:
        stub = self._remote_stubs.get(name)
        if stub is None:
            stub = RemotePeer(name)
            self._remote_stubs[name] = stub
        return stub

    def add_peer(self, name: str, address: Tuple[str, int]) -> None:
        """Make the remote process ``name`` reachable at ``address``."""
        self._peers.add(name)
        self.network.set_peer(name, address)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for process in list(self._processes.values()):
            self.sim.call_later(0.0, process.on_start)

    @property
    def started(self) -> bool:
        return self._started

    @property
    def now(self) -> float:
        return self.sim.now

    # -- failure hooks -----------------------------------------------------
    def crash(self, name: str) -> None:
        self.process(name).crash()

    def recover(self, name: str) -> None:
        self.process(name).recover()

    # -- storage factory ---------------------------------------------------
    def new_store(self, mode: StorageMode) -> Optional[LiveFileStore]:
        if mode is StorageMode.MEMORY:
            return None
        if self.storage_dir is None:
            # Refuse rather than degrade: without a directory the acceptor
            # would otherwise fall back to the simulator's timing-model disk
            # and the requested durability would silently not exist.
            raise ConfigurationError(
                f"storage mode {mode.value!r} on the live backend needs a "
                "storage directory (pass storage_dir= to the deployment)"
            )
        os.makedirs(self.storage_dir, exist_ok=True)
        path = os.path.join(
            self.storage_dir, f"{self.name}-store-{len(self._stores)}.log"
        )
        store = LiveFileStore(
            self.sim,
            path,
            fsync=mode.synchronous,
            fsync_hist=self.obs.metrics.histogram(
                "mrp_fsync_latency_seconds", "Acceptor-log fsync latency"
            ),
        )
        self._stores.append(store)
        return store

    def close_stores(self) -> None:
        for store in self._stores:
            store.close()

    # -- observability -----------------------------------------------------
    def _transport_samples(self):
        """Pull-collector: transport and store counters, read at snapshot time."""
        network = self.network
        samples = [
            ("mrp_transport_messages_sent_total", network.messages_sent),
            ("mrp_transport_messages_delivered_total", network.messages_delivered),
            ("mrp_transport_messages_received_total", network.messages_received),
            ("mrp_transport_messages_dropped_total", network.messages_dropped),
            ("mrp_transport_bytes_sent_total", network.bytes_sent),
            ("mrp_transport_frames_sent_total", network.frames_sent),
            ("mrp_transport_wire_bytes_sent_total", network.wire_bytes_sent),
            ("mrp_store_bytes_written_total", sum(s.bytes_written for s in self._stores)),
            ("mrp_store_ops_total", sum(s.ops for s in self._stores)),
        ]
        return samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LiveNodeRuntime({self.name!r}, t={self.sim.now:.3f})"


# ----------------------------------------------------------------------
# deployment builder
# ----------------------------------------------------------------------
@dataclass
class LiveRingSpec:
    """Declarative description of one ring for the live backend."""

    group: str
    members: List[str]
    acceptors: Optional[List[str]] = None
    proposers: Optional[List[str]] = None
    learners: Optional[List[str]] = None
    coordinator: Optional[str] = None
    storage_mode: StorageMode = StorageMode.MEMORY

    def resolved(self, role: str) -> List[str]:
        explicit = getattr(self, role)
        return list(explicit) if explicit is not None else list(self.members)


@dataclass
class _LiveNode:
    """One live node: runtime + server + its MultiRingNode."""

    name: str
    runtime: LiveNodeRuntime
    registry: Registry
    node: MultiRingNode
    server: Optional[asyncio.AbstractServer] = None
    address: Optional[Tuple[str, int]] = None
    pump_task: Optional[asyncio.Task] = None
    deliveries: List[Any] = field(default_factory=list)
    obs_server: Optional[ObsHTTPServer] = None
    obs_address: Optional[Tuple[str, int]] = None


class LiveDeployment:
    """An N-node live deployment inside one OS process.

    Every node gets its own runtime (clock pump, TCP server, peers) and its
    own :class:`Registry` built from the shared ring specs -- no in-memory
    state is shared between nodes, so the same wiring works when nodes later
    move to separate OS processes (ROADMAP open item).  All inter-node
    traffic crosses real localhost TCP.
    """

    def __init__(
        self,
        rings: Sequence[LiveRingSpec],
        config: Optional[MultiRingConfig] = None,
        ring_config: Optional[RingConfig] = None,
        host: str = "127.0.0.1",
        seed: int = 0,
        storage_dir: Optional[str] = None,
        record_deliveries: bool = True,
        tracing: bool = False,
        trace_sample: int = 64,
        serve_http: bool = False,
    ) -> None:
        if not rings:
            raise ConfigurationError("a live deployment needs at least one ring")
        self.rings = list(rings)
        self.config = config or MultiRingConfig.datacenter()
        self.ring_config = ring_config
        self.host = host
        self.seed = seed
        self.storage_dir = storage_dir
        self.record_deliveries = record_deliveries
        self.tracing = tracing
        self.trace_sample = trace_sample
        #: When set, each node serves /metrics, /healthz and /spans/<id> on
        #: an ephemeral localhost port (``node.obs_address``).
        self.serve_http = serve_http
        self.nodes: Dict[str, _LiveNode] = {}
        self._started = False

    # ------------------------------------------------------------------
    def node_names(self) -> List[str]:
        names: List[str] = []
        for spec in self.rings:
            for member in spec.members:
                if member not in names:
                    names.append(member)
        return names

    def node(self, name: str) -> _LiveNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown live node {name!r}") from None

    async def start(self) -> None:
        """Build every node, bind its server, connect peers, start pumps."""
        if self._started:
            return
        self._started = True
        loop = asyncio.get_running_loop()
        epoch = loop.time()

        for name in self.node_names():
            runtime = LiveNodeRuntime(
                name,
                seed=self.seed,
                storage_dir=self.storage_dir,
                tracing=self.tracing,
                trace_sample=self.trace_sample,
            )
            runtime.sim.attach(loop, epoch)
            registry = Registry()
            for spec in self.rings:
                registry.register_ring(
                    spec.group,
                    members_in_ring_order=spec.members,
                    proposers=spec.resolved("proposers"),
                    acceptors=spec.resolved("acceptors"),
                    learners=spec.resolved("learners"),
                    coordinator=spec.coordinator,
                )
            node = MultiRingNode(
                runtime,
                registry,
                name,
                config=self.config,
                cpu_config=CPUConfig.free(),
            )
            live = _LiveNode(name=name, runtime=runtime, registry=registry, node=node)
            for spec in self.rings:
                if name in spec.members:
                    ring_config = self.ring_config or self.config.ring.with_storage(
                        spec.storage_mode
                    )
                    node.join_ring(spec.group, ring_config=ring_config)
            if self.record_deliveries:
                node.on_deliver(live.deliveries.append)
            server = await asyncio.start_server(
                runtime.network.handle_connection, self.host, 0
            )
            live.server = server
            live.address = server.sockets[0].getsockname()[:2]
            if self.serve_http:
                live.obs_server = ObsHTTPServer(
                    runtime.obs, name, now=lambda rt=runtime: rt.now
                )
                live.obs_address = await live.obs_server.start(self.host, 0)
            self.nodes[name] = live

        # Everyone knows everyone: process name -> hosting node's address.
        for live in self.nodes.values():
            for other in self.nodes.values():
                if other.name != live.name:
                    live.runtime.add_peer(other.name, other.address)

        for live in self.nodes.values():
            live.pump_task = loop.create_task(
                live.runtime.sim.pump(), name=f"pump-{live.name}"
            )
            live.runtime.start()

    async def stop(self) -> None:
        if not self._started:
            return
        for live in self.nodes.values():
            if live.server is not None:
                live.server.close()
            if live.obs_server is not None:
                await live.obs_server.close()
            await live.runtime.network.close()
        for live in self.nodes.values():
            live.runtime.sim.stop()
            if live.pump_task is not None:
                try:
                    await asyncio.wait_for(live.pump_task, timeout=1.0)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    live.pump_task.cancel()
            live.runtime.close_stores()
        for live in self.nodes.values():
            if live.server is not None:
                await live.server.wait_closed()
        self._started = False

    # ------------------------------------------------------------------
    def multicast(self, via: str, group: str, payload: Any, size_bytes: int) -> None:
        """Submit ``payload`` on ``group`` through node ``via`` (thread-unsafe:
        call from the running event loop, e.g. :meth:`LiveClock.post` bridges)."""
        live = self.node(via)
        live.runtime.sim.post(live.node.multicast, group, payload, size_bytes)

    async def __aenter__(self) -> "LiveDeployment":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()
