"""The actor model every protocol role is built on.

A :class:`Process` is an event-driven actor attached to a
:class:`~repro.runtime.interfaces.Runtime` (the simulator's
:class:`~repro.sim.world.World`, or a live node runtime).  Subclasses override

* :meth:`Process.on_start` -- called once when the process boots,
* :meth:`Process.on_message` -- called for every delivered message,
* :meth:`Process.on_crash` / :meth:`Process.on_recover` -- failure hooks.

Processes send messages with :meth:`Process.send` and arm timers with
:meth:`Process.set_timer` / :meth:`Process.set_periodic_timer`.  Crashing a
process cancels all of its timers and silently drops messages addressed to it
until :meth:`Process.recover` is called -- volatile state handling on recovery
is the subclass's responsibility (that is precisely what Section 5 of the
paper is about).

The class depends only on the runtime protocols: ``world.sim`` for time and
timers, ``world.network`` for messaging, ``world.trace`` for logging.  It is
therefore backend-agnostic and runs unchanged on the simulator and on the
live asyncio/TCP backend.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.errors import ProcessCrashedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.interfaces import CancelHandle, Runtime

__all__ = ["Timer", "Process"]


class Timer:
    """A (possibly periodic) timer owned by a process."""

    __slots__ = ("_process", "_interval", "_callback", "_args", "_periodic", "_event", "_active")

    def __init__(
        self,
        process: "Process",
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        periodic: bool,
    ) -> None:
        self._process = process
        self._interval = interval
        self._callback = callback
        self._args = args
        self._periodic = periodic
        self._event: Optional["CancelHandle"] = None
        self._active = True
        self._schedule()

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    @property
    def interval(self) -> float:
        return self._interval

    def _schedule(self) -> None:
        sim = self._process.world.sim
        self._event = sim.schedule(self._interval, self._fire)

    def _fire(self) -> None:
        if not self._active or not self._process.alive:
            return
        if self._periodic:
            self._schedule()
        else:
            self._active = False
        self._callback(*self._args)

    def cancel(self) -> None:
        """Stop the timer.  Idempotent."""
        self._active = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def reset(self) -> None:
        """Restart the countdown from now."""
        if self._event is not None:
            self._event.cancel()
        self._active = True
        self._schedule()


class Process:
    """Base class for every protocol process (backend-agnostic actor)."""

    def __init__(self, world: "Runtime", name: str, site: Optional[str] = None) -> None:
        self.world = world
        self.name = name
        self.site = site or world.default_site
        self.alive = True
        self._timers: List[Timer] = []
        self.messages_received = 0
        self.messages_sent = 0
        world.register(self, self.site)

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once when the world starts (or when the process is created late)."""

    def on_message(self, sender: str, payload: Any) -> None:
        """Handle a delivered message.  Subclasses almost always override this."""

    def on_crash(self) -> None:
        """Called right after the process crashes."""

    def on_recover(self) -> None:
        """Called right after the process restarts."""

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(self, dest: str, payload: Any, size_bytes: Optional[int] = None) -> None:
        """Send ``payload`` to the process named ``dest``.

        ``size_bytes`` drives the transport's cost model; when omitted the
        payload's ``size_bytes`` attribute is used, falling back to a small
        constant for control messages.
        """
        if not self.alive:
            raise ProcessCrashedError(f"{self.name} is crashed and cannot send")
        if size_bytes is None:
            size_bytes = getattr(payload, "size_bytes", 128)
        self.messages_sent += 1
        self.world.network.send(self.name, dest, payload, size_bytes)

    def deliver_message(self, sender: str, payload: Any) -> None:
        """Entry point used by the transport.  Do not call directly."""
        if not self.alive:
            return
        self.messages_received += 1
        self.on_message(sender, payload)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def set_timer(self, delay: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Arm a one-shot timer firing ``delay`` seconds from now."""
        if not self.alive:
            raise ProcessCrashedError(f"{self.name} is crashed and cannot set timers")
        timer = Timer(self, delay, callback, args, periodic=False)
        self._timers.append(timer)
        self._prune_timers()
        return timer

    def set_periodic_timer(self, interval: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Arm a periodic timer firing every ``interval`` seconds until cancelled."""
        if not self.alive:
            raise ProcessCrashedError(f"{self.name} is crashed and cannot set timers")
        timer = Timer(self, interval, callback, args, periodic=True)
        self._timers.append(timer)
        self._prune_timers()
        return timer

    def _prune_timers(self) -> None:
        if len(self._timers) > 256:
            self._timers = [timer for timer in self._timers if timer.active]

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash the process: drop future messages and cancel all timers."""
        if not self.alive:
            return
        self.alive = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.on_crash()

    def recover(self) -> None:
        """Restart a crashed process.  Volatile state is *not* restored here."""
        if self.alive:
            return
        self.alive = True
        self.on_recover()

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current runtime time."""
        return self.world.sim.now

    def log(self, message: str) -> None:
        """Record a trace line (no-op unless tracing is enabled on the world)."""
        self.world.trace.record(self.now, self.name, message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "crashed"
        return f"{type(self).__name__}({self.name!r}, {state})"
