"""The simulator re-cast as the first runtime backend.

The runtime protocols were extracted from the call surface the protocol
stack already exercised against the simulator, so the simulator classes
satisfy them structurally -- no per-call indirection is added in front of
the PR-4 fast paths.  This module makes the backend relationship explicit:

* :func:`as_runtime` validates that a world object really provides the
  :class:`~repro.runtime.interfaces.Runtime` surface (used by the API facade
  and by tests),
* :class:`SimRuntime` is the adapter bundle over ``World`` adding the
  spawn/crash hooks of the runtime facade in one place, for callers that
  want to drive failures without reaching into simulator internals.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.runtime.interfaces import Clock, Runtime, StorageMode, Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.actor import Process
    from repro.sim.world import World

__all__ = ["SimRuntime", "as_runtime"]

#: Attributes a Runtime must expose beyond what ``isinstance`` against the
#: (non-runtime_checkable-data) protocol can verify.
_REQUIRED_ATTRS = ("sim", "network", "monitor", "rng", "trace", "default_site")


def as_runtime(world: object) -> Runtime:
    """Check that ``world`` provides the :class:`Runtime` surface and return it.

    Structural: the simulator ``World`` and the live backend's node runtime
    both pass.  Raises :class:`~repro.errors.ConfigurationError` otherwise.
    """
    for attr in _REQUIRED_ATTRS:
        if not hasattr(world, attr):
            raise ConfigurationError(
                f"{type(world).__name__} is not a runtime: missing {attr!r}"
            )
    if not isinstance(getattr(world, "sim"), Clock):
        raise ConfigurationError(f"{type(world).__name__}.sim does not satisfy Clock")
    if not isinstance(getattr(world, "network"), Transport):
        raise ConfigurationError(f"{type(world).__name__}.network does not satisfy Transport")
    for method in ("register", "get_process", "has_process", "start", "new_store"):
        if not callable(getattr(world, method, None)):
            raise ConfigurationError(
                f"{type(world).__name__} is not a runtime: missing method {method!r}"
            )
    return world  # type: ignore[return-value]


class SimRuntime:
    """Adapter bundling a :class:`~repro.sim.world.World` as a runtime backend.

    ``World`` already satisfies the :class:`Runtime` protocol; this wrapper
    adds the explicit spawn/crash hooks used by chaos tooling and the API
    facade, delegating everything else.
    """

    def __init__(self, world: "World") -> None:
        self.world = as_runtime(world)

    # -- delegated runtime surface ---------------------------------------
    def __getattr__(self, name: str):
        return getattr(self.world, name)

    # -- failure hooks ----------------------------------------------------
    def crash(self, name: str) -> None:
        """Crash the named process (volatile state is lost)."""
        self.world.process(name).crash()

    def recover(self, name: str) -> None:
        """Restart a crashed process (recovery machinery takes over)."""
        self.world.process(name).recover()

    def spawn(self, process_cls, name: str, *args, site: Optional[str] = None, **kwargs) -> "Process":
        """Create a process on the bundled world (late joiners start immediately)."""
        return process_cls(self.world, name, *args, site=site, **kwargs) if site is not None else process_cls(self.world, name, *args, **kwargs)

    def new_store(self, mode: StorageMode):
        return self.world.new_store(mode)
