"""Runtime abstraction layer.

The protocol stack (:mod:`repro.paxos`, :mod:`repro.ringpaxos`,
:mod:`repro.multiring`, :mod:`repro.smr`, :mod:`repro.recovery`,
:mod:`repro.services`) is written against the narrow interfaces defined here
-- a :class:`Clock` for time and timers, a :class:`Transport` for FIFO
messaging, a :class:`StableStore` for durable writes, and a :class:`Runtime`
facade bundling them with the process registry and failure hooks.

Two backends implement the interfaces:

* :mod:`repro.sim` -- the deterministic discrete-event simulator
  (:class:`~repro.sim.world.World` *is* a :class:`Runtime`); every benchmark
  and golden-trace test runs on it, and
* :mod:`repro.runtime.live` -- real wall-clock execution: each node is an
  asyncio task, protocol messages travel over length-prefixed localhost TCP
  encoded by the versioned :mod:`repro.runtime.codec`.

The actor base class (:class:`~repro.runtime.actor.Process`) and the CPU cost
model (:mod:`repro.runtime.cpu`) live here too: both are backend-agnostic --
they only ever talk to a :class:`Clock` and a :class:`Transport`.
"""

from repro.runtime.interfaces import (
    CancelHandle,
    Clock,
    Runtime,
    StableStore,
    StorageMode,
    Transport,
)
from repro.runtime.actor import Process, Timer
from repro.runtime.cpu import CPU, CPUConfig

__all__ = [
    "CancelHandle",
    "Clock",
    "Runtime",
    "StableStore",
    "StorageMode",
    "Transport",
    "Process",
    "Timer",
    "CPU",
    "CPUConfig",
]
