"""CPU cost model.

Figure 3 (bottom-left) reports the CPU utilization of the ring coordinator
and attributes the in-memory throughput ceiling to it.  The reproduction
models each process's CPU as a single serial resource: protocol code charges
it a per-message plus per-byte cost, and the utilization over a window is the
fraction of that window during which the resource was busy.

The paper also observes that the *asynchronous disk* mode exhibits the highest
coordinator CPU because of Java's parallel garbage collector churning through
heap-allocated buffers (in-memory mode uses off-heap buffers).  The model
exposes an ``overhead_factor`` so experiments can reproduce that effect.

The model is backend-agnostic: it only needs a
:class:`~repro.runtime.interfaces.Clock`.  The live backend runs every node
with :meth:`CPUConfig.free` (all costs zero) -- the real CPU charges for
itself there, and a zero-cost charge degenerates to an immediate dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.interfaces import Clock

__all__ = ["CPUConfig", "CPU"]


@dataclass(slots=True)
class CPUConfig:
    """Per-message processing costs charged to a process's CPU."""

    #: Fixed cost of handling one protocol message, seconds.
    per_message_cost: float = 4e-6
    #: Marginal cost per payload byte (checksumming, copying), seconds/byte.
    per_byte_cost: float = 0.25e-9
    #: Multiplier applied to all costs; models e.g. GC overhead (paper: async
    #: disk mode has the highest coordinator CPU because of the Java GC).
    overhead_factor: float = 1.0

    @classmethod
    def free(cls) -> "CPUConfig":
        """A zero-cost model: every charge completes immediately.

        Used by the live backend, where protocol handlers run on the real
        CPU and the model must not inject artificial latency.
        """
        return cls(per_message_cost=0.0, per_byte_cost=0.0, overhead_factor=1.0)


class CPU:
    """A serial CPU resource with busy-time accounting."""

    __slots__ = ("sim", "config", "_busy_until", "_busy_time", "operations")

    def __init__(self, sim: "Clock", config: Optional[CPUConfig] = None) -> None:
        self.sim = sim
        self.config = config or CPUConfig()
        self._busy_until = 0.0
        self._busy_time = 0.0
        self.operations = 0

    # ------------------------------------------------------------------
    def cost(self, nbytes: int = 0, messages: int = 1) -> float:
        """Compute the CPU time for handling ``messages`` totalling ``nbytes``."""
        base = messages * self.config.per_message_cost + nbytes * self.config.per_byte_cost
        return base * self.config.overhead_factor

    def execute(
        self,
        work_seconds: float,
        callback: Optional[Callable[[], None]] = None,
    ) -> float:
        """Occupy the CPU for ``work_seconds`` and return the completion time."""
        if work_seconds < 0:
            work_seconds = 0.0
        start = self._busy_until
        now = self.sim.now
        if now > start:
            start = now
        end = start + work_seconds
        self._busy_until = end
        self._busy_time += work_seconds
        self.operations += 1
        if callback is not None:
            self.sim.call_at(end, callback)
        return end

    def charge(self, nbytes: int = 0, messages: int = 1) -> float:
        """Convenience: :meth:`cost` followed by :meth:`execute` (inlined)."""
        config = self.config
        work = (
            messages * config.per_message_cost + nbytes * config.per_byte_cost
        ) * config.overhead_factor
        start = self._busy_until
        now = self.sim.now
        if now > start:
            start = now
        end = start + work
        self._busy_until = end
        self._busy_time += work
        self.operations += 1
        return end

    # ------------------------------------------------------------------
    @property
    def busy_until(self) -> float:
        return self._busy_until

    @property
    def total_busy_time(self) -> float:
        return self._busy_time

    def utilization(self, start: float, end: float) -> float:
        """Fraction of ``[start, end)`` the CPU was busy (clamped to 100 %)."""
        if end <= start:
            return 0.0
        return min(1.0, self._busy_time / (end - start))

    def utilization_percent(self, start: float, end: float) -> float:
        return 100.0 * self.utilization(start, end)
