"""Classic single-decree Paxos over the simulated network.

Ring Paxos optimizes the communication pattern of Paxos but not its decision
rule; this module implements the textbook message-passing protocol (Phase 1A/
1B/2A/2B, majority quorums) as plain :class:`~repro.runtime.actor.Process`
actors.  It serves three purposes:

* executable documentation of the consensus core the ring protocol relies on,
* a safety oracle for the property-based tests (agreement and validity must
  hold under any message interleaving the simulator produces), and
* the mechanism a newly elected Ring Paxos coordinator uses to re-learn the
  outcome of instances that were in flight when its predecessor crashed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.errors import ConsensusError
from repro.net.message import ProtocolMessage
from repro.paxos.types import Ballot, InstanceRecord
from repro.runtime.actor import Process
from repro.runtime.interfaces import Runtime
from repro.types import Value

__all__ = [
    "Phase1A",
    "Phase1B",
    "Phase2A",
    "Phase2B",
    "PaxosAcceptor",
    "PaxosProposer",
    "PaxosLearner",
    "run_single_decree",
]


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Phase1A(ProtocolMessage):
    ballot: Ballot


@dataclass(frozen=True)
class Phase1B(ProtocolMessage):
    ballot: Ballot
    accepted_ballot: Optional[Ballot]
    accepted_value: Optional[Value]


@dataclass(frozen=True)
class Phase2A(ProtocolMessage):
    ballot: Ballot
    value: Value


@dataclass(frozen=True)
class Phase2B(ProtocolMessage):
    ballot: Ballot
    value: Value


@dataclass(frozen=True)
class Decided(ProtocolMessage):
    """Relayed by the proposer once it has observed a quorum of Phase 2B votes."""

    ballot: Ballot
    value: Value


# ----------------------------------------------------------------------
# roles
# ----------------------------------------------------------------------
class PaxosAcceptor(Process):
    """A single-decree Paxos acceptor."""

    def __init__(self, world: Runtime, name: str, site: Optional[str] = None) -> None:
        super().__init__(world, name, site)
        self.state = InstanceRecord(instance=0)

    def on_message(self, sender: str, payload) -> None:
        if isinstance(payload, Phase1A):
            self._on_phase1a(sender, payload)
        elif isinstance(payload, Phase2A):
            self._on_phase2a(sender, payload)

    def _on_phase1a(self, sender: str, msg: Phase1A) -> None:
        if self.state.can_promise(msg.ballot):
            self.state.promise(msg.ballot)
            self.send(
                sender,
                Phase1B(
                    ballot=msg.ballot,
                    accepted_ballot=self.state.accepted_ballot,
                    accepted_value=self.state.accepted_value,
                ),
            )
        # A rejected Phase 1A is simply ignored; the proposer times out and
        # retries with a higher ballot.

    def _on_phase2a(self, sender: str, msg: Phase2A) -> None:
        if self.state.can_accept(msg.ballot):
            self.state.accept(msg.ballot, msg.value)
            self.send(sender, Phase2B(ballot=msg.ballot, value=msg.value))


class PaxosLearner(Process):
    """Learns the decided value from a quorum of matching Phase 2B votes."""

    def __init__(
        self,
        world: Runtime,
        name: str,
        acceptor_count: int,
        site: Optional[str] = None,
        on_decide: Optional[Callable[[Value], None]] = None,
    ) -> None:
        super().__init__(world, name, site)
        self.quorum = acceptor_count // 2 + 1
        self.decided_value: Optional[Value] = None
        self._votes: Dict[Ballot, Set[str]] = {}
        self._vote_value: Dict[Ballot, Value] = {}
        self._on_decide = on_decide

    def on_message(self, sender: str, payload) -> None:
        if isinstance(payload, Decided):
            self._decide(payload.value)
            return
        if not isinstance(payload, Phase2B):
            return
        voters = self._votes.setdefault(payload.ballot, set())
        voters.add(sender)
        self._vote_value[payload.ballot] = payload.value
        if len(voters) >= self.quorum:
            self._decide(self._vote_value[payload.ballot])

    def _decide(self, value: Value) -> None:
        if self.decided_value is not None:
            return
        self.decided_value = value
        if self._on_decide is not None:
            self._on_decide(value)


class PaxosProposer(Process):
    """A proposer that keeps retrying with higher ballots until a decision is known."""

    def __init__(
        self,
        world: Runtime,
        name: str,
        acceptors: Sequence[str],
        learners: Sequence[str],
        value: Value,
        site: Optional[str] = None,
        retry_timeout: float = 0.05,
        initial_ballot_number: int = 1,
    ) -> None:
        super().__init__(world, name, site)
        if not acceptors:
            raise ConsensusError("a proposer needs at least one acceptor")
        self.acceptors = list(acceptors)
        self.learners = list(learners)
        self.quorum = len(self.acceptors) // 2 + 1
        self.value = value
        self.retry_timeout = retry_timeout
        self.ballot = Ballot(initial_ballot_number, name)
        self._promises: Dict[str, Phase1B] = {}
        self._phase2_sent = False
        self._accepts: Set[str] = set()
        self.chosen: Optional[Value] = None

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._start_round()

    def _start_round(self) -> None:
        self._promises.clear()
        self._accepts.clear()
        self._phase2_sent = False
        for acceptor in self.acceptors:
            self.send(acceptor, Phase1A(ballot=self.ballot))
        self.set_timer(self.retry_timeout, self._maybe_retry)

    def _maybe_retry(self) -> None:
        if self.chosen is None and self.alive:
            self.ballot = self.ballot.next(self.name)
            self._start_round()

    # ------------------------------------------------------------------
    def on_message(self, sender: str, payload) -> None:
        if isinstance(payload, Phase1B):
            self._on_phase1b(sender, payload)
        elif isinstance(payload, Phase2B):
            self._on_phase2b(sender, payload)

    def _on_phase1b(self, sender: str, msg: Phase1B) -> None:
        if msg.ballot != self.ballot or self._phase2_sent:
            return
        self._promises[sender] = msg
        if len(self._promises) < self.quorum:
            return
        # Classic Paxos rule: adopt the value accepted at the highest ballot,
        # if any promise reports one; otherwise propose our own value.
        best: Optional[Phase1B] = None
        for promise in self._promises.values():
            if promise.accepted_ballot is None:
                continue
            if best is None or promise.accepted_ballot > best.accepted_ballot:
                best = promise
        proposal = best.accepted_value if best is not None else self.value
        self._phase2_sent = True
        for acceptor in self.acceptors:
            self.send(acceptor, Phase2A(ballot=self.ballot, value=proposal))

    def _on_phase2b(self, sender: str, msg: Phase2B) -> None:
        if msg.ballot != self.ballot:
            return
        self._accepts.add(sender)
        if len(self._accepts) >= self.quorum and self.chosen is None:
            self.chosen = msg.value
            for learner in self.learners:
                # Acceptors send Phase 2B to the proposer only in this compact
                # variant; the proposer relays the quorum outcome to learners.
                self.send(learner, Decided(ballot=msg.ballot, value=msg.value))


def run_single_decree(
    world: Runtime,
    proposer_values: Dict[str, Value],
    acceptor_names: Sequence[str],
    learner_names: Sequence[str],
    duration: float = 5.0,
) -> Dict[str, Optional[Value]]:
    """Build a single-decree Paxos deployment, run it, and return learner outcomes.

    ``proposer_values`` maps proposer names to the value each one proposes;
    concurrent proposers are allowed (that is the interesting case).
    """
    acceptors = [PaxosAcceptor(world, name) for name in acceptor_names]
    learners = [PaxosLearner(world, name, acceptor_count=len(acceptors)) for name in learner_names]
    for index, (name, value) in enumerate(sorted(proposer_values.items())):
        PaxosProposer(
            world,
            name,
            acceptors=acceptor_names,
            learners=learner_names,
            value=value,
            initial_ballot_number=index + 1,
            # Distinct retry timeouts avoid the classic dueling-proposers
            # livelock in the deterministic simulator.
            retry_timeout=0.05 * (1.0 + 0.17 * index),
        )
    world.run(until=duration)
    return {learner.name: learner.decided_value for learner in learners}
