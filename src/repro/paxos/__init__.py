"""Paxos substrate.

Ring Paxos (and therefore Multi-Ring Paxos) is built on a sequence of
consensus instances, each an optimized Paxos instance whose Phase 1 is
pre-executed for a whole range of instances (Section 4, Figure 2b).  This
package provides the pieces shared by every layer above:

* :mod:`repro.paxos.types` -- ballots and per-instance acceptor state,
* :mod:`repro.paxos.storage` -- the acceptor's stable log (Berkeley-DB
  substitute) with the paper's five storage modes and log trimming,
* :mod:`repro.paxos.single_decree` -- a classic message-passing Paxos used to
  validate the consensus core in isolation (and as an executable reference
  for the optimized protocol).
"""

from repro.paxos.types import Ballot, InstanceRecord
from repro.paxos.storage import AcceptorStorage
from repro.paxos.single_decree import (
    PaxosAcceptor,
    PaxosLearner,
    PaxosProposer,
    run_single_decree,
)

__all__ = [
    "Ballot",
    "InstanceRecord",
    "AcceptorStorage",
    "PaxosAcceptor",
    "PaxosLearner",
    "PaxosProposer",
    "run_single_decree",
]
