"""Ballots and per-instance acceptor state."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import total_ordering
from typing import Optional

from repro.types import InstanceId, Value

__all__ = ["Ballot", "InstanceRecord"]


@total_ordering
@dataclass(frozen=True, slots=True)
class Ballot:
    """A Paxos ballot (round) number.

    Ballots are totally ordered first by ``number`` and then by the proposing
    coordinator's name, which guarantees that two coordinators never use the
    same ballot.
    """

    number: int
    coordinator: str = ""

    def __lt__(self, other: "Ballot") -> bool:
        if self.number != other.number:
            return self.number < other.number
        return self.coordinator < other.coordinator

    def __ge__(self, other: "Ballot") -> bool:
        # Explicit (total_ordering would derive it through __lt__ plus an
        # equality check): ballot comparison sits on the acceptor vote path,
        # once per logged instance.
        if self.number != other.number:
            return self.number > other.number
        return self.coordinator >= other.coordinator

    def next(self, coordinator: Optional[str] = None) -> "Ballot":
        """The next higher ballot, owned by ``coordinator`` (default: same owner)."""
        return Ballot(self.number + 1, coordinator if coordinator is not None else self.coordinator)

    @classmethod
    def zero(cls) -> "Ballot":
        """The initial ballot, smaller than any ballot a coordinator uses."""
        return cls(0, "")


#: Shared initial ballot: frozen, so every fresh record can reference the
#: same instance instead of allocating one per consensus instance.
_ZERO_BALLOT = Ballot(0, "")


@dataclass(slots=True)
class InstanceRecord:
    """What an acceptor remembers about one consensus instance.

    ``promised`` is the highest ballot the acceptor promised not to undercut
    (Phase 1); ``accepted_ballot``/``accepted_value`` reflect its most recent
    Phase 2 vote; ``decided`` is set once a quorum is known to have voted for
    the value (the learner/decision path).
    """

    instance: InstanceId
    promised: Ballot = field(default=_ZERO_BALLOT)
    accepted_ballot: Optional[Ballot] = None
    accepted_value: Optional[Value] = None
    decided: bool = False

    def can_promise(self, ballot: Ballot) -> bool:
        """Phase 1: may the acceptor promise ``ballot``?"""
        return ballot > self.promised

    def can_accept(self, ballot: Ballot) -> bool:
        """Phase 2: may the acceptor vote for a proposal with ``ballot``?"""
        return ballot >= self.promised

    def promise(self, ballot: Ballot) -> None:
        if not self.can_promise(ballot):
            raise ValueError(f"cannot promise {ballot} after promising {self.promised}")
        self.promised = ballot

    def accept(self, ballot: Ballot, value: Value) -> None:
        if not self.can_accept(ballot):
            raise ValueError(f"cannot accept {ballot} after promising {self.promised}")
        self.promised = ballot
        self.accepted_ballot = ballot
        self.accepted_value = value

    def mark_decided(self) -> None:
        self.decided = True
