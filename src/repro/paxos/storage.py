"""The acceptor's stable log.

Section 5.1: *"before responding to a coordinator's request with a Phase 1B
or Phase 2B message, an acceptor must log its response onto stable storage"*,
and the log can later be trimmed once replicas have checkpointed state that
covers the corresponding instances.

The paper's implementation keeps pre-allocated in-memory buffers (15000 slots
of 32 KB) and uses Berkeley DB for disk persistence, with synchronous or
asynchronous writes.  :class:`AcceptorStorage` models exactly that surface:

* it records promises and votes per instance,
* persisting a record takes time according to the configured
  :class:`~repro.sim.disk.StorageMode` (nothing for in-memory, a write-back
  write for asynchronous modes, a forced write for synchronous modes),
* it serves retransmission requests for recovering replicas, and
* it can be trimmed up to an instance; reading a trimmed instance raises
  :class:`~repro.errors.StorageError`, which is what forces a recovering
  replica to fall back to a remote checkpoint.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.paxos.types import Ballot, InstanceRecord
from repro.runtime.interfaces import Clock, StableStore, StorageMode
from heapq import heappush

from repro.types import InstanceId, Value

__all__ = ["AcceptorStorage"]

#: Bytes of metadata persisted alongside each vote (instance id, ballot, CRC).
_RECORD_OVERHEAD_BYTES = 64


class AcceptorStorage:
    """Per-ring stable storage of one acceptor."""

    __slots__ = (
        "sim",
        "mode",
        "disk",
        "_records",
        "_trimmed_up_to",
        "_highest_instance",
        "bytes_logged",
        "writes",
    )

    def __init__(
        self,
        sim: Clock,
        mode: StorageMode = StorageMode.MEMORY,
        disk: Optional[StableStore] = None,
    ) -> None:
        self.sim = sim
        self.mode = mode
        if disk is None and mode is not StorageMode.MEMORY:
            # Convenience fallback for direct construction (tests, tools):
            # deployments resolve the store through ``Runtime.new_store``
            # before reaching this point.  Imported late so the paxos layer
            # has no static dependency on the simulator backend.
            from repro.sim.disk import disk_for_mode

            disk = disk_for_mode(sim, mode)
        self.disk = disk
        self._records: Dict[InstanceId, InstanceRecord] = {}
        self._trimmed_up_to: Optional[InstanceId] = None
        self._highest_instance: Optional[InstanceId] = None
        self.bytes_logged = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def trimmed_up_to(self) -> Optional[InstanceId]:
        """Highest instance removed by trimming, or ``None`` if never trimmed."""
        return self._trimmed_up_to

    @property
    def highest_instance(self) -> Optional[InstanceId]:
        """Highest instance ever recorded, or ``None`` if the log is empty."""
        return self._highest_instance

    def record(self, instance: InstanceId) -> InstanceRecord:
        """The (mutable) record for ``instance``, creating it if absent."""
        if self._trimmed_up_to is not None and instance <= self._trimmed_up_to:
            raise StorageError(f"instance {instance} has been trimmed")
        record = self._records.get(instance)
        if record is None:
            record = InstanceRecord(instance)
            self._records[instance] = record
        return record

    def has_instance(self, instance: InstanceId) -> bool:
        return instance in self._records

    def is_trimmed(self, instance: InstanceId) -> bool:
        return self._trimmed_up_to is not None and instance <= self._trimmed_up_to

    def instances(self) -> List[InstanceId]:
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _persist(
        self,
        nbytes: int,
        callback: Optional[Callable[..., None]],
        callback_args: tuple = (),
    ) -> float:
        """Persist ``nbytes`` according to the storage mode; return the ack time."""
        self.writes += 1
        self.bytes_logged += nbytes
        if self.mode is StorageMode.MEMORY or self.disk is None:
            sim = self.sim
            done = sim._now
            if callback is not None:
                # Inlined Simulator.call_at: ``done`` is exactly now.
                heappush(sim._queue, (done, next(sim._seq), callback, callback_args))
            return done
        if self.mode.synchronous:
            return self.disk.write(nbytes, callback, callback_args)
        return self.disk.write_async(nbytes, callback, callback_args)

    def log_promise(
        self,
        instance: InstanceId,
        ballot: Ballot,
        callback: Optional[Callable[[], None]] = None,
    ) -> float:
        """Record a Phase 1 promise and persist it.  Returns the ack time."""
        record = self.record(instance)
        record.promise(ballot)
        return self._persist(_RECORD_OVERHEAD_BYTES, callback)

    def log_vote(
        self,
        instance: InstanceId,
        ballot: Ballot,
        value: Value,
        callback: Optional[Callable[[], None]] = None,
    ) -> float:
        """Record a Phase 2 vote (accept) and persist it.  Returns the ack time."""
        record = self.record(instance)
        record.accept(ballot, value)
        if self._highest_instance is None or instance > self._highest_instance:
            self._highest_instance = instance
        nbytes = _RECORD_OVERHEAD_BYTES + value.size_bytes
        return self._persist(nbytes, callback)

    def log_votes_range(
        self,
        first: InstanceId,
        count: int,
        ballot: Ballot,
        value: Value,
        callback: Optional[Callable[..., None]] = None,
        callback_args: tuple = (),
    ) -> float:
        """Record votes for ``count`` consecutive instances with one persisted write.

        Used for skip ranges: the coordinator skips several consensus
        instances with a single message, and the acceptors likewise persist
        the whole range as one log record.
        """
        if count < 1:
            raise StorageError("a vote range must cover at least one instance")
        if count == 1:
            # Fast path: everything except skip ranges logs one instance.
            self.record(first).accept(ballot, value)
            if self._highest_instance is None or first > self._highest_instance:
                self._highest_instance = first
        else:
            for offset in range(count):
                instance = first + offset
                self.record(instance).accept(ballot, value)
                if self._highest_instance is None or instance > self._highest_instance:
                    self._highest_instance = instance
        nbytes = _RECORD_OVERHEAD_BYTES + value.size_bytes
        return self._persist(nbytes, callback, callback_args)

    def mark_decided(self, instance: InstanceId) -> None:
        """Mark an instance as decided (used when the decision passes by)."""
        if self._trimmed_up_to is not None and instance <= self._trimmed_up_to:
            return
        record = self._records.get(instance)
        if record is not None:
            record.decided = True

    def note_decided(self, instance: InstanceId, ballot: Ballot, value: Value) -> None:
        """Log ``value`` (if no vote exists yet) and mark ``instance`` decided.

        Fuses the ``is_trimmed`` / ``accepted_value`` / ``log_votes_range`` /
        ``mark_decided`` sequence acceptors run for every decision that
        passes by without having voted on it -- once per instance per
        acceptor, the hottest storage path after vote logging.  Bookkeeping
        (write counters, disk reservation) matches that sequence exactly.
        """
        if self._trimmed_up_to is not None and instance <= self._trimmed_up_to:
            return
        record = self._records.get(instance)
        if record is None or record.accepted_value is None:
            if record is None:
                record = InstanceRecord(instance)
                self._records[instance] = record
            record.accept(ballot, value)
            if self._highest_instance is None or instance > self._highest_instance:
                self._highest_instance = instance
            self._persist(_RECORD_OVERHEAD_BYTES + value.size_bytes, None)
        record.decided = True

    # ------------------------------------------------------------------
    # retransmission and trimming
    # ------------------------------------------------------------------
    def accepted_value(self, instance: InstanceId) -> Optional[Value]:
        """The value this acceptor voted for in ``instance``, if any."""
        if self.is_trimmed(instance):
            raise StorageError(f"instance {instance} has been trimmed")
        record = self._records.get(instance)
        return record.accepted_value if record is not None else None

    def read_range(
        self, first: InstanceId, last: InstanceId, decided_only: bool = False
    ) -> List[Tuple[InstanceId, Value]]:
        """Accepted values for instances in ``[first, last]`` (for retransmission).

        With ``decided_only`` the result is restricted to instances this
        acceptor knows were decided -- the learner gap-repair path must not
        deliver a value that never reached a quorum.  Raises
        :class:`StorageError` if any requested instance has been trimmed --
        the recovering replica must then fetch a newer checkpoint.
        """
        if first > last:
            return []
        if self._trimmed_up_to is not None and first <= self._trimmed_up_to:
            raise StorageError(
                f"instances up to {self._trimmed_up_to} have been trimmed, requested from {first}"
            )
        result: List[Tuple[InstanceId, Value]] = []
        for instance in sorted(self._records):
            if instance < first or instance > last:
                continue
            record = self._records[instance]
            if record.accepted_value is None:
                continue
            if decided_only and not record.decided:
                continue
            result.append((instance, record.accepted_value))
        return result

    def trim(self, up_to: InstanceId) -> int:
        """Delete all records for instances ``<= up_to``.  Returns how many were removed."""
        removed = 0
        for instance in [i for i in self._records if i <= up_to]:
            del self._records[instance]
            removed += 1
        if self._trimmed_up_to is None or up_to > self._trimmed_up_to:
            self._trimmed_up_to = up_to
        return removed

    def log_size_bytes(self) -> int:
        """Approximate size of the live (untrimmed) log."""
        return sum(
            _RECORD_OVERHEAD_BYTES
            + (record.accepted_value.size_bytes if record.accepted_value is not None else 0)
            for record in self._records.values()
        )
