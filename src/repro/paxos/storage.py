"""The acceptor's stable log.

Section 5.1: *"before responding to a coordinator's request with a Phase 1B
or Phase 2B message, an acceptor must log its response onto stable storage"*,
and the log can later be trimmed once replicas have checkpointed state that
covers the corresponding instances.

The paper's implementation keeps pre-allocated in-memory buffers (15000 slots
of 32 KB) and uses Berkeley DB for disk persistence, with synchronous or
asynchronous writes.  :class:`AcceptorStorage` models exactly that surface:

* it records promises and votes per instance,
* persisting a record takes time according to the configured
  :class:`~repro.sim.disk.StorageMode` (nothing for in-memory, a write-back
  write for asynchronous modes, a forced write for synchronous modes),
* it serves retransmission requests for recovering replicas, and
* it can be trimmed up to an instance; reading a trimmed instance raises
  :class:`~repro.errors.StorageError`, which is what forces a recovering
  replica to fall back to a remote checkpoint.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.paxos.types import Ballot, InstanceRecord
from repro.sim.disk import Disk, StorageMode, disk_for_mode
from repro.sim.engine import Simulator
from repro.types import InstanceId, Value

__all__ = ["AcceptorStorage"]

#: Bytes of metadata persisted alongside each vote (instance id, ballot, CRC).
_RECORD_OVERHEAD_BYTES = 64


class AcceptorStorage:
    """Per-ring stable storage of one acceptor."""

    def __init__(
        self,
        sim: Simulator,
        mode: StorageMode = StorageMode.MEMORY,
        disk: Optional[Disk] = None,
    ) -> None:
        self.sim = sim
        self.mode = mode
        if disk is None and mode is not StorageMode.MEMORY:
            disk = disk_for_mode(sim, mode)
        self.disk = disk
        self._records: Dict[InstanceId, InstanceRecord] = {}
        self._trimmed_up_to: Optional[InstanceId] = None
        self._highest_instance: Optional[InstanceId] = None
        self.bytes_logged = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def trimmed_up_to(self) -> Optional[InstanceId]:
        """Highest instance removed by trimming, or ``None`` if never trimmed."""
        return self._trimmed_up_to

    @property
    def highest_instance(self) -> Optional[InstanceId]:
        """Highest instance ever recorded, or ``None`` if the log is empty."""
        return self._highest_instance

    def record(self, instance: InstanceId) -> InstanceRecord:
        """The (mutable) record for ``instance``, creating it if absent."""
        if self._trimmed_up_to is not None and instance <= self._trimmed_up_to:
            raise StorageError(f"instance {instance} has been trimmed")
        if instance not in self._records:
            self._records[instance] = InstanceRecord(instance)
        return self._records[instance]

    def has_instance(self, instance: InstanceId) -> bool:
        return instance in self._records

    def is_trimmed(self, instance: InstanceId) -> bool:
        return self._trimmed_up_to is not None and instance <= self._trimmed_up_to

    def instances(self) -> List[InstanceId]:
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _persist(self, nbytes: int, callback: Optional[Callable[[], None]]) -> float:
        """Persist ``nbytes`` according to the storage mode; return the ack time."""
        self.writes += 1
        self.bytes_logged += nbytes
        if self.mode is StorageMode.MEMORY or self.disk is None:
            done = self.sim.now
            if callback is not None:
                self.sim.schedule_at(done, callback)
            return done
        if self.mode.synchronous:
            return self.disk.write(nbytes, callback)
        return self.disk.write_async(nbytes, callback)

    def log_promise(
        self,
        instance: InstanceId,
        ballot: Ballot,
        callback: Optional[Callable[[], None]] = None,
    ) -> float:
        """Record a Phase 1 promise and persist it.  Returns the ack time."""
        record = self.record(instance)
        record.promise(ballot)
        return self._persist(_RECORD_OVERHEAD_BYTES, callback)

    def log_vote(
        self,
        instance: InstanceId,
        ballot: Ballot,
        value: Value,
        callback: Optional[Callable[[], None]] = None,
    ) -> float:
        """Record a Phase 2 vote (accept) and persist it.  Returns the ack time."""
        record = self.record(instance)
        record.accept(ballot, value)
        if self._highest_instance is None or instance > self._highest_instance:
            self._highest_instance = instance
        nbytes = _RECORD_OVERHEAD_BYTES + value.size_bytes
        return self._persist(nbytes, callback)

    def log_votes_range(
        self,
        first: InstanceId,
        count: int,
        ballot: Ballot,
        value: Value,
        callback: Optional[Callable[[], None]] = None,
    ) -> float:
        """Record votes for ``count`` consecutive instances with one persisted write.

        Used for skip ranges: the coordinator skips several consensus
        instances with a single message, and the acceptors likewise persist
        the whole range as one log record.
        """
        if count < 1:
            raise StorageError("a vote range must cover at least one instance")
        last_ack = self.sim.now
        for offset in range(count):
            instance = first + offset
            record = self.record(instance)
            record.accept(ballot, value)
            if self._highest_instance is None or instance > self._highest_instance:
                self._highest_instance = instance
        nbytes = _RECORD_OVERHEAD_BYTES + value.size_bytes
        return self._persist(nbytes, callback) if count > 0 else last_ack

    def mark_decided(self, instance: InstanceId) -> None:
        """Mark an instance as decided (used when the decision passes by)."""
        if self.is_trimmed(instance):
            return
        if instance in self._records:
            self._records[instance].mark_decided()

    # ------------------------------------------------------------------
    # retransmission and trimming
    # ------------------------------------------------------------------
    def accepted_value(self, instance: InstanceId) -> Optional[Value]:
        """The value this acceptor voted for in ``instance``, if any."""
        if self.is_trimmed(instance):
            raise StorageError(f"instance {instance} has been trimmed")
        record = self._records.get(instance)
        return record.accepted_value if record is not None else None

    def read_range(
        self, first: InstanceId, last: InstanceId, decided_only: bool = False
    ) -> List[Tuple[InstanceId, Value]]:
        """Accepted values for instances in ``[first, last]`` (for retransmission).

        With ``decided_only`` the result is restricted to instances this
        acceptor knows were decided -- the learner gap-repair path must not
        deliver a value that never reached a quorum.  Raises
        :class:`StorageError` if any requested instance has been trimmed --
        the recovering replica must then fetch a newer checkpoint.
        """
        if first > last:
            return []
        if self._trimmed_up_to is not None and first <= self._trimmed_up_to:
            raise StorageError(
                f"instances up to {self._trimmed_up_to} have been trimmed, requested from {first}"
            )
        result: List[Tuple[InstanceId, Value]] = []
        for instance in sorted(self._records):
            if instance < first or instance > last:
                continue
            record = self._records[instance]
            if record.accepted_value is None:
                continue
            if decided_only and not record.decided:
                continue
            result.append((instance, record.accepted_value))
        return result

    def trim(self, up_to: InstanceId) -> int:
        """Delete all records for instances ``<= up_to``.  Returns how many were removed."""
        removed = 0
        for instance in [i for i in self._records if i <= up_to]:
            del self._records[instance]
            removed += 1
        if self._trimmed_up_to is None or up_to > self._trimmed_up_to:
            self._trimmed_up_to = up_to
        return removed

    def log_size_bytes(self) -> int:
        """Approximate size of the live (untrimmed) log."""
        return sum(
            _RECORD_OVERHEAD_BYTES
            + (record.accepted_value.size_bytes if record.accepted_value is not None else 0)
            for record in self._records.values()
        )
