"""Engine #1: Multi-Ring Paxos behind the :class:`OrderingEngine` seam.

A thin adapter over :class:`~repro.multiring.deployment.Deployment` -- the
protocol stack is untouched and the adapter adds nothing to the per-message
hot path (submission goes straight to ``Deployment.multicast``, deliveries
ride the node's existing per-group callback fan-out).  The golden delivery
traces and the perf regression gate pin that down.

Multi-group addressing: Multi-Ring Paxos orders each ring independently and
achieves multi-group delivery by *subscription* -- a learner subscribes to
several rings and merges them deterministically.  A message addressed to
more than one group therefore needs a ring whose subscribers span all of its
destinations.  The adapter routes such messages to a designated ring (see
:meth:`MultiRingEngine.set_multi_group_route`), typically a "global" ring
every learner subscribes to.  That ring is exactly where Multi-Ring Paxos
stops being *genuine*: its messages reach every subscriber, destinations or
not, which is the trade-off the shootout bench measures against the
White-Box engine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.engines.base import DeliveryCallback, EngineSpec, GroupDescriptor, OrderingEngine
from repro.errors import ConfigurationError, MulticastError
from repro.types import GroupId, Value

__all__ = ["MultiRingEngine"]


class MultiRingEngine(OrderingEngine):
    """The paper's Multi-Ring Paxos stack as a pluggable ordering engine."""

    name = "multiring"
    supports_live = True

    def __init__(self) -> None:
        self.runtime = None
        self.deployment = None
        self._multi_route: Optional[GroupId] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def build(self, runtime, config):
        from repro.multiring.deployment import Deployment

        if self.deployment is not None:
            raise ConfigurationError("engine already built")
        self.runtime = runtime
        self.deployment = Deployment(runtime, config)
        return self.deployment

    def add_group(self, spec: EngineSpec) -> GroupDescriptor:
        from repro.multiring.deployment import RingSpec

        options = dict(spec.options)
        ring_config = options.pop("ring_config", None)
        defer_learners = options.pop("defer_learners", None)
        multi_group_route = options.pop("multi_group_route", False)
        if options:
            raise ConfigurationError(
                f"unknown multiring group options {sorted(options)!r}"
            )
        self.deployment.add_ring(
            RingSpec(
                group=spec.group,
                members=list(spec.members),
                acceptors=list(spec.acceptors) if spec.acceptors is not None else None,
                proposers=list(spec.proposers) if spec.proposers is not None else None,
                learners=list(spec.learners) if spec.learners is not None else None,
                coordinator=spec.coordinator,
                storage_mode=spec.storage_mode,
            ),
            sites=spec.sites,
            ring_config=ring_config,
            defer_learners=defer_learners,
        )
        if multi_group_route:
            self.set_multi_group_route(spec.group)
        return self.descriptor(spec.group)

    def set_multi_group_route(self, group: GroupId) -> None:
        """Route messages addressed to several groups through ``group``'s ring.

        The ring's learner set must cover every possible destination; the
        deployment builder (not the engine) is responsible for subscribing
        all learners to it.
        """
        if group not in self.deployment.rings:
            raise ConfigurationError(f"multi-group route {group!r} is not a declared ring")
        self._multi_route = group

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def multicast(
        self,
        dests: Tuple[GroupId, ...],
        payload: Any,
        size_bytes: int,
        via: Optional[str] = None,
    ) -> Value:
        if len(dests) == 1:
            return self.deployment.multicast(dests[0], payload, size_bytes, via=via)
        if self._multi_route is None:
            raise MulticastError(
                "multi-group messages need a designated ring: declare one with "
                "multi_group_route=True (or set_multi_group_route) whose learners "
                "cover every destination"
            )
        return self.deployment.multicast(self._multi_route, payload, size_bytes, via=via)

    def on_deliver(self, group: GroupId, callback: DeliveryCallback,
                   node: Optional[str] = None) -> str:
        descriptor = self.descriptor(group)
        if not descriptor.learners:
            raise MulticastError(f"group {group!r} has no learners to deliver at")
        witness = node or descriptor.learners[0]
        self.deployment.node(witness).on_deliver(callback, group=group)
        return witness

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def groups(self) -> List[GroupId]:
        return self.deployment.groups()

    def descriptor(self, group: GroupId) -> GroupDescriptor:
        ring = self.deployment.ring(group)
        spec = self.deployment.ring_specs[group]
        return GroupDescriptor(
            group=group,
            members=list(spec.members),
            proposers=list(ring.proposers),
            acceptors=list(ring.acceptors),
            learners=list(ring.learners),
            coordinator=ring.coordinator,
        )

    def node(self, name: str):
        return self.deployment.node(name)

    def stats(self) -> Dict[str, Any]:
        nodes = self.deployment.nodes
        return {
            "engine": self.name,
            "deliveries": {name: node.deliveries_count for name, node in nodes.items()},
            "messages_sent": {name: node.messages_sent for name, node in nodes.items()},
            "skips": {
                name: sum(node.skip_statistics().values())
                for name, node in nodes.items()
                if node.skip_statistics()
            },
            "multi_group_route": self._multi_route,
        }
