"""Pluggable ordering engines behind the :class:`~repro.api.AtomicMulticast` facade.

An *ordering engine* is one complete atomic multicast protocol implementing
the :class:`~repro.engines.base.OrderingEngine` seam.  Two engines ship with
the library:

* ``"multiring"`` -- Multi-Ring Paxos (the paper's protocol): one Ring Paxos
  instance per group, deterministic learner-side merge, rate leveling.
  Multi-group messages ride a designated ring all learners subscribe to.
* ``"whitebox"`` -- White-Box Atomic Multicast (Gotsman, Lefort, Chockler,
  arXiv 1904.07171): fault-tolerant Skeen.  Each group's leader assigns a
  replicated local timestamp, destination groups exchange proposals, the
  final timestamp is the maximum, and a message is delivered once its
  timestamp is globally minimal.  *Genuine*: only destination groups ever
  process a message.

Tests register fakes with :func:`register`; the facade resolves engines with
:func:`get`, which raises :class:`~repro.errors.ConfigurationError` naming
the registered engines for typos.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.engines.base import DeliveryCallback, EngineSpec, GroupDescriptor, OrderingEngine
from repro.errors import ConfigurationError

__all__ = [
    "OrderingEngine",
    "EngineSpec",
    "GroupDescriptor",
    "DeliveryCallback",
    "register",
    "unregister",
    "get",
    "create",
    "available",
]

_REGISTRY: Dict[str, Callable[[], OrderingEngine]] = {}


def register(name: str, factory: Callable[[], OrderingEngine], *,
             replace: bool = False) -> None:
    """Register an engine ``factory`` (usually the engine class) under ``name``.

    Used by tests to plug in fakes and by downstream code to add protocols
    without touching this package.  Re-registering an existing name raises
    unless ``replace=True``.
    """
    if not name:
        raise ConfigurationError("an engine needs a non-empty name")
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"engine {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = factory


def unregister(name: str) -> None:
    """Remove a registered engine (built-ins can be re-imported back)."""
    _REGISTRY.pop(name, None)


def available() -> List[str]:
    """Registered engine names, sorted."""
    return sorted(_REGISTRY)


def get(name: str) -> Callable[[], OrderingEngine]:
    """The factory registered under ``name``.

    Raises :class:`~repro.errors.ConfigurationError` listing every
    registered engine when ``name`` is unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown ordering engine {name!r}; registered engines: {available()}"
        ) from None


def create(name: str) -> OrderingEngine:
    """Instantiate the engine registered under ``name``."""
    return get(name)()


def _register_builtins() -> None:
    from repro.engines.multiring import MultiRingEngine
    from repro.engines.whitebox import WhiteBoxEngine

    register(MultiRingEngine.name, MultiRingEngine, replace=True)
    register(WhiteBoxEngine.name, WhiteBoxEngine, replace=True)


_register_builtins()
