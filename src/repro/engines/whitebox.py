"""Engine #2: White-Box Atomic Multicast (fault-tolerant Skeen).

Implements the protocol of *"White-Box Atomic Multicast"* (Gotsman, Lefort,
Chockler -- DSN 2019, arXiv 1904.07171): a genuine atomic multicast obtained
by integrating Skeen's classic timestamp-based multicast with Paxos-style
replication *inside* each destination group, instead of layering multicast
on top of black-box consensus.

For a message ``m`` addressed to destination groups ``dests``:

1. **Submit** -- the submitting proposer sends ``m`` to the *leader* of every
   destination group (:class:`WbSubmit`).  Non-destination groups never see
   the message: the protocol is *genuine* by construction, which is exactly
   what the shootout bench measures against Multi-Ring Paxos' global ring.
2. **Local timestamp + replication** -- each destination leader assigns the
   next value of its group's logical clock as ``m``'s *local timestamp* and
   replicates the (timestamp, message) record to the group members under its
   ballot (:class:`WbAccept`), waiting for acknowledgements from a majority
   of the group's acceptors (:class:`WbAccepted`).  The acceptor-side vote
   bookkeeping reuses :class:`repro.paxos.types.InstanceRecord` keyed by the
   value uid -- the same promise/accept discipline Ring Paxos acceptors use.
3. **Timestamp exchange** -- once replicated, the leader sends its proposed
   timestamp to the leaders of the other destination groups
   (:class:`WbTimestamp`).  The *final* timestamp of ``m`` is the maximum
   over all destination groups' proposals, so every destination computes the
   same one.
4. **Commit + delivery** -- the leader broadcasts the final timestamp to the
   group (:class:`WbCommit`).  A learner delivers committed messages in
   ``(timestamp, uid)`` order, and may deliver ``m`` only when no message
   still in the *proposed* state has a smaller key: a proposed local
   timestamp is a lower bound on that message's final timestamp, so nothing
   can later commit below ``m``'s key.  This is Skeen's delivery condition;
   collision-free messages complete in two intra-group round trips plus one
   leader-to-leader exchange.

Soundness of the blocking rule leans on two properties this runtime
provides: per-channel FIFO delivery (the sim network models TCP; the live
transport *is* TCP) so a follower always sees a record's ``WbAccept`` before
its ``WbCommit``, and leader serialization -- a leader max-updates its clock
on every commit before assigning the next local timestamp.

Scope notes, deliberate for engine v1: the leader of each group is static
(``Ballot(1, leader)``; no failover election -- crash-stop of a leader
blocks its group, as the paper's protocol without its recovery extension),
and handlers run without the sim CPU cost model (latency is dominated by the
network model; the multiring engine's per-message CPU charge of ~4us is
small against the 20us network floor).  Both are documented trade-offs the
conformance suite respects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from heapq import heappush, heappop
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.engines.base import DeliveryCallback, EngineSpec, GroupDescriptor, OrderingEngine
from repro.errors import ConfigurationError, MulticastError
from repro.multiring.merge import Delivery
from repro.net.message import ProtocolMessage
from repro.obs import obs_of
from repro.paxos.types import Ballot, InstanceRecord
from repro.runtime.actor import Process
from repro.runtime.interfaces import Runtime
from repro.types import GroupId, Value

__all__ = [
    "WbSubmit",
    "WbAccept",
    "WbAccepted",
    "WbTimestamp",
    "WbCommit",
    "WhiteBoxNode",
    "WhiteBoxDeployment",
    "WhiteBoxEngine",
]


# ----------------------------------------------------------------------
# wire messages (registered in the codec's append-only table, ids 50-54)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class WbSubmit(ProtocolMessage):
    """Proposer -> destination-group leader: order ``value`` in ``group``."""

    group: GroupId
    dests: Tuple[GroupId, ...]
    value: Value


@dataclass(slots=True)
class WbAccept(ProtocolMessage):
    """Leader -> group members: replicate the (timestamp, value) record."""

    group: GroupId
    uid: int
    ballot: Ballot
    ts: int
    dests: Tuple[GroupId, ...]
    value: Value


@dataclass(slots=True)
class WbAccepted(ProtocolMessage):
    """Acceptor -> leader: record accepted under ``ballot``."""

    group: GroupId
    uid: int
    ballot: Ballot
    ts: int


@dataclass(slots=True)
class WbTimestamp(ProtocolMessage):
    """Leader of ``origin`` -> leader of ``group``: proposed local timestamp."""

    group: GroupId
    origin: GroupId
    uid: int
    ts: int


@dataclass(slots=True)
class WbCommit(ProtocolMessage):
    """Leader -> group members: final (maximum) timestamp; deliver in key order."""

    group: GroupId
    uid: int
    ts: int


# ----------------------------------------------------------------------
# per-message and per-group state
# ----------------------------------------------------------------------
class _Record:
    """One in-flight message at one group member."""

    __slots__ = (
        "uid", "value", "dests", "ts", "committed", "quorum_reached",
        "acks", "proposals", "paxos",
    )

    def __init__(self, uid: int) -> None:
        self.uid = uid
        #: None while the record is an *embryo* created by a WbTimestamp that
        #: raced ahead of the WbSubmit at this leader.  Embryos carry no local
        #: timestamp yet and never block delivery: the local timestamp they
        #: will eventually get exceeds the group clock at creation time.
        self.value: Optional[Value] = None
        self.dests: Optional[Tuple[GroupId, ...]] = None
        #: Current ordering key timestamp: proposed, then final once committed.
        self.ts = 0
        self.committed = False
        self.quorum_reached = False
        #: Leader only: acceptor names that acknowledged the replication.
        self.acks: Set[str] = set()
        #: Leader only: destination group -> proposed local timestamp.
        self.proposals: Dict[GroupId, int] = {}
        #: Acceptor vote state, reusing the Ring Paxos per-instance record
        #: (keyed by value uid instead of a ring instance number).
        self.paxos = InstanceRecord(instance=uid)


class _WbGroup:
    """One node's view of one multicast group it is a member of."""

    __slots__ = (
        "descriptor", "is_leader", "is_acceptor", "is_learner", "quorum",
        "ballot", "clock", "records", "heap", "finished", "delivered_seq",
        "commits",
    )

    def __init__(self, descriptor: GroupDescriptor, node_name: str) -> None:
        self.descriptor = descriptor
        self.is_leader = descriptor.coordinator == node_name
        self.is_acceptor = node_name in descriptor.acceptors
        self.is_learner = node_name in descriptor.learners
        self.quorum = descriptor.quorum_size
        #: Static leader ballot (no failover in engine v1).
        self.ballot = Ballot(1, descriptor.coordinator)
        #: Skeen logical clock: max-updated on every timestamp seen.
        self.clock = 0
        self.records: Dict[int, _Record] = {}
        #: (timestamp, uid) delivery keys; lazily pruned of stale entries.
        self.heap: List[Tuple[int, int]] = []
        #: Uids fully processed here (delivered, or committed on a
        #: non-learner); guards against stale/duplicate protocol messages.
        self.finished: Set[int] = set()
        self.delivered_seq = 0
        self.commits = 0


class WhiteBoxNode(Process):
    """A White-Box Atomic Multicast group member (leader and/or follower)."""

    def __init__(
        self,
        world: Runtime,
        deployment: "WhiteBoxDeployment",
        name: str,
        site: Optional[str] = None,
    ) -> None:
        super().__init__(world, name, site)
        self._deployment = deployment
        #: Shared group directory (group -> descriptor); static config data,
        #: the only thing a node needs to route submit/timestamp traffic.
        self._directory = deployment.directory
        self._sim = world.sim
        self.obs = obs_of(world)
        self._tracer = self.obs.tracer
        self.obs.metrics.add_collector(self._metric_samples)
        self.wb_groups: Dict[GroupId, _WbGroup] = {}
        self.deliveries_count = 0
        self._delivery_callbacks: List[DeliveryCallback] = []
        self._group_delivery_callbacks: Dict[GroupId, List[DeliveryCallback]] = {}

    # ------------------------------------------------------------------
    # membership / application surface
    # ------------------------------------------------------------------
    def join_group(self, descriptor: GroupDescriptor) -> _WbGroup:
        state = self.wb_groups.get(descriptor.group)
        if state is None:
            state = _WbGroup(descriptor, self.name)
            self.wb_groups[descriptor.group] = state
        return state

    def on_deliver(self, callback: DeliveryCallback, group: Optional[GroupId] = None) -> None:
        if group is None:
            self._delivery_callbacks.append(callback)
        else:
            self._group_delivery_callbacks.setdefault(group, []).append(callback)

    def submit(self, value: Value, dests: Tuple[GroupId, ...]) -> None:
        """Start ordering ``value`` at every destination group's leader."""
        for group in dests:
            leader = self._directory[group].coordinator
            message = WbSubmit(group=group, dests=dests, value=value)
            if leader == self.name:
                self._on_submit(self.name, message)
            else:
                self.send(leader, message)

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def on_message(self, sender: str, payload: Any) -> None:
        kind = type(payload)
        if kind is WbAccept:
            self._on_accept(sender, payload)
        elif kind is WbAccepted:
            self._on_accepted(sender, payload)
        elif kind is WbCommit:
            self._on_commit(sender, payload)
        elif kind is WbTimestamp:
            self._on_timestamp(sender, payload)
        elif kind is WbSubmit:
            self._on_submit(sender, payload)

    # ------------------------------------------------------------------
    # leader side
    # ------------------------------------------------------------------
    def _on_submit(self, sender: str, msg: WbSubmit) -> None:
        state = self.wb_groups.get(msg.group)
        if state is None:
            return
        if not state.is_leader:
            # Static-leader v1: re-route a mis-addressed submit.
            self.send(state.descriptor.coordinator, msg)
            return
        uid = msg.value.uid
        if uid in state.finished:
            return
        record = state.records.get(uid)
        if record is not None and record.value is not None:
            return  # duplicate submit
        if record is None:
            record = _Record(uid)
            state.records[uid] = record
        record.value = msg.value
        record.dests = msg.dests
        state.clock += 1
        record.ts = state.clock
        record.paxos.accept(state.ballot, msg.value)
        record.acks.add(self.name)
        trace_id = msg.value.trace
        if trace_id is not None and self._tracer.enabled:
            now = self._sim.now
            self._tracer.record(
                trace_id, "propose", self.name, msg.value.created_at, now,
                group=msg.group,
            )
            self._tracer.mark(trace_id, f"wbrep:{msg.group}", now)
        if state.is_learner:
            heappush(state.heap, (record.ts, uid))
        accept = WbAccept(
            group=msg.group, uid=uid, ballot=state.ballot, ts=record.ts,
            dests=msg.dests, value=msg.value,
        )
        for member in state.descriptor.members:
            if member != self.name:
                self.send(member, accept)
        self._maybe_quorum(state, record)

    def _on_accepted(self, sender: str, msg: WbAccepted) -> None:
        state = self.wb_groups.get(msg.group)
        if state is None or not state.is_leader or msg.uid in state.finished:
            return
        record = state.records.get(msg.uid)
        if record is None or msg.ballot != state.ballot:
            return
        record.acks.add(sender)
        self._maybe_quorum(state, record)

    def _maybe_quorum(self, state: _WbGroup, record: _Record) -> None:
        if record.quorum_reached or record.committed:
            return
        acceptors = state.descriptor.acceptors
        if sum(1 for name in record.acks if name in acceptors) < state.quorum:
            return
        record.quorum_reached = True
        group = state.descriptor.group
        trace_id = record.value.trace if record.value is not None else None
        if trace_id is not None and self._tracer.enabled:
            now = self._sim.now
            start = self._tracer.take_mark(trace_id, f"wbrep:{group}")
            if start is not None:
                self._tracer.record(trace_id, "phase2", self.name, start, now, group=group)
            self._tracer.mark(trace_id, f"wbdec:{group}", now)
        record.proposals[group] = record.ts
        for dest in record.dests:
            if dest == group:
                continue
            leader = self._directory[dest].coordinator
            message = WbTimestamp(group=dest, origin=group, uid=record.uid, ts=record.ts)
            if leader == self.name:
                self._on_timestamp(self.name, message)
            else:
                self.send(leader, message)
        self._maybe_commit(state, record)

    def _on_timestamp(self, sender: str, msg: WbTimestamp) -> None:
        state = self.wb_groups.get(msg.group)
        if state is None or not state.is_leader or msg.uid in state.finished:
            return
        record = state.records.get(msg.uid)
        if record is None:
            record = _Record(msg.uid)  # embryo: WbTimestamp beat WbSubmit here
            state.records[msg.uid] = record
        record.proposals[msg.origin] = msg.ts
        self._maybe_commit(state, record)

    def _maybe_commit(self, state: _WbGroup, record: _Record) -> None:
        if record.committed or not record.quorum_reached or record.dests is None:
            return
        if any(dest not in record.proposals for dest in record.dests):
            return
        final_ts = max(record.proposals.values())
        group = state.descriptor.group
        trace_id = record.value.trace if record.value is not None else None
        if trace_id is not None and self._tracer.enabled:
            now = self._sim.now
            start = self._tracer.take_mark(trace_id, f"wbdec:{group}")
            if start is not None:
                self._tracer.record(trace_id, "decide", self.name, start, now, group=group)
        commit = WbCommit(group=group, uid=record.uid, ts=final_ts)
        for member in state.descriptor.members:
            if member != self.name:
                self.send(member, commit)
        self._commit_local(state, record, final_ts)

    # ------------------------------------------------------------------
    # follower side
    # ------------------------------------------------------------------
    def _on_accept(self, sender: str, msg: WbAccept) -> None:
        state = self.wb_groups.get(msg.group)
        if state is None or msg.uid in state.finished:
            return
        record = state.records.get(msg.uid)
        if record is None:
            record = _Record(msg.uid)
            state.records[msg.uid] = record
        elif record.value is not None:
            return  # duplicate replication
        record.value = msg.value
        record.dests = msg.dests
        if not record.paxos.can_accept(msg.ballot):
            return
        record.paxos.accept(msg.ballot, msg.value)
        record.ts = msg.ts
        if msg.ts > state.clock:
            state.clock = msg.ts
        if state.is_learner:
            heappush(state.heap, (msg.ts, msg.uid))
        if state.is_acceptor:
            self.send(
                sender,
                WbAccepted(group=msg.group, uid=msg.uid, ballot=msg.ballot, ts=msg.ts),
            )

    def _on_commit(self, sender: str, msg: WbCommit) -> None:
        state = self.wb_groups.get(msg.group)
        if state is None or msg.uid in state.finished:
            return
        record = state.records.get(msg.uid)
        if record is None or record.value is None or record.committed:
            # FIFO leader channels make commit-before-accept impossible; a
            # record can only be missing for stale duplicates.
            return
        self._commit_local(state, record, msg.ts)

    def _commit_local(self, state: _WbGroup, record: _Record, final_ts: int) -> None:
        record.committed = True
        record.ts = final_ts
        record.paxos.mark_decided()
        if final_ts > state.clock:
            state.clock = final_ts
        state.commits += 1
        if not state.is_learner:
            # Acceptor-only members keep no delivery queue; the record is done.
            del state.records[record.uid]
            state.finished.add(record.uid)
            return
        heappush(state.heap, (final_ts, record.uid))
        trace_id = record.value.trace if record.value is not None else None
        if trace_id is not None and self._tracer.enabled:
            self._tracer.mark(
                trace_id, f"wbwait:{state.descriptor.group}:{self.name}", self._sim.now
            )
        self._try_deliver(state)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _try_deliver(self, state: _WbGroup) -> None:
        heap = state.heap
        records = state.records
        while heap:
            ts, uid = heap[0]
            record = records.get(uid)
            if record is None or record.ts != ts:
                heappop(heap)  # delivered or re-keyed by a larger final ts
                continue
            if not record.committed:
                # The globally minimal key is still only proposed: its final
                # timestamp can only grow, so nothing may overtake it -- block.
                return
            heappop(heap)
            self._deliver(state, record)

    def _deliver(self, state: _WbGroup, record: _Record) -> None:
        group = state.descriptor.group
        del state.records[record.uid]
        state.finished.add(record.uid)
        delivery = Delivery(group=group, instance=state.delivered_seq, value=record.value)
        state.delivered_seq += 1
        self.deliveries_count += 1
        self._deployment.note_delivery(group, record.uid)
        trace_id = record.value.trace
        if trace_id is not None and self._tracer.enabled:
            self._trace_delivery(trace_id, delivery)
            return
        for callback in self._delivery_callbacks:
            callback(delivery)
        group_callbacks = self._group_delivery_callbacks.get(group)
        if group_callbacks is not None:
            for callback in group_callbacks:
                callback(delivery)

    def _trace_delivery(self, trace_id: str, delivery: Delivery) -> None:
        tracer = self._tracer
        released_at = self._sim.now
        committed_at = tracer.take_mark(trace_id, f"wbwait:{delivery.group}:{self.name}")
        if committed_at is not None:
            tracer.record(
                trace_id, "merge-wait", self.name, committed_at, released_at,
                group=delivery.group, instance=delivery.instance,
            )
        for callback in self._delivery_callbacks:
            callback(delivery)
        group_callbacks = self._group_delivery_callbacks.get(delivery.group)
        if group_callbacks is not None:
            for callback in group_callbacks:
                callback(delivery)
        tracer.record(
            trace_id, "apply", self.name, released_at, self._sim.now,
            group=delivery.group, instance=delivery.instance,
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _metric_samples(self):
        node = self.name
        samples = [
            ("wb_messages_sent_total", {"node": node}, self.messages_sent),
            ("wb_deliveries_total", {"node": node}, self.deliveries_count),
        ]
        for group, state in self.wb_groups.items():
            labels = {"node": node, "group": group}
            samples.append(("wb_commits_total", labels, state.commits))
            samples.append(("wb_clock", labels, state.clock))
            samples.append(("wb_pending_records", labels, len(state.records)))
        return samples


# ----------------------------------------------------------------------
# deployment + engine adapter
# ----------------------------------------------------------------------
class WhiteBoxDeployment:
    """A set of White-Box nodes and the groups connecting them.

    Mirrors :class:`~repro.multiring.deployment.Deployment`'s surface
    (``add_group``/``multicast``/``node``/``run``) so benches and tests drive
    both engines identically.  Also keeps the *genuineness ledger*: every
    submitted uid's destination set, checked off as learners deliver, so the
    shootout can assert that no delivery ever happens outside a destination
    group (``non_destination_deliveries`` stays 0 by construction).
    """

    def __init__(self, world: Runtime, config: Any = None) -> None:
        self.world = world
        self.config = config
        self.nodes: Dict[str, WhiteBoxNode] = {}
        self.directory: Dict[GroupId, GroupDescriptor] = {}
        self._proposer_rr: Dict[GroupId, "itertools.cycle"] = {}
        #: uid -> (destination set, outstanding learner deliveries).
        self._expected: Dict[int, Tuple[frozenset, int]] = {}
        self.deliveries = 0
        self.non_destination_deliveries = 0

    # -- nodes ----------------------------------------------------------
    def add_node(self, name: str, site: Optional[str] = None) -> WhiteBoxNode:
        node = self.nodes.get(name)
        if node is None:
            node = WhiteBoxNode(self.world, self, name, site=site)
            self.nodes[name] = node
        return node

    def node(self, name: str) -> WhiteBoxNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    # -- groups ---------------------------------------------------------
    def add_group(
        self,
        descriptor: GroupDescriptor,
        sites: Optional[Dict[str, str]] = None,
    ) -> GroupDescriptor:
        if descriptor.group in self.directory:
            raise ConfigurationError(f"group {descriptor.group!r} already exists")
        if descriptor.coordinator not in descriptor.acceptors:
            raise ConfigurationError(
                f"whitebox group {descriptor.group!r}: leader "
                f"{descriptor.coordinator!r} must be one of its acceptors"
            )
        self.directory[descriptor.group] = descriptor
        for member in descriptor.members:
            site = sites.get(member) if sites else None
            self.add_node(member, site=site).join_group(descriptor)
        self._proposer_rr[descriptor.group] = itertools.cycle(descriptor.proposers)
        return descriptor

    def groups(self) -> List[GroupId]:
        return list(self.directory)

    def descriptor(self, group: GroupId) -> GroupDescriptor:
        try:
            return self.directory[group]
        except KeyError:
            raise ConfigurationError(f"unknown group {group!r}") from None

    # -- traffic --------------------------------------------------------
    def multicast(
        self,
        dests: Tuple[GroupId, ...],
        payload: Any,
        size_bytes: int,
        via: Optional[str] = None,
    ) -> Value:
        dests = tuple(sorted(set(dests)))
        if not dests:
            raise MulticastError("a multicast needs at least one destination group")
        for group in dests:
            if group not in self.directory:
                raise MulticastError(f"unknown group {group!r}")
        proposer = via or next(self._proposer_rr[dests[0]])
        node = self.node(proposer)
        value = Value.create(
            payload, size_bytes, proposer=proposer, created_at=self.world.sim.now
        )
        tracer = obs_of(self.world).tracer
        if tracer.enabled:
            value.trace = tracer.sample(value.proposer, value.uid)
        expected = sum(len(self.directory[g].learners) for g in dests)
        self._expected[value.uid] = (frozenset(dests), expected)
        node.submit(value, dests)
        return value

    def note_delivery(self, group: GroupId, uid: int) -> None:
        self.deliveries += 1
        entry = self._expected.get(uid)
        if entry is None:
            return
        dests, outstanding = entry
        if group not in dests:
            self.non_destination_deliveries += 1
        outstanding -= 1
        if outstanding <= 0:
            del self._expected[uid]
        else:
            self._expected[uid] = (dests, outstanding)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        self.world.start()

    def run(self, until: Optional[float] = None) -> float:
        return self.world.run(until=until)


class WhiteBoxEngine(OrderingEngine):
    """White-Box Atomic Multicast as a pluggable ordering engine."""

    name = "whitebox"
    supports_live = False  # sim-only in v1; needs leader failover for live use

    def __init__(self) -> None:
        self.runtime = None
        self.deployment: Optional[WhiteBoxDeployment] = None

    # -- lifecycle ------------------------------------------------------
    def build(self, runtime, config) -> WhiteBoxDeployment:
        if self.deployment is not None:
            raise ConfigurationError("engine already built")
        self.runtime = runtime
        self.deployment = WhiteBoxDeployment(runtime, config)
        return self.deployment

    def add_group(self, spec: EngineSpec) -> GroupDescriptor:
        options = dict(spec.options)
        # multi_group_route is a multiring routing hint; whitebox is genuine
        # for every destination set, so the hint is meaningless but harmless.
        options.pop("multi_group_route", None)
        if options.pop("ring_config", None) is not None:
            raise ConfigurationError(
                "ring_config tunes Ring Paxos; the whitebox engine has no rings"
            )
        if options:
            raise ConfigurationError(f"unknown whitebox group options {sorted(options)!r}")
        descriptor = GroupDescriptor(
            group=spec.group,
            members=list(spec.members),
            proposers=spec.resolved_proposers(),
            acceptors=spec.resolved_acceptors(),
            learners=spec.resolved_learners(),
            coordinator=spec.resolved_coordinator(),
        )
        return self.deployment.add_group(descriptor, sites=spec.sites)

    # -- traffic --------------------------------------------------------
    def multicast(
        self,
        dests: Tuple[GroupId, ...],
        payload: Any,
        size_bytes: int,
        via: Optional[str] = None,
    ) -> Value:
        return self.deployment.multicast(dests, payload, size_bytes, via=via)

    def on_deliver(self, group: GroupId, callback: DeliveryCallback,
                   node: Optional[str] = None) -> str:
        descriptor = self.deployment.descriptor(group)
        if not descriptor.learners:
            raise MulticastError(f"group {group!r} has no learners to deliver at")
        witness = node or descriptor.learners[0]
        self.deployment.node(witness).on_deliver(callback, group=group)
        return witness

    # -- introspection --------------------------------------------------
    def groups(self) -> List[GroupId]:
        return self.deployment.groups()

    def descriptor(self, group: GroupId) -> GroupDescriptor:
        return self.deployment.descriptor(group)

    def node(self, name: str) -> WhiteBoxNode:
        return self.deployment.node(name)

    def stats(self) -> Dict[str, Any]:
        nodes = self.deployment.nodes
        return {
            "engine": self.name,
            "deliveries": {name: node.deliveries_count for name, node in nodes.items()},
            "messages_sent": {name: node.messages_sent for name, node in nodes.items()},
            "commits": {
                name: sum(state.commits for state in node.wb_groups.values())
                for name, node in nodes.items()
            },
            "genuine": True,
            "non_destination_deliveries": self.deployment.non_destination_deliveries,
        }
