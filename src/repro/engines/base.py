"""The ordering-engine seam: what every atomic multicast protocol must expose.

The paper's thesis is that *atomic multicast* -- not any particular protocol
-- is the right abstraction for global systems.  Multi-Ring Paxos is one
implementation; White-Box Atomic Multicast is another; FlexCast would be a
third.  :class:`OrderingEngine` is the seam between the public
:class:`~repro.api.AtomicMulticast` facade (and the benchmarks, chaos
campaigns and conformance tests behind it) and whichever protocol actually
orders the messages.

An engine's life cycle:

1. the facade instantiates the registered engine class (no arguments),
2. :meth:`OrderingEngine.build` binds it to a runtime and a protocol
   configuration, returning the engine-specific deployment object,
3. :meth:`OrderingEngine.add_group` declares multicast groups from
   :class:`EngineSpec` descriptions (group name, members, per-member roles),
4. traffic flows through :meth:`OrderingEngine.submit` /
   :meth:`OrderingEngine.multicast` and arrives via
   :meth:`OrderingEngine.on_deliver` callbacks as
   :class:`~repro.multiring.merge.Delivery` objects,
5. :meth:`OrderingEngine.stats`, :meth:`OrderingEngine.observe` and
   :meth:`OrderingEngine.inject` expose measurement and chaos hooks.

The contract every engine must honor (checked by the engine-conformance
suite in ``tests/test_engines.py``):

* **Total order per group** -- all learners of a group deliver the same
  sequence of values.
* **Uniform agreement across groups** -- two messages addressed to the same
  set of groups are delivered in the same relative order at every
  destination group.
* **Validity** -- a submitted value is eventually delivered at every
  destination group (absent failures).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.runtime.interfaces import StorageMode
from repro.types import GroupId, Value

__all__ = ["EngineSpec", "GroupDescriptor", "OrderingEngine", "DeliveryCallback"]

#: Signature of an application delivery callback (receives a
#: :class:`~repro.multiring.merge.Delivery`).
DeliveryCallback = Callable[[Any], None]


@dataclass
class EngineSpec:
    """Engine-agnostic declaration of one multicast group.

    Mirrors :class:`~repro.multiring.deployment.RingSpec` (the Multi-Ring
    engine maps it onto one) but carries no ring-specific vocabulary, so the
    same declaration builds a White-Box group or any future engine's unit of
    ordering.
    """

    group: GroupId
    #: All member process names (deployment order; rings use it as ring order).
    members: List[str]
    #: Voting members (defaults to all members).
    acceptors: Optional[List[str]] = None
    #: Processes allowed to submit to this group (defaults to acceptors).
    proposers: Optional[List[str]] = None
    #: Processes delivering to the application (defaults to all members).
    learners: Optional[List[str]] = None
    #: Force a specific coordinator/leader (defaults to the first acceptor).
    coordinator: Optional[str] = None
    storage_mode: StorageMode = StorageMode.MEMORY
    #: Optional member -> WAN site placement.
    sites: Optional[Dict[str, str]] = None
    #: Engine-specific options passed through verbatim (e.g. ``ring_config``
    #: for the Multi-Ring engine).
    options: Dict[str, Any] = field(default_factory=dict)

    def resolved_acceptors(self) -> List[str]:
        return list(self.acceptors) if self.acceptors is not None else list(self.members)

    def resolved_proposers(self) -> List[str]:
        if self.proposers is not None:
            return list(self.proposers)
        return self.resolved_acceptors()

    def resolved_learners(self) -> List[str]:
        return list(self.learners) if self.learners is not None else list(self.members)

    def resolved_coordinator(self) -> str:
        if self.coordinator is not None:
            return self.coordinator
        acceptors = self.resolved_acceptors()
        if not acceptors:
            raise ConfigurationError(f"group {self.group!r} has no acceptors")
        return acceptors[0]


@dataclass
class GroupDescriptor:
    """What the facade needs to know about a built group.

    The attribute names deliberately match
    :class:`~repro.coordination.registry.RingDescriptor` so the facade can
    treat ring descriptors and engine descriptors uniformly.
    """

    group: GroupId
    members: List[str]
    proposers: List[str]
    acceptors: List[str]
    learners: List[str]
    coordinator: str

    @property
    def quorum_size(self) -> int:
        return len(self.acceptors) // 2 + 1


class OrderingEngine(ABC):
    """Abstract base of every pluggable ordering engine.

    Subclasses set :attr:`name` (the registry key) and
    :attr:`supports_live` (whether the engine can run on the live asyncio/TCP
    backend; only the Multi-Ring engine does today).
    """

    #: Registry key; subclasses must override.
    name: str = ""
    #: Whether the engine runs on the live backend (real TCP).
    supports_live: bool = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def build(self, runtime, config) -> Any:
        """Bind the engine to ``runtime`` and return its deployment object.

        Must be called exactly once, before any group is added.  The returned
        object is engine-specific (the Multi-Ring engine returns its
        :class:`~repro.multiring.deployment.Deployment`) and is exposed by the
        facade for protocol-level introspection.
        """

    @abstractmethod
    def add_group(self, spec: EngineSpec) -> GroupDescriptor:
        """Declare one multicast group; returns its descriptor."""

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    @abstractmethod
    def multicast(
        self,
        dests: Tuple[GroupId, ...],
        payload: Any,
        size_bytes: int,
        via: Optional[str] = None,
    ) -> Value:
        """Atomically multicast ``payload`` to every group in ``dests``.

        Returns the created :class:`~repro.types.Value` (its ``uid``
        identifies the message in delivery callbacks).  ``via`` forces a
        specific submitting proposer; the default round-robins over the
        first destination group's proposers.
        """

    def submit(self, group: GroupId, payload: Any, size_bytes: int,
               via: Optional[str] = None) -> Value:
        """Single-group convenience over :meth:`multicast`."""
        return self.multicast((group,), payload, size_bytes, via=via)

    @abstractmethod
    def on_deliver(self, group: GroupId, callback: DeliveryCallback,
                   node: Optional[str] = None) -> str:
        """Register ``callback`` for ``group``'s deliveries.

        Hooks the group's *witness* (its first learner) unless ``node`` names
        another learner.  Returns the name of the hooked node.
        """

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @abstractmethod
    def groups(self) -> List[GroupId]:
        """The declared group identifiers."""

    @abstractmethod
    def descriptor(self, group: GroupId) -> GroupDescriptor:
        """The descriptor of ``group`` (raises for unknown groups)."""

    @abstractmethod
    def node(self, name: str) -> Any:
        """The engine's node object named ``name``."""

    def stats(self) -> Dict[str, Any]:
        """Engine-defined counters (deliveries, protocol-specific totals)."""
        return {}

    # ------------------------------------------------------------------
    # chaos / observability hooks
    # ------------------------------------------------------------------
    def inject(self, fault: str, *args: Any) -> None:
        """Apply a fault primitive (``"crash"``/``"recover"`` + node name).

        Engines running on the simulator get these for free through the
        process registry; richer fault DSLs (:mod:`repro.scenarios`) drive
        the runtime directly.
        """
        if fault not in ("crash", "recover"):
            raise ConfigurationError(f"unknown fault {fault!r}; expected 'crash' or 'recover'")
        (name,) = args
        process = self.node(name)
        if fault == "crash":
            process.crash()
        else:
            process.recover()

    def observe(self) -> Dict[str, Any]:
        """The engine's observability handles (tracer + metrics registry)."""
        runtime = getattr(self, "runtime", None)
        if runtime is None:
            return {}
        from repro.obs import obs_of

        bundle = obs_of(runtime)
        return {"tracer": bundle.tracer, "metrics": bundle.metrics}
