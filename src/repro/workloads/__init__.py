"""Workload generators.

* :mod:`repro.workloads.distributions` -- uniform / zipfian / latest key
  choosers (the request distributions of YCSB).
* :mod:`repro.workloads.ycsb` -- the six YCSB core workloads (A-F) used by
  the Figure 4 comparison, targeting any key-value service that exposes the
  MRP-Store client library surface.
* :mod:`repro.workloads.simple` -- the paper's other drivers: fixed-size
  append streams for dLog (Figures 5 and 6) and update-only streams for the
  horizontal-scalability experiment (Figure 7).
"""

from repro.workloads.distributions import UniformChooser, ZipfianChooser, LatestChooser
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload, YCSB_WORKLOADS
from repro.workloads.simple import AppendWorkload, UpdateWorkload, MixedOperationWorkload

__all__ = [
    "UniformChooser",
    "ZipfianChooser",
    "LatestChooser",
    "YCSBConfig",
    "YCSBWorkload",
    "YCSB_WORKLOADS",
    "AppendWorkload",
    "UpdateWorkload",
    "MixedOperationWorkload",
]
