"""Workload generators.

* :mod:`repro.workloads.distributions` -- uniform / zipfian / latest key
  choosers (the request distributions of YCSB).
* :mod:`repro.workloads.ycsb` -- the six YCSB core workloads (A-F) used by
  the Figure 4 comparison, targeting any key-value service that exposes the
  MRP-Store client library surface.
* :mod:`repro.workloads.simple` -- the paper's other drivers: fixed-size
  append streams for dLog (Figures 5 and 6) and update-only streams for the
  horizontal-scalability experiment (Figure 7).
* :mod:`repro.workloads.engine` -- the **open-loop** million-user workload
  engine: Poisson/Zipf arrival sampling (no per-client objects), phase
  schedules (diurnal curves, flash crowds, hotspot migration), trace
  record/replay, and the :class:`~repro.workloads.engine.WorkloadManager`
  lifecycle driving either backend.  See ``docs/workloads.md``.
"""

from repro.workloads.distributions import UniformChooser, ZipfianChooser, LatestChooser
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload, YCSB_WORKLOADS
from repro.workloads.simple import AppendWorkload, UpdateWorkload, MixedOperationWorkload
from repro.workloads.engine import (
    ArrivalEvent,
    FacadeWorkloadManager,
    OpenLoopLoadGenerator,
    OpenLoopSampler,
    Phase,
    PhaseSchedule,
    ServiceTarget,
    SimWorkloadManager,
    WorkloadEntry,
    WorkloadManager,
    WorkloadTrace,
)

__all__ = [
    "UniformChooser",
    "ZipfianChooser",
    "LatestChooser",
    "YCSBConfig",
    "YCSBWorkload",
    "YCSB_WORKLOADS",
    "AppendWorkload",
    "UpdateWorkload",
    "MixedOperationWorkload",
    "ArrivalEvent",
    "Phase",
    "PhaseSchedule",
    "OpenLoopSampler",
    "WorkloadTrace",
    "WorkloadEntry",
    "WorkloadManager",
    "ServiceTarget",
    "OpenLoopLoadGenerator",
    "SimWorkloadManager",
    "FacadeWorkloadManager",
]
