"""Non-YCSB workloads used by the paper's other experiments.

* :class:`AppendWorkload` -- fixed-size appends to one log or round-robin over
  several logs (Figures 5 and 6; 1 KB append requests).
* :class:`UpdateWorkload` -- update-only traffic against keys of a single
  partition (Figure 7: "clients send 1 KByte commands to their local
  partitions only").
* :class:`MixedOperationWorkload` -- a generic weighted mix over caller-built
  request factories, used by examples and tests.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.smr.client import Request

__all__ = ["AppendWorkload", "UpdateWorkload", "MixedOperationWorkload"]


class AppendWorkload:
    """Append-only traffic for dLog."""

    def __init__(
        self,
        dlog,
        logs: Sequence[str],
        append_size: int = 1024,
        series: Optional[str] = None,
        multi_append_fraction: float = 0.0,
    ) -> None:
        if not logs:
            raise WorkloadError("the append workload needs at least one log")
        self.dlog = dlog
        self.logs = list(logs)
        self.append_size = append_size
        self.series = series
        self.multi_append_fraction = multi_append_fraction
        self._next = 0

    def next_request(self, rng: random.Random) -> Request:
        if self.multi_append_fraction > 0 and len(self.logs) > 1:
            if rng.random() < self.multi_append_fraction:
                return self.dlog.multi_append(self.logs, self.append_size, series=self.series)
        log = self.logs[self._next % len(self.logs)]
        self._next += 1
        series = self.series or f"append-{log}"
        return self.dlog.append(log, self.append_size, series=series)


class UpdateWorkload:
    """Update-only traffic over a slice of the key space (one partition/region)."""

    def __init__(
        self,
        store,
        key_indices: Sequence[int],
        value_size: int = 1024,
        series: Optional[str] = None,
    ) -> None:
        if not key_indices:
            raise WorkloadError("the update workload needs at least one key")
        self.store = store
        self.key_indices = list(key_indices)
        self.value_size = value_size
        self.series = series

    def next_request(self, rng: random.Random) -> Request:
        index = self.key_indices[rng.randrange(len(self.key_indices))]
        return self.store.update(self.store.key(index), self.value_size, series=self.series)


class MixedOperationWorkload:
    """A weighted mix of arbitrary request factories."""

    def __init__(self, weighted_factories: Sequence[Tuple[float, Callable[[random.Random], Request]]]) -> None:
        if not weighted_factories:
            raise WorkloadError("the mixed workload needs at least one factory")
        total = sum(weight for weight, _factory in weighted_factories)
        if total <= 0:
            raise WorkloadError("weights must sum to a positive number")
        self._factories: List[Tuple[float, Callable[[random.Random], Request]]] = []
        cumulative = 0.0
        for weight, factory in weighted_factories:
            cumulative += weight / total
            self._factories.append((cumulative, factory))

    def next_request(self, rng: random.Random) -> Request:
        roll = rng.random()
        for threshold, factory in self._factories:
            if roll <= threshold:
                return factory(rng)
        return self._factories[-1][1](rng)
