"""Open-loop million-user workload engine.

The paper's evaluation (and every bench before this module) drives the
services with *closed-loop* clients: each thread submits the next request
only after the previous one completes, so offered load collapses exactly
when the system slows down -- the opposite of production traffic.  This
module models **open-loop** arrivals: requests fire at sampled instants
regardless of completions, the way traffic from millions of independent
users behaves, and latency is measured from the *intended* arrival time so
queueing delay is never hidden (no coordinated omission).

Millions of users are modeled **by arrival sampling, not per-client
objects**: the superposition of N independent Poisson streams is itself a
Poisson process at the aggregate rate, so one exponential-gap sampler
stands in for the whole population; the *identity* of each arrival (which
user, which key) is drawn per event from Zipf distributions over user and
key ranks.  A million-user workload costs exactly as much to generate as a
ten-user one.

The pieces:

* :class:`Phase` / :class:`PhaseSchedule` -- piecewise-constant arrival
  rate, key skew and hotspot position, with builders for diurnal curves
  (:meth:`PhaseSchedule.diurnal`), flash crowds
  (:meth:`PhaseSchedule.flash_crowd`) and hotspot migration
  (:meth:`PhaseSchedule.hotspot_migration`).  Within a phase the rate is
  constant, so exponential gaps are exact; at a boundary the sampler
  re-draws from the new rate -- memorylessness makes that restart exact
  too, and it makes phase boundaries deterministic cut points.
* :class:`OpenLoopSampler` -- turns a schedule into a deterministic stream
  of :class:`ArrivalEvent` records (time, user rank, key index, size).
* :class:`WorkloadTrace` -- a recorded arrival stream with JSONL
  round-trip; replaying a trace reproduces the submission schedule
  byte-for-byte on either backend (see ``docs/workloads.md``).
* :class:`WorkloadManager` -- the lifecycle ABC (start / stop / collect /
  recent_entries) every driver implements.
* :class:`OpenLoopLoadGenerator` + :class:`SimWorkloadManager` -- the
  simulator driver: a :class:`~repro.runtime.actor.Process` that fires
  ``SubmitCommand`` messages at service front-ends at the sampled times.
* :class:`FacadeWorkloadManager` -- the backend-agnostic driver behind
  :meth:`repro.api.AtomicMulticast.workload`; on the sim backend it rides
  a process in the facade's world, on the live backend a pacing thread
  submits over real TCP.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time as _time
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.runtime.actor import Process
from repro.workloads.distributions import ZipfianChooser

__all__ = [
    "ArrivalEvent",
    "Phase",
    "PhaseSchedule",
    "OpenLoopSampler",
    "WorkloadTrace",
    "WorkloadEntry",
    "WorkloadManager",
    "ServiceTarget",
    "OpenLoopLoadGenerator",
    "SimWorkloadManager",
    "FacadeWorkloadManager",
]


# ----------------------------------------------------------------------
# arrival events and traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrivalEvent:
    """One sampled request arrival.

    ``time`` is the intended arrival instant in seconds from workload start;
    ``user`` is the Zipf-sampled rank of the issuing user in the virtual
    population (rank 0 = the most active user); ``key`` is the target key
    index in ``[0, key_space)``; ``op`` names the service operation.
    """

    time: float
    user: int
    key: int
    op: str = "update"
    size_bytes: int = 512

    def as_record(self) -> Dict[str, Any]:
        return {
            "time": self.time.hex(),
            "user": self.user,
            "key": self.key,
            "op": self.op,
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "ArrivalEvent":
        return cls(
            time=float.fromhex(record["time"]),
            user=int(record["user"]),
            key=int(record["key"]),
            op=str(record["op"]),
            size_bytes=int(record["size_bytes"]),
        )


class WorkloadTrace:
    """A recorded arrival stream, replayable byte-for-byte.

    Event times serialize as ``float.hex`` so a JSONL round-trip preserves
    every bit: a storm captured on the sim backend replays with the exact
    same submission schedule on the live backend (and vice versa).
    """

    def __init__(self, events: Optional[Sequence[ArrivalEvent]] = None, meta: Optional[Dict] = None) -> None:
        self.events: List[ArrivalEvent] = list(events or [])
        self.meta: Dict[str, Any] = dict(meta or {})

    def append(self, event: ArrivalEvent) -> None:
        self.events.append(event)

    def prefix(self, count: int) -> "WorkloadTrace":
        """The first ``count`` events as a new trace (same meta)."""
        return WorkloadTrace(self.events[:count], dict(self.meta))

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, WorkloadTrace) and self.events == other.events

    def __iter__(self) -> Iterator[ArrivalEvent]:
        return iter(self.events)

    # -- persistence ----------------------------------------------------
    def to_jsonl(self, path) -> None:
        lines = [json.dumps({"meta": self.meta}, sort_keys=True)]
        lines.extend(json.dumps(e.as_record(), sort_keys=True) for e in self.events)
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def from_jsonl(cls, path) -> "WorkloadTrace":
        trace = cls()
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "meta" in record and "time" not in record:
                trace.meta = dict(record["meta"])
            else:
                trace.append(ArrivalEvent.from_record(record))
        return trace


# ----------------------------------------------------------------------
# phase schedules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Phase:
    """A piecewise-constant stretch of the workload.

    ``rate`` is the aggregate arrival rate in requests/second (the sum of
    the whole population's individual rates); ``theta`` the Zipf skew of
    key popularity; ``hotspot`` the position of the hottest key as a
    fraction of the key space -- Zipf ranks map to *contiguous* keys
    starting there, so a hotspot concentrates load on one key range (and
    moving it between phases migrates the hot range across partitions).
    """

    start: float
    rate: float
    theta: float = 0.99
    hotspot: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.start < 0:
            raise WorkloadError("a phase cannot start before time 0")
        if self.rate < 0:
            raise WorkloadError("the arrival rate cannot be negative")
        if not 0.0 <= self.hotspot < 1.0:
            raise WorkloadError("hotspot must be a fraction in [0, 1)")


class PhaseSchedule:
    """An ordered sequence of :class:`Phase` stretches covering ``[0, duration)``.

    A boundary instant belongs to the *new* phase: ``phase_at(p.start)`` is
    ``p``, deterministically, which is what makes trace replay and the
    boundary tests exact.
    """

    def __init__(self, phases: Sequence[Phase], duration: float) -> None:
        if not phases:
            raise WorkloadError("a schedule needs at least one phase")
        if duration <= 0:
            raise WorkloadError("the schedule duration must be positive")
        ordered = sorted(phases, key=lambda p: p.start)
        if ordered[0].start != 0.0:
            raise WorkloadError("the first phase must start at time 0")
        starts = [p.start for p in ordered]
        if len(set(starts)) != len(starts):
            raise WorkloadError("phase start times must be distinct")
        if ordered[-1].start >= duration:
            raise WorkloadError("every phase must start before the schedule ends")
        self.phases: List[Phase] = ordered
        self.duration = duration
        self._starts = starts

    def phase_at(self, t: float) -> Phase:
        """The phase governing instant ``t`` (boundaries belong to the new phase)."""
        if t < 0:
            raise WorkloadError("the schedule starts at time 0")
        return self.phases[bisect_right(self._starts, t) - 1]

    def next_boundary(self, t: float) -> float:
        """The first phase start strictly after ``t`` (or the schedule end)."""
        index = bisect_right(self._starts, t)
        if index < len(self._starts):
            return self._starts[index]
        return self.duration

    def expected_arrivals(self) -> float:
        """The integral of the rate curve (for sizing runs and buffers)."""
        total = 0.0
        for index, phase in enumerate(self.phases):
            end = self._starts[index + 1] if index + 1 < len(self.phases) else self.duration
            total += phase.rate * (end - phase.start)
        return total

    def peak_phase(self) -> Phase:
        """The highest-rate phase (ties broken by earliest start)."""
        return max(self.phases, key=lambda p: (p.rate, -p.start))

    def describe(self) -> List[Dict[str, Any]]:
        return [
            {
                "start": p.start,
                "rate": p.rate,
                "theta": p.theta,
                "hotspot": p.hotspot,
                "label": p.label,
            }
            for p in self.phases
        ]

    # -- builders --------------------------------------------------------
    @classmethod
    def constant(
        cls, rate: float, duration: float, *, theta: float = 0.99, hotspot: float = 0.0
    ) -> "PhaseSchedule":
        return cls([Phase(0.0, rate, theta=theta, hotspot=hotspot, label="steady")], duration)

    @classmethod
    def diurnal(
        cls,
        base_rate: float,
        peak_rate: float,
        duration: float,
        *,
        period: Optional[float] = None,
        steps: int = 12,
        theta: float = 0.99,
        hotspot: float = 0.0,
    ) -> "PhaseSchedule":
        """A day/night sinusoid sampled into ``steps`` constant-rate phases.

        ``period`` defaults to the whole duration (one simulated "day").
        The trough sits at t=0 and the peak at half a period, following the
        usual diurnal curve shape.
        """
        if peak_rate < base_rate:
            raise WorkloadError("peak_rate must be at least base_rate")
        if steps < 2:
            raise WorkloadError("a diurnal curve needs at least 2 steps")
        period = period or duration
        mid = (base_rate + peak_rate) / 2.0
        amplitude = (peak_rate - base_rate) / 2.0
        phases = []
        step = duration / steps
        for index in range(steps):
            t = index * step
            # Trough at t=0: mid - A*cos(2*pi*t/period).
            rate = mid - amplitude * math.cos(2.0 * math.pi * t / period)
            phases.append(Phase(t, rate, theta=theta, hotspot=hotspot, label=f"diurnal-{index}"))
        return cls(phases, duration)

    @classmethod
    def flash_crowd(
        cls,
        base_rate: float,
        spike_rate: float,
        *,
        at: float,
        spike_duration: float,
        duration: float,
        theta: float = 0.99,
        spike_theta: float = 1.2,
        hotspot: float = 0.0,
        spike_hotspot: Optional[float] = None,
    ) -> "PhaseSchedule":
        """Steady traffic with one burst: higher rate *and* sharper skew.

        A flash crowd is not just more traffic -- it is everyone asking for
        the same thing, so the spike phase raises the Zipf skew and can move
        the hotspot onto the crowded key range.
        """
        if not 0.0 < at < duration:
            raise WorkloadError("the spike must start inside the schedule")
        if at + spike_duration >= duration:
            raise WorkloadError("the spike must end before the schedule does")
        spot = hotspot if spike_hotspot is None else spike_hotspot
        return cls(
            [
                Phase(0.0, base_rate, theta=theta, hotspot=hotspot, label="steady"),
                Phase(at, spike_rate, theta=spike_theta, hotspot=spot, label="flash-crowd"),
                Phase(at + spike_duration, base_rate, theta=theta, hotspot=hotspot, label="recovery"),
            ],
            duration,
        )

    @classmethod
    def hotspot_migration(
        cls,
        rate: float,
        duration: float,
        *,
        positions: Sequence[float],
        theta: float = 1.1,
    ) -> "PhaseSchedule":
        """Constant load whose hot key range hops across ``positions``.

        Each position holds for an equal share of the duration; successive
        phases move the contiguous hot range, stressing re-partitioning the
        way real popularity shifts do.
        """
        if not positions:
            raise WorkloadError("hotspot migration needs at least one position")
        dwell = duration / len(positions)
        phases = [
            Phase(index * dwell, rate, theta=theta, hotspot=position, label=f"hotspot-{index}")
            for index, position in enumerate(positions)
        ]
        return cls(phases, duration)


# ----------------------------------------------------------------------
# the sampler
# ----------------------------------------------------------------------
class OpenLoopSampler:
    """Deterministic arrival sampling over a :class:`PhaseSchedule`.

    One sampler stands in for the whole user population: arrival gaps are
    exponential at the phase's aggregate rate (superposition of independent
    Poisson users), and each arrival draws a user rank and a key rank from
    Zipf distributions.  Key ranks map to contiguous keys anchored at the
    phase's hotspot, so skew lands on a key *range* (what range-partitioned
    stores actually feel).
    """

    def __init__(
        self,
        schedule: PhaseSchedule,
        *,
        key_space: int,
        users: int = 1_000_000,
        seed: int = 0,
        op: str = "update",
        size_bytes: int = 512,
        user_theta: float = 0.99,
    ) -> None:
        if key_space <= 0:
            raise WorkloadError("key_space must be positive")
        if users <= 0:
            raise WorkloadError("the user population must be positive")
        self.schedule = schedule
        self.key_space = key_space
        self.users = users
        self.seed = seed
        self.op = op
        self.size_bytes = size_bytes
        self._user_chooser = ZipfianChooser(users, theta=user_theta)
        # One chooser per distinct key skew; building the zeta tables is
        # O(key_space), so phases sharing a theta share the chooser.
        self._key_choosers: Dict[float, ZipfianChooser] = {}

    def _key_chooser(self, theta: float) -> ZipfianChooser:
        chooser = self._key_choosers.get(theta)
        if chooser is None:
            chooser = ZipfianChooser(self.key_space, theta=theta)
            self._key_choosers[theta] = chooser
        return chooser

    def meta(self) -> Dict[str, Any]:
        return {
            "key_space": self.key_space,
            "users": self.users,
            "seed": self.seed,
            "op": self.op,
            "size_bytes": self.size_bytes,
            "schedule": self.schedule.describe(),
            "duration": self.schedule.duration,
        }

    def events(self) -> Iterator[ArrivalEvent]:
        """The arrival stream, in time order, deterministic in the seed."""
        rng = random.Random(self.seed)
        schedule = self.schedule
        t = 0.0
        while True:
            phase = schedule.phase_at(t)
            boundary = schedule.next_boundary(t)
            if phase.rate <= 0.0:
                if boundary >= schedule.duration:
                    return
                t = boundary
                continue
            t += rng.expovariate(phase.rate)
            if t >= boundary:
                # The gap crossed into the next phase; memorylessness makes
                # restarting the draw at the boundary exact.
                if boundary >= schedule.duration:
                    return
                t = boundary
                continue
            rank = self._key_chooser(phase.theta).next_index(rng) % self.key_space
            key = (int(phase.hotspot * self.key_space) + rank) % self.key_space
            user = self._user_chooser.next_index(rng) % self.users
            yield ArrivalEvent(
                time=t, user=user, key=key, op=self.op, size_bytes=self.size_bytes
            )

    def record(self) -> WorkloadTrace:
        """Materialize the whole arrival stream as a replayable trace."""
        return WorkloadTrace(list(self.events()), self.meta())


# ----------------------------------------------------------------------
# completion records and the manager ABC
# ----------------------------------------------------------------------
@dataclass
class WorkloadEntry:
    """One request's lifecycle as observed by a workload driver."""

    issued_at: float
    user: int
    key: int
    op: str
    size_bytes: int
    completed_at: Optional[float] = None

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def latency(self) -> Optional[float]:
        """Seconds from *intended* arrival to completion (no omission)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at


class WorkloadManager(ABC):
    """Constantly-running workload generator lifecycle.

    The shape every driver implements (after the SREGym workload base):
    ``start`` / ``stop`` bracket generation, ``collect`` runs until enough
    completions have been observed, ``recent_entries`` exposes a sliding
    window for live dashboards and invariant checks.
    """

    @abstractmethod
    def start(self, *args, **kwargs) -> None:
        """Start generating arrivals."""

    @abstractmethod
    def stop(self, *args, **kwargs) -> None:
        """Stop generating arrivals (in-flight requests may still complete)."""

    @abstractmethod
    def collect(self, number: int = 100, start_time: Optional[float] = None) -> List[WorkloadEntry]:
        """Run until at least ``number`` completions at/after ``start_time``.

        ``start_time`` defaults to the current workload clock.  Returns the
        matching entries; raises :class:`WorkloadError` if the arrival
        stream ends before enough completions arrive.
        """

    @abstractmethod
    def recent_entries(self, duration: float = 30.0) -> List[WorkloadEntry]:
        """Entries completed within the last ``duration`` seconds."""


def _completed_since(entries: Iterable[WorkloadEntry], start_time: float) -> List[WorkloadEntry]:
    return [e for e in entries if e.completed_at is not None and e.completed_at >= start_time]


# ----------------------------------------------------------------------
# simulator driver
# ----------------------------------------------------------------------
class ServiceTarget:
    """Adapts a service deployment to the open-loop engine.

    ``request_for`` maps an :class:`ArrivalEvent` to the service's
    :class:`~repro.smr.client.Request`; ``frontends`` maps multicast groups
    to proposer front-end process names.  ``refresh`` (optional) re-reads
    the frontend map -- the engine calls it when routing misses a group,
    which is exactly what happens mid-re-partitioning when new partitions
    appear.
    """

    def __init__(
        self,
        request_for: Callable[[ArrivalEvent], Any],
        frontends: Dict[Any, str],
        refresh: Optional[Callable[[], Dict[Any, str]]] = None,
    ) -> None:
        self.request_for = request_for
        self.frontends = dict(frontends)
        self._refresh = refresh

    def frontend_of(self, group) -> str:
        frontend = self.frontends.get(group)
        if frontend is None and self._refresh is not None:
            self.frontends.update(self._refresh())
            frontend = self.frontends.get(group)
        if frontend is None:
            raise WorkloadError(f"no front-end configured for group {group!r}")
        return frontend


class OpenLoopLoadGenerator(Process):
    """Fires service requests at sampled arrival instants; never blocks.

    Unlike :class:`~repro.smr.client.ClosedLoopClient`, completions do not
    gate the next request: when the system saturates, outstanding requests
    pile up and the latency distribution shows it -- which is the point of
    open-loop measurement.  Latency is measured from the sampled (intended)
    arrival instant, so queueing ahead of submission is counted too.
    """

    def __init__(
        self,
        world,
        name: str,
        target: ServiceTarget,
        events: Iterable[ArrivalEvent],
        *,
        site: Optional[str] = None,
        series: str = "openloop",
        recorder: Optional[WorkloadTrace] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        from repro.smr.command import Command, Response, SubmitCommand  # late: avoids import cycles

        super().__init__(world, name, site)
        self._command_cls = Command
        self._submit_cls = SubmitCommand
        self._response_cls = Response
        self.target = target
        self.series = series
        self.recorder = recorder
        self.entries: List[WorkloadEntry] = []
        self._events = iter(events)
        self._origin: Optional[float] = None
        self._pending_event: Optional[ArrivalEvent] = None
        self._outstanding: Dict[int, WorkloadEntry] = {}
        self._active = False
        self._exhausted = False
        self._max_entries = max_entries
        self.issued = 0
        self.completed = 0

    # -- lifecycle -------------------------------------------------------
    def on_start(self) -> None:
        if self._active:
            return
        self.begin()

    def begin(self) -> None:
        """Anchor the workload clock at the current instant and start firing."""
        if self._active:
            return
        self._active = True
        if self._origin is None:
            self._origin = self.now
        self._schedule_next()

    def halt(self) -> None:
        self._active = False

    @property
    def workload_now(self) -> float:
        """Seconds of workload time elapsed (0 until started)."""
        if self._origin is None:
            return 0.0
        return self.now - self._origin

    @property
    def exhausted(self) -> bool:
        """True once the arrival stream has been fully submitted."""
        return self._exhausted

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    # -- arrival firing --------------------------------------------------
    def _schedule_next(self) -> None:
        if not self._active or not self.alive:
            return
        event = self._pending_event
        if event is None:
            event = next(self._events, None)
            if event is None:
                self._exhausted = True
                return
        self._pending_event = event
        delay = (self._origin + event.time) - self.now
        # A zero-delay timer (not a direct call) keeps past-due arrivals
        # iterative and preserves exact simulated firing instants.
        self.set_timer(max(0.0, delay), self._fire)

    def _fire(self) -> None:
        event = self._pending_event
        self._pending_event = None
        if event is None or not self._active or not self.alive:
            return
        request = self.target.request_for(event)
        frontend = self.target.frontend_of(request.group)
        command = self._command_cls.create(
            client=self.name,
            operation=request.operation,
            size_bytes=request.size_bytes,
            created_at=self.now,
            expected_responses=request.expected_responses,
        )
        entry = WorkloadEntry(
            issued_at=event.time,
            user=event.user,
            key=event.key,
            op=event.op,
            size_bytes=request.size_bytes,
        )
        self._outstanding[command.command_id] = entry
        if self.recorder is not None:
            self.recorder.append(event)
        self.issued += 1
        self.send(frontend, self._submit_cls(group=request.group, command=command))
        self._schedule_next()

    # -- completions -----------------------------------------------------
    def on_message(self, sender: str, payload) -> None:
        if not isinstance(payload, self._response_cls):
            return
        entry = self._outstanding.pop(payload.command_id, None)
        if entry is None:
            return  # duplicate response after completion
        entry.completed_at = self.workload_now
        self.completed += 1
        if self._max_entries is None or len(self.entries) < self._max_entries:
            self.entries.append(entry)
        self.world.monitor.record_operation(
            self.series,
            completion_time=self.now,
            latency=entry.latency or 0.0,
            size_bytes=entry.size_bytes,
        )


class SimWorkloadManager(WorkloadManager):
    """Binds an :class:`OpenLoopLoadGenerator` to its world's clock."""

    #: How much simulated time one ``collect`` step advances between checks.
    collect_step = 0.25

    def __init__(self, world, generator: OpenLoopLoadGenerator) -> None:
        self.world = world
        self.generator = generator

    # -- WorkloadManager -------------------------------------------------
    def start(self) -> None:
        self.world.start()
        self.generator.begin()

    def stop(self) -> None:
        self.generator.halt()

    def collect(self, number: int = 100, start_time: Optional[float] = None) -> List[WorkloadEntry]:
        self.start()
        if start_time is None:
            start_time = self.generator.workload_now
        while True:
            matched = _completed_since(self.generator.entries, start_time)
            if len(matched) >= number:
                return matched[:number]
            if self.generator.exhausted and self.generator.outstanding == 0:
                raise WorkloadError(
                    f"arrival stream ended with only {len(matched)}/{number} "
                    "completions collected"
                )
            before = self.world.now
            self.world.run_for(self.collect_step)
            if self.world.now == before:
                # Nothing left to simulate: the stream is drained.
                matched = _completed_since(self.generator.entries, start_time)
                if len(matched) >= number:
                    return matched[:number]
                raise WorkloadError(
                    f"simulation drained with only {len(matched)}/{number} completions"
                )

    def recent_entries(self, duration: float = 30.0) -> List[WorkloadEntry]:
        cutoff = self.generator.workload_now - duration
        return _completed_since(self.generator.entries, cutoff)

    # -- extras ----------------------------------------------------------
    @property
    def entries(self) -> List[WorkloadEntry]:
        return self.generator.entries

    def latencies(self) -> List[float]:
        return [e.latency for e in self.generator.entries if e.latency is not None]


# ----------------------------------------------------------------------
# facade driver (both backends)
# ----------------------------------------------------------------------
class FacadeWorkloadManager(WorkloadManager):
    """Open-loop traffic through :class:`repro.api.AtomicMulticast`.

    The same arrival stream drives either backend: on ``sim`` a process in
    the facade's world calls ``submit`` at the sampled virtual instants; on
    ``live`` a pacing thread submits at the sampled wall-clock instants.
    Completions ride the facade's witness-delivery futures, so latency is
    intended-arrival -> witness delivery on both.
    """

    def __init__(
        self,
        api,
        group,
        events: Iterable[ArrivalEvent],
        *,
        record: bool = False,
        payload_prefix: str = "wl",
    ) -> None:
        self._api = api
        self._group = group
        self._events = list(events)
        self.trace: Optional[WorkloadTrace] = WorkloadTrace() if record else None
        self._payload_prefix = payload_prefix
        self.entries: List[WorkloadEntry] = []
        self._lock = threading.Lock()
        self._started = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._submitter = None
        self._all_submitted = False
        self.issued = 0

    # -- submission ------------------------------------------------------
    def _submit_one(self, index: int, event: ArrivalEvent, now_fn: Callable[[], float]) -> None:
        entry = WorkloadEntry(
            issued_at=event.time,
            user=event.user,
            key=event.key,
            op=event.op,
            size_bytes=event.size_bytes,
        )
        if self.trace is not None:
            self.trace.append(event)
        payload = f"{self._payload_prefix}-{index}-u{event.user}-k{event.key}"
        future = self._api.submit(self._group, payload, size_bytes=event.size_bytes)
        self.issued += 1

        def _done(fut, entry=entry) -> None:
            if fut.cancelled() or fut.exception() is not None:
                return
            with self._lock:
                entry.completed_at = now_fn()
                self.entries.append(entry)

        future.add_done_callback(_done)

    # -- WorkloadManager -------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self._api.backend == "sim":
            self._start_sim()
        else:
            self._start_live()

    def _start_sim(self) -> None:
        manager = self

        class _Submitter(Process):
            def on_start(self) -> None:
                self._origin = self.now
                self._index = 0
                self._schedule()

            def _schedule(self) -> None:
                if self._index >= len(manager._events):
                    manager._all_submitted = True
                    return
                event = manager._events[self._index]
                delay = (self._origin + event.time) - self.now
                self.set_timer(max(0.0, delay), self._fire)

            def _fire(self) -> None:
                if manager._stop.is_set():
                    return
                event = manager._events[self._index]
                self._index += 1
                origin = self._origin
                manager._submit_one(
                    self._index - 1, event, lambda: manager._api.world.now - origin
                )
                self._schedule()

        self._submitter = _Submitter(self._api.world, f"openloop:{self._group}")
        self._api.world.start()

    def _start_live(self) -> None:
        def _pace() -> None:
            origin = _time.monotonic()
            for index, event in enumerate(self._events):
                if self._stop.is_set():
                    return
                delay = (origin + event.time) - _time.monotonic()
                if delay > 0:
                    if self._stop.wait(delay):
                        return
                self._submit_one(index, event, lambda: _time.monotonic() - origin)
            self._all_submitted = True

        self._thread = threading.Thread(target=_pace, name="openloop-pacer", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def _now(self) -> float:
        if self._api.backend == "sim":
            origin = getattr(self._submitter, "_origin", 0.0) if self._submitter else 0.0
            return self._api.world.now - origin
        return max((e.completed_at or 0.0) for e in self.entries) if self.entries else 0.0

    def collect(self, number: int = 100, start_time: Optional[float] = None) -> List[WorkloadEntry]:
        self.start()
        if start_time is None:
            start_time = self._now()
        if self._api.backend == "sim":
            while True:
                matched = _completed_since(self.entries, start_time)
                if len(matched) >= number:
                    return matched[:number]
                before = self._api.world.now
                self._api.run_for(0.25)
                if self._api.world.now == before:
                    raise WorkloadError(
                        f"simulation drained with only {len(matched)}/{number} completions"
                    )
        matched: List[WorkloadEntry] = []
        deadline = _time.monotonic() + 60.0 + 0.05 * number
        while _time.monotonic() < deadline:
            with self._lock:
                matched = _completed_since(self.entries, start_time)
            if len(matched) >= number:
                return matched[:number]
            _time.sleep(0.01)
        raise WorkloadError(f"collect timed out with {len(matched)}/{number} completions")

    def recent_entries(self, duration: float = 30.0) -> List[WorkloadEntry]:
        cutoff = self._now() - duration
        with self._lock:
            return _completed_since(self.entries, cutoff)

    # -- extras ----------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> int:
        """Run until every arrival has been submitted *and* completed.

        Returns the completion count (equal to the event count unless the
        run was stopped early or a submission failed).
        """
        self.start()
        if self._api.backend == "sim":
            while not (self._all_submitted and len(self.entries) >= self.issued):
                before = self._api.world.now
                self._api.run_for(0.25)
                if self._api.world.now == before:
                    break  # simulation drained with submissions outstanding
            return len(self.entries)
        deadline = _time.monotonic() + timeout
        while _time.monotonic() < deadline:
            with self._lock:
                done = len(self.entries)
            if self._all_submitted and done >= self.issued:
                return done
            _time.sleep(0.02)
        with self._lock:
            return len(self.entries)

    def latencies(self) -> List[float]:
        with self._lock:
            return [e.latency for e in self.entries if e.latency is not None]
