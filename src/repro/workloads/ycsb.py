"""The YCSB core workloads (A-F).

Figure 4 of the paper compares MRP-Store (with and without the global ring),
Cassandra and MySQL under the Yahoo! Cloud Serving Benchmark.  This module
reproduces the six core workloads:

========  ==================================  =====================
Workload  Operation mix                       Request distribution
========  ==================================  =====================
A         50% read / 50% update               zipfian
B         95% read /  5% update               zipfian
C         100% read                           zipfian
D         95% read /  5% insert               latest
E         95% scan /  5% insert               zipfian (scan length uniform <= 100)
F         50% read / 50% read-modify-write    zipfian
========  ==================================  =====================

A workload instance targets any service exposing the MRP-Store client-library
surface (``read`` / ``update`` / ``insert`` / ``scan`` / ``read_modify_write``
returning :class:`~repro.smr.client.Request` objects), so the same generator
also drives the baselines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.errors import WorkloadError
from repro.smr.client import Request
from repro.workloads.distributions import LatestChooser, UniformChooser, ZipfianChooser

__all__ = ["YCSBConfig", "YCSBWorkload", "YCSB_WORKLOADS"]


@dataclass(frozen=True)
class YCSBConfig:
    """Configuration of one YCSB workload."""

    name: str
    read_proportion: float = 0.0
    update_proportion: float = 0.0
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    rmw_proportion: float = 0.0
    request_distribution: str = "zipfian"  # "zipfian" | "uniform" | "latest"
    record_count: int = 1000
    #: YCSB default record: 10 fields of 100 bytes.
    value_size: int = 1000
    max_scan_length: int = 100

    def __post_init__(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.scan_proportion
            + self.rmw_proportion
        )
        if not 0.999 <= total <= 1.001:
            raise WorkloadError(f"operation proportions of {self.name!r} must sum to 1, got {total}")
        if self.request_distribution not in ("zipfian", "uniform", "latest"):
            raise WorkloadError(f"unknown request distribution {self.request_distribution!r}")

    def scaled(self, record_count: int) -> "YCSBConfig":
        """The same mix over a different database size."""
        return replace(self, record_count=record_count)


#: The six YCSB core workloads with their standard mixes.
YCSB_WORKLOADS: Dict[str, YCSBConfig] = {
    "A": YCSBConfig("A", read_proportion=0.5, update_proportion=0.5),
    "B": YCSBConfig("B", read_proportion=0.95, update_proportion=0.05),
    "C": YCSBConfig("C", read_proportion=1.0),
    "D": YCSBConfig("D", read_proportion=0.95, insert_proportion=0.05, request_distribution="latest"),
    "E": YCSBConfig("E", scan_proportion=0.95, insert_proportion=0.05),
    "F": YCSBConfig("F", read_proportion=0.5, rmw_proportion=0.5),
}


class YCSBWorkload:
    """Generates :class:`Request` objects for a key-value service."""

    def __init__(self, service, config: YCSBConfig, series: Optional[str] = None) -> None:
        self.service = service
        self.config = config
        self.series = series or f"ycsb-{config.name}"
        self._insert_cursor = config.record_count
        if config.request_distribution == "uniform":
            self._chooser = UniformChooser(config.record_count)
        elif config.request_distribution == "latest":
            self._chooser = LatestChooser(config.record_count)
        else:
            self._chooser = ZipfianChooser(config.record_count)
        # Per-operation-type latency series for the workload-F breakdown.
        self.split_series_by_operation = False

    # ------------------------------------------------------------------
    def _series_for(self, operation: str) -> str:
        if self.split_series_by_operation:
            return f"{self.series}/{operation}"
        return self.series

    def _existing_key(self, rng: random.Random) -> str:
        index = min(self._chooser.next_index(rng), self._insert_cursor - 1)
        return self.service.key(index)

    def next_request(self, rng: random.Random) -> Request:
        config = self.config
        roll = rng.random()
        threshold = config.read_proportion
        if roll < threshold:
            return self.service.read(self._existing_key(rng), series=self._series_for("read"))
        threshold += config.update_proportion
        if roll < threshold:
            return self.service.update(
                self._existing_key(rng), config.value_size, series=self._series_for("update")
            )
        threshold += config.rmw_proportion
        if roll < threshold:
            return self.service.read_modify_write(
                self._existing_key(rng), config.value_size, series=self._series_for("read-modify-write")
            )
        threshold += config.scan_proportion
        if roll < threshold:
            start_index = self._chooser.next_index(rng)
            length = rng.randint(1, config.max_scan_length)
            start_key = self.service.key(start_index)
            end_key = self.service.key(start_index + length)
            return self.service.scan(start_key, end_key, series=self._series_for("scan"))
        # Insert: append a brand-new key and let the choosers know about it.
        key = self.service.key(self._insert_cursor)
        self._insert_cursor += 1
        self._chooser.grow(self._insert_cursor)
        return self.service.insert(key, config.value_size, series=self._series_for("insert"))
