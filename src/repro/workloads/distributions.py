"""Key-choice distributions used by the YCSB workloads.

The zipfian generator follows the algorithm of Gray et al. used by YCSB
("Quickly generating billion-record synthetic databases"), with the same
default skew constant of 0.99.  The *latest* distribution skews towards the
most recently inserted records, and the *scrambled* variant spreads the
zipfian popularity over the whole key space so that popular records are not
clustered.
"""

from __future__ import annotations

import math
import random
from typing import Optional

__all__ = ["UniformChooser", "ZipfianChooser", "LatestChooser", "ScrambledZipfianChooser"]


class UniformChooser:
    """Uniformly random record index in ``[0, count)``."""

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        self.count = count

    def next_index(self, rng: random.Random) -> int:
        return rng.randrange(self.count)

    def grow(self, new_count: int) -> None:
        self.count = max(self.count, new_count)


class ZipfianChooser:
    """Zipfian-distributed record index (YCSB's default request distribution)."""

    def __init__(self, count: int, theta: float = 0.99) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        self.count = count
        self.theta = theta
        self._recompute()

    def _recompute(self) -> None:
        self.alpha = 1.0 / (1.0 - self.theta)
        self.zetan = self._zeta(self.count, self.theta)
        self.zeta2 = self._zeta(2, self.theta)
        self.eta = (1 - (2.0 / self.count) ** (1 - self.theta)) / (1 - self.zeta2 / self.zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next_index(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.count * (self.eta * u - self.eta + 1) ** self.alpha)

    def grow(self, new_count: int) -> None:
        if new_count > self.count:
            self.count = new_count
            self._recompute()


class ScrambledZipfianChooser:
    """Zipfian popularity spread uniformly over the key space (YCSB scrambled zipfian)."""

    def __init__(self, count: int, theta: float = 0.99) -> None:
        self.count = count
        self._zipf = ZipfianChooser(count, theta)

    def next_index(self, rng: random.Random) -> int:
        base = self._zipf.next_index(rng)
        # Fowler-Noll-Vo style scrambling, kept deterministic and cheap.
        scrambled = (base * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return scrambled % self.count

    def grow(self, new_count: int) -> None:
        self.count = max(self.count, new_count)
        self._zipf.grow(new_count)


class LatestChooser:
    """Skewed towards the most recently inserted records (YCSB workload D)."""

    def __init__(self, count: int, theta: float = 0.99) -> None:
        self.count = count
        self._zipf = ZipfianChooser(count, theta)

    def next_index(self, rng: random.Random) -> int:
        offset = self._zipf.next_index(rng)
        index = self.count - 1 - offset
        return max(0, index)

    def grow(self, new_count: int) -> None:
        self.count = max(self.count, new_count)
        self._zipf.grow(new_count)
