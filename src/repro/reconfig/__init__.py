"""Dynamic reconfiguration of a running Multi-Ring Paxos deployment.

This package implements the runtime side of the ROADMAP's "scale by adding
rings" goal: live ring membership changes and elastic re-partitioning of the
MRP-Store, both layered on the atomic-multicast machinery itself (the
reconfiguration commands are ordered by the very rings they reconfigure, so
all replicas agree on the exact handoff points).

Modules:

* :mod:`repro.reconfig.commands` -- the control payloads circulated through
  the rings (ring splices, migration prepare/install, forwarded commands);
* :mod:`repro.reconfig.migration` -- the per-replica migration agent
  executing key-range handoffs deterministically;
* :mod:`repro.reconfig.elastic` -- MRP-Store-specific scale-out helpers
  (add a ring, split partitions onto it);
* :class:`repro.coordination.reconfig.ReconfigController` -- the
  coordinator-side controller sequencing reconfigurations through the
  registry (imported from :mod:`repro.coordination` to keep the control
  plane with the rest of the coordination code).
"""

from repro.reconfig.commands import (
    ControlCommand,
    ForwardedCommand,
    MigrationInstall,
    MigrationPrepare,
    ProposeControl,
    SpliceRing,
)
from repro.reconfig.migration import MigrationAgent

__all__ = [
    "ControlCommand",
    "ForwardedCommand",
    "MigrationInstall",
    "MigrationPrepare",
    "ProposeControl",
    "SpliceRing",
    "MigrationAgent",
]
