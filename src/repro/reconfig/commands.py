"""Control payloads of the reconfiguration subsystem.

Reconfiguration steps are ordered by the rings they affect: a control payload
is atomically multicast like any application value, so every learner of the
carrier ring observes it at exactly the same position of its deterministic
delivery sequence.  That position *is* the agreement on when the change takes
effect -- no extra consensus round is needed.

:class:`ControlCommand` is the marker base class; the Multi-Ring node
intercepts deliveries whose payload is a control command and routes them to
the reconfiguration handlers instead of the application.

The payloads deliberately use ``Any`` for cross-layer objects (partition
maps, SMR commands) to keep this module import-cycle free: it sits below
:mod:`repro.multiring.node`, which dispatches on these types.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.net.message import ProtocolMessage, estimate_size
from repro.types import GroupId

__all__ = [
    "ControlCommand",
    "SpliceRing",
    "MigrationPrepare",
    "MigrationInstall",
    "ForwardedCommand",
    "ProposeControl",
    "next_migration_id",
]

_migration_ids = itertools.count(1)


def next_migration_id() -> int:
    return next(_migration_ids)


class ControlCommand:
    """Marker base: a multicast payload addressed to the reconfiguration layer."""

    __slots__ = ()


@dataclass(frozen=True)
class SpliceRing(ControlCommand):
    """Splice ring ``group`` into the merges of ``learners`` at a round boundary.

    Delivered through a ring the target learners already subscribe to.  Each
    learner derives the splice round from its merge position at delivery time
    (``current_round + 1``), which is identical for all learners of one
    partition -- the agreed round boundary of the paper-style reconfiguration.
    """

    group: GroupId
    learners: Tuple[str, ...]


@dataclass(frozen=True)
class MigrationPrepare(ControlCommand):
    """Handoff point marker, multicast to the **source** ring of a migration.

    All replicas delivering it agree that commands ordered before it belong to
    the source partition and commands after it to the destination.  ``new_map``
    is the next version of the service's partition map; ``designated`` names
    the one source replica responsible for shipping the state and forwarding
    late commands (every replica computes the same handoff, only one talks).
    """

    migration_id: int
    service: str
    new_map: Any  # PartitionMap (kept opaque to avoid an import cycle)
    source: str
    dest: str
    designated: str


@dataclass(frozen=True)
class MigrationInstall(ControlCommand):
    """State handoff, multicast to the **destination** ring.

    Carries the migrated entries extracted at the handoff point.  Destination
    replicas install the entries, adopt ``new_map`` and release any buffered
    commands -- all at the same position of their delivery sequence.
    """

    migration_id: int
    service: str
    new_map: Any
    source: str
    dest: str
    entries: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return 256 + sum(len(key) + size for key, (size, _v) in self.entries.items())


@dataclass(frozen=True)
class ForwardedCommand(ControlCommand):
    """An application command re-multicast from source to destination ring.

    Issued by the designated source replica for commands that were ordered
    *after* the handoff point on the source ring but address keys that moved.
    The destination executes (and answers) them; dedup is by command id.
    """

    migration_id: int
    dest: str
    command: Any  # repro.smr.command.Command

    @property
    def size_bytes(self) -> int:
        return 64 + getattr(self.command, "size_bytes", 64)


@dataclass(frozen=True)
class ProposeControl(ProtocolMessage):
    """Ask a proposer node to multicast ``payload`` on ``group``.

    The reconfiguration controller is not a ring member; it injects control
    values through any live proposer of the target ring, exactly like a
    client submitting a command through a front-end.
    """

    group: GroupId
    payload: Any
    payload_bytes: Optional[int] = None

    @property
    def size_bytes(self) -> int:  # type: ignore[override]
        if self.payload_bytes is not None:
            return 64 + self.payload_bytes
        explicit = getattr(self.payload, "size_bytes", None)
        if isinstance(explicit, int):
            return 64 + explicit
        return 64 + estimate_size(self.payload)
