"""The per-replica migration agent: deterministic key-range handoff.

One :class:`MigrationAgent` is attached to every service replica.  It turns
the two control commands of a migration into deterministic state transitions:

* **source side** -- on delivery of :class:`~repro.reconfig.commands.
  MigrationPrepare`, every source replica extracts the moving key range at
  exactly the same position of its command stream (the handoff point) and
  adopts the new partition map.  The *designated* replica additionally ships
  the extracted state to the destination ring and, from then on, re-multicasts
  any late command addressing a moved key (clients routing with a stale map
  keep working; nothing is lost, nothing executes twice);

* **destination side** -- replicas of a freshly added partition buffer every
  application command until their :class:`~repro.reconfig.commands.
  MigrationInstall` arrives, then install the entries, adopt the map and
  replay the buffer in delivery order.  Because buffering is a function of the
  delivery sequence alone, all destination replicas replay identically.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.reconfig.commands import (
    ForwardedCommand,
    MigrationInstall,
    MigrationPrepare,
    ProposeControl,
)

__all__ = ["MigrationAgent"]

#: Operations whose second element is the addressed key.
_POINT_OPS = ("read", "update", "insert", "delete", "rmw")


class _SourceMigration:
    """Source-side bookkeeping for one completed handoff."""

    def __init__(self, prepare: MigrationPrepare) -> None:
        self.migration_id = prepare.migration_id
        self.new_map = prepare.new_map
        self.dest = prepare.dest
        self.designated = prepare.designated

    def moves(self, key: str) -> bool:
        return self.new_map.partition_of(key) == self.dest


class MigrationAgent:
    """Executes key-range migrations on behalf of one replica."""

    def __init__(self, replica, service: str = "mrp-store", awaiting_install: bool = False) -> None:
        self.replica = replica
        self.service = service
        #: True on replicas of a freshly added partition: every application
        #: command is buffered until the initial state handoff is delivered.
        self.awaiting_install = awaiting_install
        self._buffered: List[Tuple[Any, Any]] = []
        self._source_migrations: List[_SourceMigration] = []
        self._installed_ids: set = set()
        self._forwarded_seen: set = set()
        self.commands_forwarded = 0
        self.commands_buffered = 0
        self.migrations_prepared = 0
        self.migrations_installed = 0
        replica.on_control(self._on_control)
        replica.command_gate = self._gate
        replica.migration_agent = self

    # ------------------------------------------------------------------
    # the command gate (called by the replica for every delivered command)
    # ------------------------------------------------------------------
    def _gate(self, command, group) -> bool:
        if self.awaiting_install:
            self._buffered.append((command, group))
            self.commands_buffered += 1
            return False
        key = self._key_of(command)
        if key is not None:
            for migration in self._source_migrations:
                if migration.moves(key):
                    # Ordered after the handoff point but addressing a moved
                    # key: the destination partition owns it now.
                    if self.replica.name == migration.designated:
                        self._forward(migration, command)
                    return False
        return True

    @staticmethod
    def _key_of(command) -> Optional[str]:
        operation = getattr(command, "operation", None)
        if (
            isinstance(operation, tuple)
            and len(operation) >= 2
            and operation[0] in _POINT_OPS
            and isinstance(operation[1], str)
        ):
            return operation[1]
        return None

    # ------------------------------------------------------------------
    # control command handling (delivered through the merge)
    # ------------------------------------------------------------------
    def _on_control(self, delivery) -> None:
        payload = delivery.value.payload
        if isinstance(payload, MigrationPrepare) and payload.service == self.service:
            self._on_prepare(payload)
        elif isinstance(payload, MigrationInstall) and payload.service == self.service:
            self._on_install(payload, delivery.group)
        elif isinstance(payload, ForwardedCommand):
            self._on_forwarded(payload, delivery.group)

    def _on_prepare(self, msg: MigrationPrepare) -> None:
        machine = self.replica.state_machine
        if self.replica.partition == msg.source and not any(
            m.migration_id == msg.migration_id for m in self._source_migrations
        ):
            entries = machine.extract_owned_by(msg.new_map, msg.dest)
            self._source_migrations.append(_SourceMigration(msg))
            self.migrations_prepared += 1
            if self.replica.name == msg.designated:
                install = MigrationInstall(
                    migration_id=msg.migration_id,
                    service=msg.service,
                    new_map=msg.new_map,
                    source=msg.source,
                    dest=msg.dest,
                    entries=entries,
                )
                self._propose_to(msg.new_map.group_of_partition(msg.dest), install)
        # Every replica on the carrier ring adopts the new map (their own
        # ranges are untouched; only routing knowledge changes).
        machine.set_partition_map(msg.new_map)

    def _on_install(self, msg: MigrationInstall, group) -> None:
        if self.replica.partition != msg.dest:
            return
        if msg.migration_id in self._installed_ids:
            return  # duplicate (e.g. re-shipped during source recovery replay)
        self._installed_ids.add(msg.migration_id)
        machine = self.replica.state_machine
        machine.absorb_entries(msg.entries)
        machine.set_partition_map(msg.new_map)
        self.migrations_installed += 1
        self.replica.world.monitor.increment("reconfig/migrations_installed")
        if self.awaiting_install:
            self.awaiting_install = False
            buffered, self._buffered = self._buffered, []
            for command, carrier in buffered:
                self.replica._execute_command(command, carrier)

    def _on_forwarded(self, msg: ForwardedCommand, group) -> None:
        if self.replica.partition != msg.dest:
            return
        command_id = getattr(msg.command, "command_id", None)
        if command_id in self._forwarded_seen:
            return
        self._forwarded_seen.add(command_id)
        if self.awaiting_install:
            self._buffered.append((msg.command, group))
            self.commands_buffered += 1
            return
        self.replica._execute_command(msg.command, group)

    # ------------------------------------------------------------------
    # outbound
    # ------------------------------------------------------------------
    def _forward(self, migration: _SourceMigration, command) -> None:
        payload = ForwardedCommand(
            migration_id=migration.migration_id, dest=migration.dest, command=command
        )
        self._propose_to(migration.new_map.group_of_partition(migration.dest), payload)
        self.commands_forwarded += 1
        self.replica.world.monitor.increment("reconfig/commands_forwarded")

    def _propose_to(self, group, payload) -> None:
        """Inject ``payload`` into ``group`` through one of its live proposers."""
        node = self.replica
        descriptor = node.registry.ring(group)
        for proposer in descriptor.proposers:
            if node.world.has_process(proposer) and node.world.process(proposer).alive:
                node.send_direct(
                    proposer,
                    ProposeControl(group=group, payload=payload, payload_bytes=payload.size_bytes),
                )
                return
