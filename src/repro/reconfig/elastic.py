"""Elastic MRP-Store scale-out: add a ring, split partitions onto it.

:func:`scale_out` performs the full live expansion the paper's Figure 7
motivates, as a *runtime* event:

1. build the new ring's acceptor processes and the replicas of the new
   partitions (they start immediately -- the world supports late joiners);
2. add the ring through the :class:`~repro.coordination.reconfig.
   ReconfigController` (existing learners, if any, are spliced at a round
   boundary);
3. initiate one key-range migration per split; the migration agents complete
   the handoffs deterministically while traffic keeps flowing.

The helper only wires objects together -- all correctness-critical ordering
comes from the control commands travelling through the rings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.multiring.deployment import RingSpec
from repro.reconfig.migration import MigrationAgent
from repro.services.mrpstore.service import SERVICE_NAME, MRPStore
from repro.services.mrpstore.state import MRPStoreStateMachine
from repro.runtime.interfaces import StorageMode
from repro.smr.frontend import ProposerFrontend
from repro.smr.replica import Replica
from repro.types import GroupId

__all__ = ["scale_out", "migrations_installed"]

#: One split: ``(source_partition, new_partition, split_key)``.
Split = Tuple[str, str, str]


def scale_out(
    store: MRPStore,
    controller,
    new_group: GroupId,
    splits: Sequence[Split],
    replicas_per_partition: Optional[int] = None,
    acceptors_per_partition: Optional[int] = None,
    site: Optional[str] = None,
) -> List[int]:
    """Add ``new_group`` to a running store and migrate ``splits`` onto it.

    Returns the migration ids, in initiation order.  The migrations complete
    asynchronously; run the world and use :func:`migrations_installed` to
    check for completion.
    """
    if not splits:
        raise ServiceError("scale_out needs at least one partition split")
    current = store.current_map
    template = store.partitions[splits[0][0]]
    replicas_per = replicas_per_partition or len(template.replicas)
    acceptors_per = acceptors_per_partition or len(template.acceptors)
    deployment = store.deployment
    world = store.world

    acceptor_names = [f"{new_group}-acc{i}" for i in range(acceptors_per)]
    new_partitions = [new_partition for _source, new_partition, _key in splits]

    # Replicas of the new partitions.  Their state machines start with the
    # *current* map (under which they own nothing); the migration install
    # hands them their key range and the new map version atomically.
    ring_replica_names: List[str] = []
    partition_replicas: Dict[str, List[Replica]] = {}
    recovery_enabled = store.enable_recovery
    for new_partition in new_partitions:
        replicas: List[Replica] = []
        for index in range(replicas_per):
            name = f"{new_partition}-rep{index}"
            machine = MRPStoreStateMachine(new_partition, current)
            replica = Replica(
                world,
                deployment.registry,
                name,
                state_machine=machine,
                partition=new_partition,
                config=store.config,
                site=site,
                monitor_series=new_partition,
            )
            deployment.nodes[name] = replica
            MigrationAgent(replica, service=SERVICE_NAME, awaiting_install=True)
            if recovery_enabled:
                disk = world.new_store(StorageMode.SYNC_SSD)
                replica.enable_recovery(store.recovery_config, checkpoint_disk=disk)
            replicas.append(replica)
            ring_replica_names.append(name)
        partition_replicas[new_partition] = replicas

    spec = RingSpec(
        group=new_group,
        members=acceptor_names + ring_replica_names,
        acceptors=acceptor_names,
        proposers=acceptor_names,
        learners=ring_replica_names,
        storage_mode=store.storage_mode,
    )
    sites = {name: site for name in spec.members} if site else None
    controller.add_ring(spec, sites=sites)
    if recovery_enabled:
        # Mirror the store's construction-time wiring: the new ring's
        # coordinator runs trim rounds and every acceptor executes them, so
        # the added acceptor logs do not grow without bound.
        from repro.recovery.trimming import TrimProtocol

        for acceptor_name in acceptor_names:
            TrimProtocol(deployment.node(acceptor_name), store.recovery_config).start()

    frontends = [
        ProposerFrontend(
            deployment.node(name), batching=store.batching, router=store.route_by_epoch
        )
        for name in acceptor_names
    ]
    for new_partition in new_partitions:
        store.register_partition(
            new_partition, new_group, acceptor_names, partition_replicas[new_partition], frontends
        )

    migration_ids: List[int] = []
    for source, new_partition, split_key in splits:
        designated = store.partitions[source].replicas[0].name
        migration_id, _new_map = controller.migrate(
            SERVICE_NAME, source, new_partition, split_key, new_group, designated
        )
        migration_ids.append(migration_id)
    return migration_ids


def migrations_installed(store: MRPStore, partitions: Sequence[str]) -> bool:
    """True when every replica of ``partitions`` has installed its handoff."""
    for name in partitions:
        for replica in store.partitions[name].replicas:
            agent = getattr(replica, "migration_agent", None)
            if agent is None or agent.awaiting_install:
                return False
    return True
