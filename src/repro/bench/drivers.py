"""Benchmark load drivers that do not go through the client/replica stack.

The Figure 3 baseline drives Multi-Ring Paxos directly with a "dummy service":
proposer processes keep a fixed number of values outstanding and propose a new
one as soon as one of theirs is delivered locally.  That is what
:class:`ClosedLoopProposerDriver` implements.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.multiring.merge import Delivery
from repro.multiring.node import MultiRingNode
from repro.types import GroupId, Value

__all__ = ["ClosedLoopProposerDriver"]


class ClosedLoopProposerDriver:
    """Keeps ``threads`` proposals outstanding on one node, one group.

    Each outstanding slot mimics one proposer thread of the paper's setup:
    it proposes a value and proposes the next one only after the local
    learner delivered the previous one.  Latencies are recorded in the world
    monitor under ``series``.
    """

    def __init__(
        self,
        node: MultiRingNode,
        group: GroupId,
        value_size: int,
        threads: int,
        series: str,
        payload_tag: Optional[str] = None,
    ) -> None:
        self.node = node
        self.group = group
        self.value_size = value_size
        self.threads = threads
        self.series = series
        self.payload_tag = payload_tag or f"dummy-{node.name}"
        self._outstanding: Set[int] = set()
        self.completed = 0
        self._sim = node.world.sim
        self._monitor = node.world.monitor
        node.on_deliver(self._on_delivery, group=group)

    def start(self) -> None:
        """Issue the initial window of proposals.  Call after the world started."""
        # Resolve the ring role once: the driver proposes through it on
        # every completion (multicast() would redo the membership lookups).
        self._role = self.node.role(self.group)
        for _ in range(self.threads):
            self._propose()

    def _propose(self) -> None:
        node = self.node
        if not node.alive:
            return
        value = Value.create(
            self.payload_tag, self.value_size, proposer=node.name, created_at=self._sim._now
        )
        self._role.propose(value)
        self._outstanding.add(value.uid)

    def _on_delivery(self, delivery: Delivery) -> None:
        value = delivery.value
        uid = value.uid
        outstanding = self._outstanding
        if uid not in outstanding:
            return
        outstanding.discard(uid)
        self.completed += 1
        now = self._sim.now
        self._monitor.record_operation(
            self.series, now, now - value.created_at, value.size_bytes
        )
        self._propose()
