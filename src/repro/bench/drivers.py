"""Benchmark load drivers that do not go through the client/replica stack.

The Figure 3 baseline drives Multi-Ring Paxos directly with a "dummy service":
proposer processes keep a fixed number of values outstanding and propose a new
one as soon as one of theirs is delivered locally.  That is what
:class:`ClosedLoopProposerDriver` implements.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.multiring.merge import Delivery
from repro.multiring.node import MultiRingNode
from repro.types import GroupId

__all__ = ["ClosedLoopProposerDriver"]


class ClosedLoopProposerDriver:
    """Keeps ``threads`` proposals outstanding on one node, one group.

    Each outstanding slot mimics one proposer thread of the paper's setup:
    it proposes a value and proposes the next one only after the local
    learner delivered the previous one.  Latencies are recorded in the world
    monitor under ``series``.
    """

    def __init__(
        self,
        node: MultiRingNode,
        group: GroupId,
        value_size: int,
        threads: int,
        series: str,
        payload_tag: Optional[str] = None,
    ) -> None:
        self.node = node
        self.group = group
        self.value_size = value_size
        self.threads = threads
        self.series = series
        self.payload_tag = payload_tag or f"dummy-{node.name}"
        self._outstanding: Set[int] = set()
        self.completed = 0
        node.on_deliver(self._on_delivery)

    def start(self) -> None:
        """Issue the initial window of proposals.  Call after the world started."""
        for _ in range(self.threads):
            self._propose()

    def _propose(self) -> None:
        if not self.node.alive:
            return
        value = self.node.multicast(self.group, self.payload_tag, self.value_size)
        self._outstanding.add(value.uid)

    def _on_delivery(self, delivery: Delivery) -> None:
        uid = delivery.value.uid
        if uid not in self._outstanding:
            return
        self._outstanding.discard(uid)
        self.completed += 1
        latency = self.node.now - delivery.value.created_at
        self.node.world.monitor.record_operation(
            self.series,
            completion_time=self.node.now,
            latency=latency,
            size_bytes=delivery.value.size_bytes,
        )
        self._propose()
