"""Plain-text reporting helpers for the benchmark harness."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an ASCII table with a title line (used by the CLI and EXPERIMENTS.md)."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    header_line = "  ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, points: Sequence[Sequence[float]], x_label: str = "x", y_label: str = "y") -> str:
    """Render a two-column series (e.g. a latency CDF or a throughput timeline)."""
    return format_table(title, [x_label, y_label], points)


def format_kv(title: str, mapping: Dict[str, object]) -> str:
    """Render a key/value summary block."""
    rows = [(key, mapping[key]) for key in mapping]
    return format_table(title, ["metric", "value"], rows)
