"""Figure 5: dLog vs a Bookkeeper-like ensemble log.

Paper setup (Section 8.3.3): both systems write synchronously to disk; dLog
uses two rings with three acceptors per ring, learners subscribe to both
rings; Bookkeeper uses an ensemble of the same three nodes; a multithreaded
client sends 1 KB append requests.  Reported metrics: throughput (ops/s) and
average latency (ms) as the number of client threads grows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines.ensemble_log import EnsembleLog
from repro.bench.report import format_table
from repro.config import MultiRingConfig
from repro.services.dlog import DLog
from repro.sim.disk import StorageMode
from repro.sim.topology import lan_topology
from repro.sim.world import World
from repro.smr.client import ClosedLoopClient
from repro.workloads.simple import AppendWorkload

__all__ = ["run_figure5", "DEFAULT_CLIENT_COUNTS"]

DEFAULT_CLIENT_COUNTS = (1, 25, 50, 100, 150, 200)
_APPEND_SIZE = 1024


def _run_dlog(client_threads: int, duration: float, seed: int) -> Dict[str, float]:
    world = World(topology=lan_topology(), seed=seed, timeline_window=0.5)
    dlog = DLog(
        world,
        logs=("log-0", "log-1"),
        replicas=1,
        acceptors_per_log=3,
        storage_mode=StorageMode.SYNC_SSD,
        use_global_ring=True,
        config=MultiRingConfig.datacenter(),
    )
    series = f"dlog/{client_threads}"
    workload = AppendWorkload(dlog, logs=["log-0", "log-1"], append_size=_APPEND_SIZE, series=series)
    client = ClosedLoopClient(
        world,
        "dlog-client",
        workload,
        dlog.frontends_for_client(0),
        threads=client_threads,
        series=series,
    )
    world.run(until=duration)
    warmup = duration * 0.2
    stats = world.monitor.latency_stats(series)
    return {
        "throughput_ops": world.monitor.throughput_ops(series, start=warmup, end=duration),
        "latency_ms": stats.mean * 1e3,
        "completed": float(client.completed),
    }


def _run_bookkeeper(client_threads: int, duration: float, seed: int) -> Dict[str, float]:
    world = World(topology=lan_topology(), seed=seed, timeline_window=0.5)
    bookkeeper = EnsembleLog(world, bookies=3, ack_quorum=2, storage_mode=StorageMode.SYNC_SSD)
    series = f"bookkeeper/{client_threads}"

    class _BKAppends:
        def next_request(self, rng):
            return bookkeeper.append("ledger", _APPEND_SIZE, series=series)

    client = ClosedLoopClient(
        world,
        "bk-client",
        _BKAppends(),
        bookkeeper.frontends_for_client(0),
        threads=client_threads,
        series=series,
    )
    world.run(until=duration)
    warmup = duration * 0.2
    stats = world.monitor.latency_stats(series)
    return {
        "throughput_ops": world.monitor.throughput_ops(series, start=warmup, end=duration),
        "latency_ms": stats.mean * 1e3,
        "completed": float(client.completed),
    }


def run_figure5(
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    duration: float = 10.0,
    seed: int = 42,
) -> Dict:
    """Sweep the number of client threads for dLog and the Bookkeeper-like baseline."""
    results: Dict[str, Dict[int, Dict[str, float]]] = {"dlog": {}, "bookkeeper": {}}
    for count in client_counts:
        results["dlog"][count] = _run_dlog(count, duration, seed)
        results["bookkeeper"][count] = _run_bookkeeper(count, duration, seed)

    headers = ["clients", "dLog ops/s", "Bookkeeper ops/s", "dLog latency ms", "Bookkeeper latency ms"]
    rows = [
        [
            count,
            results["dlog"][count]["throughput_ops"],
            results["bookkeeper"][count]["throughput_ops"],
            results["dlog"][count]["latency_ms"],
            results["bookkeeper"][count]["latency_ms"],
        ]
        for count in client_counts
    ]
    report = format_table("Figure 5: dLog vs Bookkeeper (1 KB appends, sync disk)", headers, rows)
    return {
        "experiment": "figure5",
        "results": results,
        "client_counts": list(client_counts),
        "report": report,
    }
