"""Benchmark harness: one runner per table/figure of the paper's evaluation.

Every module exposes a ``run_figureN(...)`` function returning a plain dict of
results (series, throughputs, latencies) plus a formatted text report.  The
``benchmarks/`` directory wraps these runners with pytest-benchmark at reduced
scale; ``python -m repro.bench <figure>`` runs them standalone, optionally at
paper scale.

Absolute numbers come from the simulator's calibration constants and are not
expected to match the paper's hardware; the *shapes* (which system wins, how
scaling behaves, where storage modes separate) are the reproduction targets
and are recorded in EXPERIMENTS.md.
"""

from repro.bench.figure3 import run_figure3
from repro.bench.figure4 import run_figure4
from repro.bench.figure5 import run_figure5
from repro.bench.figure6 import run_figure6
from repro.bench.figure7 import run_figure7
from repro.bench.figure8 import run_figure8
from repro.bench.ablations import run_rate_leveling_ablation, run_merge_granularity_ablation
from repro.bench.report import format_table

__all__ = [
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_rate_leveling_ablation",
    "run_merge_granularity_ablation",
    "format_table",
]
