"""Latency-percentile, SLO and cross-run analytics over ``BENCH_*.json``.

Every bench run leaves a ``BENCH_<experiment>.json`` behind; before this
module they piled up with no way to compare them.  This is the analysis
layer:

* :func:`latency_summary` distills raw latency samples into the percentile
  vocabulary used across the repo (``p50_ms`` / ``p90_ms`` / ``p99_ms`` /
  ``p999_ms``);
* :class:`SLOTarget` + :func:`evaluate_slo` check those percentiles against
  declared service-level objectives and produce per-percentile verdicts;
* :func:`make_analytics` builds the versioned ``analytics`` section that
  new-schema bench files embed (the ``workload`` experiment writes one, see
  ``docs/benchmarks.md`` for the schema);
* :func:`extract_series` reads percentile tables out of *any* bench file --
  the ``analytics`` section when present, otherwise a deep scan for
  ``p50_ms``/``p99_ms`` blocks (so pre-analytics files from older runs still
  compare);
* :func:`compare_runs` lines several runs up side by side, and the CLI
  renders the comparison:

  .. code-block:: sh

      python -m repro.bench.analytics BENCH_workload.json BENCH_shootout.json
      python -m repro.bench.analytics --glob 'BENCH_*.json' --history
      python -m repro.bench.analytics BENCH_workload.json --slo 'openloop:p99<=250'

The benchmark-regression gate (:mod:`repro.bench.regression`) uses
:func:`analytics_of` to read these sections tolerantly: a file written by an
older schema produces a warning, never a ``KeyError``.
"""

from __future__ import annotations

import argparse
import glob as _glob
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.report import format_table
from repro.obs.stats import percentile

__all__ = [
    "ANALYTICS_SCHEMA",
    "SLOTarget",
    "latency_summary",
    "evaluate_slo",
    "make_analytics",
    "analytics_of",
    "extract_series",
    "compare_runs",
    "main",
]

#: Version of the embedded ``analytics`` section; bump on shape changes.
ANALYTICS_SCHEMA = 1

#: The percentile columns every summary carries, in report order.
PERCENTILE_KEYS = ("p50_ms", "p90_ms", "p99_ms", "p999_ms")


# ----------------------------------------------------------------------
# summaries and SLOs
# ----------------------------------------------------------------------
def latency_summary(samples_seconds: Sequence[float]) -> Dict[str, float]:
    """Percentile summary (milliseconds) of raw latency samples (seconds)."""
    ordered = sorted(samples_seconds)
    if not ordered:
        return {"count": 0}
    scale = 1e3
    return {
        "count": len(ordered),
        "mean_ms": scale * sum(ordered) / len(ordered),
        "p50_ms": scale * percentile(ordered, 0.50),
        "p90_ms": scale * percentile(ordered, 0.90),
        "p99_ms": scale * percentile(ordered, 0.99),
        "p999_ms": scale * percentile(ordered, 0.999),
        "max_ms": scale * ordered[-1],
    }


@dataclass(frozen=True)
class SLOTarget:
    """Declared latency objectives for one series (None = not checked)."""

    series: str
    p50_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    p999_ms: Optional[float] = None

    _SPEC = re.compile(r"^(p50|p99|p999)\s*<=\s*([0-9.]+)$")

    @classmethod
    def parse(cls, spec: str) -> "SLOTarget":
        """Parse ``"series:p99<=250,p50<=80"`` (milliseconds)."""
        series, _, rest = spec.partition(":")
        if not series or not rest:
            raise ValueError(f"bad SLO spec {spec!r}; expected 'series:p99<=250,...'")
        kwargs: Dict[str, float] = {}
        for clause in rest.split(","):
            match = cls._SPEC.match(clause.strip())
            if not match:
                raise ValueError(
                    f"bad SLO clause {clause.strip()!r} in {spec!r}; "
                    "expected e.g. 'p99<=250'"
                )
            kwargs[f"{match.group(1)}_ms"] = float(match.group(2))
        return cls(series=series, **kwargs)

    def as_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"series": self.series}
        for key in ("p50_ms", "p99_ms", "p999_ms"):
            value = getattr(self, key)
            if value is not None:
                record[key] = value
        return record


def evaluate_slo(summary: Dict[str, float], target: SLOTarget) -> Dict[str, Any]:
    """Per-percentile verdicts of ``summary`` against ``target``.

    A percentile missing from the summary (e.g. an empty run) fails its
    check -- an SLO that cannot be measured is not met.
    """
    checks: List[Dict[str, Any]] = []
    for key in ("p50_ms", "p99_ms", "p999_ms"):
        limit = getattr(target, key)
        if limit is None:
            continue
        actual = summary.get(key)
        ok = actual is not None and actual <= limit
        checks.append(
            {
                "percentile": key,
                "target_ms": limit,
                "actual_ms": actual,
                "ok": ok,
            }
        )
    return {"series": target.series, "checks": checks, "ok": all(c["ok"] for c in checks)}


def make_analytics(
    series_samples: Dict[str, Sequence[float]],
    slos: Sequence[SLOTarget] = (),
) -> Dict[str, Any]:
    """The versioned ``analytics`` section embedded in new-schema bench files."""
    series = {name: latency_summary(samples) for name, samples in series_samples.items()}
    verdicts = []
    for target in slos:
        verdicts.append(evaluate_slo(series.get(target.series, {}), target))
    return {
        "schema": ANALYTICS_SCHEMA,
        "series": series,
        "slo": verdicts,
        "slo_ok": all(v["ok"] for v in verdicts),
    }


# ----------------------------------------------------------------------
# tolerant readers
# ----------------------------------------------------------------------
def analytics_of(data: Any, source: str = "bench file") -> Tuple[Optional[Dict], List[str]]:
    """The ``analytics`` section of a bench result, tolerantly.

    Returns ``(section, warnings)``.  A file written before the analytics
    schema (or with a malformed section) yields ``(None, [warning, ...])``
    -- callers print the warning instead of crashing, which is what lets
    the regression gate compare against pre-analytics baselines.
    """
    warnings: List[str] = []
    if not isinstance(data, dict):
        return None, [f"{source}: not a JSON object; no analytics to read"]
    section = data.get("analytics")
    if section is None:
        return None, [
            f"{source}: no 'analytics' section (older schema); "
            "percentile/SLO fields unavailable"
        ]
    if not isinstance(section, dict) or not isinstance(section.get("series"), dict):
        return None, [f"{source}: malformed 'analytics' section; ignored"]
    schema = section.get("schema")
    if schema != ANALYTICS_SCHEMA:
        warnings.append(
            f"{source}: analytics schema {schema!r} (this build reads "
            f"{ANALYTICS_SCHEMA}); reading best-effort"
        )
    return section, warnings


def _scan_percentile_blocks(node: Any, path: str, found: Dict[str, Dict[str, float]]) -> None:
    if isinstance(node, dict):
        if isinstance(node.get("p50_ms"), (int, float)) and isinstance(
            node.get("p99_ms"), (int, float)
        ):
            found[path or "latency"] = {
                key: float(value)
                for key, value in node.items()
                if isinstance(value, (int, float)) and (key.endswith("_ms") or key == "count")
            }
            return
        for key, value in node.items():
            if key.startswith("_"):
                continue
            _scan_percentile_blocks(value, f"{path}/{key}" if path else str(key), found)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            _scan_percentile_blocks(value, f"{path}[{index}]", found)


def extract_series(data: Any, source: str = "bench file") -> Tuple[Dict[str, Dict[str, float]], List[str]]:
    """Every latency-percentile table in a bench file, by series name.

    New-schema files contribute their ``analytics.series`` map; for older
    files the whole document is scanned for ``p50_ms``/``p99_ms`` blocks
    (e.g. the shootout's per-engine latency tables) so cross-run comparison
    works across schema generations.
    """
    section, warnings = analytics_of(data, source)
    if section is not None:
        return dict(section["series"]), warnings
    found: Dict[str, Dict[str, float]] = {}
    _scan_percentile_blocks(data, "", found)
    if not found:
        warnings.append(f"{source}: no latency percentile tables found")
    return found, warnings


# ----------------------------------------------------------------------
# cross-run comparison
# ----------------------------------------------------------------------
def compare_runs(
    labeled: Sequence[Tuple[str, Any]],
    *,
    series_filter: Optional[str] = None,
    percentiles: Sequence[str] = ("p50_ms", "p99_ms"),
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Line up percentile tables across runs.

    Returns ``(rows, warnings)``; each row is ``{"series", "percentile",
    "values": {label: value}, "delta_pct"}`` where ``delta_pct`` is the
    last run relative to the first (positive = slower).
    """
    warnings: List[str] = []
    per_run: List[Tuple[str, Dict[str, Dict[str, float]]]] = []
    for label, data in labeled:
        series, notes = extract_series(data, source=label)
        warnings.extend(notes)
        per_run.append((label, series))
    names: List[str] = []
    for _, series in per_run:
        for name in series:
            if name not in names:
                names.append(name)
    if series_filter is not None:
        names = [n for n in names if series_filter in n]
    rows: List[Dict[str, Any]] = []
    for name in names:
        for key in percentiles:
            values: Dict[str, Optional[float]] = {}
            for label, series in per_run:
                block = series.get(name)
                values[label] = block.get(key) if block else None
            present = [v for v in values.values() if v is not None]
            if not present:
                continue
            # The delta needs two runs to compare; a series seen in only one
            # run gets no delta instead of a misleading +0.0%.
            delta = None
            if len(present) >= 2 and present[0] > 0:
                delta = 100.0 * (present[-1] - present[0]) / present[0]
            rows.append(
                {"series": name, "percentile": key, "values": values, "delta_pct": delta}
            )
    return rows, warnings


def _format_comparison(rows: List[Dict[str, Any]], labels: Sequence[str]) -> str:
    headers = ["series", "pct"] + [str(label) for label in labels] + ["Δ last vs first"]
    table_rows = []
    for row in rows:
        cells = [row["series"], row["percentile"].replace("_ms", "")]
        for label in labels:
            value = row["values"].get(label)
            cells.append("-" if value is None else f"{value:.2f}ms")
        delta = row["delta_pct"]
        cells.append("-" if delta is None else f"{delta:+.1f}%")
        table_rows.append(cells)
    return format_table("Cross-run latency percentiles", headers, table_rows)


def _format_slo(section: Dict[str, Any], label: str) -> List[str]:
    lines = []
    for verdict in section.get("slo", []):
        for check in verdict.get("checks", []):
            actual = check.get("actual_ms")
            actual_text = "-" if actual is None else f"{actual:.2f}ms"
            status = "PASS" if check.get("ok") else "FAIL"
            lines.append(
                f"  [{status}] {label} {verdict.get('series')}: "
                f"{check.get('percentile')} {actual_text} "
                f"(target <= {check.get('target_ms'):.2f}ms)"
            )
    return lines


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _load(path: Path) -> Tuple[str, Any]:
    try:
        return path.name, json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"error: cannot read {path}: {error}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-analytics",
        description=(
            "Latency-percentile, SLO and cross-run analysis over BENCH_*.json "
            "files (see docs/benchmarks.md for the file schema)."
        ),
    )
    parser.add_argument(
        "files", nargs="*", type=Path,
        help="bench JSON files to analyze (default: BENCH_*.json in the cwd)",
    )
    parser.add_argument(
        "--glob", default=None,
        help="glob pattern for bench files (used when no files are listed)",
    )
    parser.add_argument(
        "--series", default=None,
        help="only show series whose name contains this substring",
    )
    parser.add_argument(
        "--percentiles", default="p50,p99",
        help="comma-separated percentile columns (of p50,p90,p99,p999)",
    )
    parser.add_argument(
        "--slo", action="append", default=[], metavar="SPEC",
        help="check an SLO, e.g. 'openloop:p99<=250,p50<=80' (ms; repeatable)",
    )
    parser.add_argument(
        "--history", action="store_true",
        help="order runs by their recorded_at field (file mtime fallback) "
             "and render the comparison as a regression history",
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help="also write the structured comparison rows to this JSON file",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any SLO check fails (embedded or --slo)",
    )
    args = parser.parse_args(argv)

    paths = list(args.files)
    if not paths:
        pattern = args.glob or "BENCH_*.json"
        paths = [Path(p) for p in sorted(_glob.glob(pattern))]
    if not paths:
        print("no bench files found (pass paths or --glob)", file=sys.stderr)
        return 2
    for path in paths:
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2

    if args.history:
        def _stamp(path: Path) -> float:
            try:
                data = json.loads(path.read_text())
                recorded = data.get("recorded_at")
                if isinstance(recorded, (int, float)):
                    return float(recorded)
            except (OSError, json.JSONDecodeError):
                pass
            return path.stat().st_mtime

        paths = sorted(paths, key=_stamp)

    labeled = [_load(path) for path in paths]
    keys = []
    for token in args.percentiles.split(","):
        token = token.strip().rstrip("ms").rstrip("_")
        key = f"{token}_ms"
        if key not in PERCENTILE_KEYS:
            parser.error(f"unknown percentile {token!r}; pick from p50,p90,p99,p999")
        keys.append(key)

    rows, warnings = compare_runs(labeled, series_filter=args.series, percentiles=keys)
    for note in warnings:
        print(f"warning: {note}", file=sys.stderr)
    if not rows:
        print("no latency percentile data found in the given files", file=sys.stderr)
        return 2
    labels = [label for label, _ in labeled]
    print(_format_comparison(rows, labels))

    # SLO verdicts: embedded sections first, then any --slo overrides.
    failures = 0
    slo_lines: List[str] = []
    for label, data in labeled:
        section, _ = analytics_of(data, source=label)
        if section is not None and section.get("slo"):
            slo_lines.extend(_format_slo(section, label))
            if not section.get("slo_ok", True):
                failures += 1
    targets = [SLOTarget.parse(spec) for spec in args.slo]
    for target in targets:
        for label, data in labeled:
            series, _ = extract_series(data, source=label)
            matching = [name for name in series if target.series in name]
            for name in matching:
                verdict = evaluate_slo(series[name], SLOTarget(**{**target.as_record(), "series": name}))
                fake_section = {"slo": [verdict]}
                slo_lines.extend(_format_slo(fake_section, label))
                if not verdict["ok"]:
                    failures += 1
    if slo_lines:
        print("\nSLO verdicts:")
        print("\n".join(slo_lines))

    if args.json is not None:
        payload = {
            "runs": labels,
            "rows": rows,
            "warnings": warnings,
        }
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")

    if args.strict and failures:
        print(f"FAIL: {failures} SLO violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
