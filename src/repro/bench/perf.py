"""Simulator wall-clock performance benchmark (the ``perf`` experiment).

Unlike every other experiment in :mod:`repro.bench`, this one does not
measure the *modelled* system -- it measures the simulator itself: how many
simulation events and application deliveries the engine pushes through per
second of **wall-clock** time on two fixed scenarios (a LAN ring pair and the
``wan3`` three-continent preset).  The nightly chaos campaigns and the
paper-scale figure benches are bound by exactly this number, so regressions
here translate directly into slower CI and less routine paper-scale data.

Two metric families come out of a run:

* **simulated-time metrics** (events and deliveries per simulated second,
  total event/delivery counts) -- fully deterministic, gated hard by
  :mod:`repro.bench.regression` against ``benchmarks/baselines/perf.json``.
  A drift here means the *model* changed (different message counts), which
  is never an accident worth ignoring;
* **wall-clock metrics** (events/sec and delivered-commands/sec of wall
  time) -- the actual speed, subject to runner jitter, reported warn-only by
  the gate and recorded in ``BENCH_perf.json`` for trend tracking.

``run_perf`` writes ``BENCH_perf.json`` next to the working directory by
default so both CI lanes can upload it as an artifact.  Profile a scenario
with ``python -m repro.bench perf --smoke --cprofile`` (top-25 cumulative
hotspots; see CONTRIBUTING.md).
"""

from __future__ import annotations

import gc
import hashlib
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.drivers import ClosedLoopProposerDriver
from repro.bench.report import format_table
from repro.config import MultiRingConfig
from repro.multiring.deployment import Deployment, RingSpec
from repro.scenarios.topologies import get_preset
from repro.sim.topology import lan_topology
from repro.sim.world import World
from repro.types import Value

__all__ = [
    "run_perf",
    "build_perf_world",
    "golden_delivery_sequence",
    "PERF_SCENARIOS",
]

#: Scenario names the perf bench sweeps, in report order.
PERF_SCENARIOS = ("lan", "wan3")

#: Simulated-duration multiplier per scenario.  The WAN scenario is
#: latency-bound (few events per simulated second), so it runs much longer
#: to produce a comparable amount of measurable work -- sub-second wall
#: windows make the events/sec reading jitter by double-digit percentages.
_DURATION_SCALE = {"lan": 1.0, "wan3": 50.0}

_RINGS = ("ring-a", "ring-b")
_VALUE_SIZE = 512


def build_perf_world(
    scenario: str,
    seed: int = 7,
    threads: int = 8,
    value_size: int = _VALUE_SIZE,
    tracing: bool = False,
    trace_sample: int = 64,
) -> Tuple[World, Deployment, List[ClosedLoopProposerDriver]]:
    """Build one of the fixed perf scenarios (not yet started).

    ``lan`` is three nodes on one 10 Gbps site sharing two in-memory rings;
    ``wan3`` spreads the same ring pair over the three-continent preset used
    by the chaos campaigns.  Both are deliberately frozen: the perf baseline
    is only comparable while the scenario stays byte-identical.  ``tracing``
    turns on sampled causal tracing -- used by the observability-overhead
    check to measure what default-sampling instrumentation costs here.
    """
    if scenario == "lan":
        world = World(
            topology=lan_topology(),
            seed=seed,
            timeline_window=0.5,
            tracing=tracing,
            trace_sample=trace_sample,
        )
        config = MultiRingConfig.datacenter()
        sites: Dict[str, str] = {}
    elif scenario == "wan3":
        preset = get_preset("wan3")
        world = World(
            topology=preset.build(),
            seed=seed,
            timeline_window=0.5,
            tracing=tracing,
            trace_sample=trace_sample,
        )
        config = MultiRingConfig.wide_area()
        sites = {f"node-{i}": site for i, site in enumerate(preset.sites)}
    else:
        raise ValueError(f"unknown perf scenario {scenario!r}; expected one of {PERF_SCENARIOS}")

    deployment = Deployment(world, config)
    members = [f"node-{i}" for i in range(3)]
    for name in members:
        deployment.add_node(name, site=sites.get(name))
    for group in _RINGS:
        deployment.add_ring(RingSpec(group=group, members=list(members)))
    drivers = [
        ClosedLoopProposerDriver(
            deployment.node(name),
            group,
            value_size=value_size,
            threads=threads,
            series=f"perf-{group}",
        )
        for group in _RINGS
        for name in members
    ]
    return world, deployment, drivers


def _run_scenario(
    scenario: str,
    duration: float,
    threads: int,
    tracing: bool = False,
    trace_sample: int = 64,
) -> Dict:
    world, deployment, drivers = build_perf_world(
        scenario, threads=threads, tracing=tracing, trace_sample=trace_sample
    )
    world.start()
    for driver in drivers:
        driver.start()
    # The hot path allocates no cyclic garbage (refcounting reclaims
    # everything), so generational GC passes are pure measurement jitter
    # here; suspend the collector for the timed window.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    wall_start = time.perf_counter()
    try:
        world.run(until=duration)
    finally:
        wall_seconds = time.perf_counter() - wall_start
        if gc_was_enabled:
            gc.enable()

    events = world.sim.processed_events
    deliveries = sum(node.deliveries_count for node in deployment.nodes.values())
    completed = sum(driver.completed for driver in drivers)
    return {
        "scenario": scenario,
        "tracing": tracing,
        "sim_duration_s": duration,
        # Deterministic (simulated-time) metrics: gated hard.
        "events": events,
        "deliveries": deliveries,
        "completed_commands": completed,
        "sim_events_per_sim_sec": events / duration,
        "deliveries_per_sim_sec": deliveries / duration,
        # Wall-clock metrics: the actual simulator speed, warn-only.
        "wall_seconds": wall_seconds,
        "events_per_wall_sec": events / wall_seconds if wall_seconds > 0 else 0.0,
        "deliveries_per_wall_sec": deliveries / wall_seconds if wall_seconds > 0 else 0.0,
    }


def run_perf(
    duration: float = 2.0,
    scenarios: Sequence[str] = PERF_SCENARIOS,
    threads: int = 8,
    output: Optional[Path] = Path("BENCH_perf.json"),
    seed: int = 7,
) -> Dict:
    """Measure wall-clock simulator throughput on the fixed scenarios.

    Writes the raw results to ``output`` (``BENCH_perf.json`` by default;
    pass ``None`` to skip) so CI can upload them as an artifact.
    """
    del seed  # the scenarios pin their own seed; kept for signature stability
    results: Dict[str, Dict] = {}
    for scenario in scenarios:
        scaled = duration * _DURATION_SCALE.get(scenario, 1.0)
        results[scenario] = _run_scenario(scenario, duration=scaled, threads=threads)

    rows = []
    for scenario in scenarios:
        cell = results[scenario]
        rows.append(
            [
                scenario,
                cell["events"],
                f"{cell['events_per_wall_sec']:,.0f}",
                f"{cell['deliveries_per_wall_sec']:,.0f}",
                f"{cell['wall_seconds']:.2f}",
            ]
        )
    report = format_table(
        "Simulator perf: wall-clock events/sec (hot-path health)",
        ["scenario", "events", "events/s (wall)", "deliveries/s (wall)", "wall s"],
        rows,
    )
    result = {
        "experiment": "perf",
        "duration": duration,
        "threads": threads,
        "scenarios": list(scenarios),
        "results": results,
        "report": report,
    }
    if output is not None:
        Path(output).write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return result


# ----------------------------------------------------------------------
# golden-sequence capture (determinism contract)
# ----------------------------------------------------------------------
def golden_delivery_sequence(
    scenario: str = "wan3",
    duration: float = 2.0,
    threads: int = 4,
    observer: str = "node-0",
) -> Dict:
    """Run ``scenario`` and capture the exact delivery sequence at one learner.

    Returns a digest of every application delivery observed by ``observer``
    -- ``(group, instance, value uid, delivery timestamp)`` with the
    timestamp in ``float.hex`` form -- plus the total processed-event count.
    The golden test freezes this output: any engine or network optimization
    that changes a single simulated timestamp or reorders one delivery flips
    the digest.

    Value uids come from a process-global counter, so they are recorded
    *relative* to a sentinel allocated here: the digest stays stable no
    matter how many values earlier tests in the same process created.
    """
    uid_base = Value.create(None, 0).uid
    world, deployment, drivers = build_perf_world(scenario, threads=threads)
    node = deployment.node(observer)
    entries: List[List] = []

    def record(delivery) -> None:
        entries.append(
            [
                delivery.group,
                delivery.instance,
                delivery.value.uid - uid_base,
                world.sim.now.hex(),
            ]
        )

    node.on_deliver(record)
    world.start()
    for driver in drivers:
        driver.start()
    world.run(until=duration)

    blob = json.dumps(entries, separators=(",", ":")).encode("utf-8")
    return {
        "scenario": scenario,
        "duration": duration,
        "threads": threads,
        "observer": observer,
        "deliveries": len(entries),
        "events_processed": world.sim.processed_events,
        "sha256": hashlib.sha256(blob).hexdigest(),
        "head": entries[:20],
        "tail": entries[-5:],
    }
