"""Batching & pipelining sweep: the vertical-scalability knob of one ring.

URingPaxos saturates a ring by (a) packing many application values into one
Paxos instance at the coordinator and (b) keeping a window of consensus
instances in flight.  This experiment sweeps both knobs on a single
three-process ring (the Figure 3 "dummy service" setup) and reports delivered
throughput and latency per ``(batch size, window)`` cell.

The default storage mode is the durable-log configuration (synchronous SSD
writes): every consensus instance costs one forced write at each acceptor, so
batching amortizes the dominant per-instance cost exactly as in the paper's
deployments.  In-memory mode shows a smaller, CPU-bound gain (the per-message
intake cost is not amortized by coordinator batching).

The regression-gated CI smoke run uses this experiment's throughput/latency
numbers (see :mod:`repro.bench.regression`).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bench.drivers import ClosedLoopProposerDriver
from repro.bench.report import format_kv, format_table
from repro.config import BatchingConfig, MultiRingConfig, RingConfig
from repro.multiring.deployment import Deployment, RingSpec
from repro.sim.disk import StorageMode
from repro.sim.topology import lan_topology
from repro.sim.world import World

__all__ = ["run_batching", "DEFAULT_BATCH_SIZES", "DEFAULT_WINDOWS"]

DEFAULT_BATCH_SIZES = (1, 2, 4, 8, 16)
DEFAULT_WINDOWS = (1, 32)


def _run_cell(
    batch_size: int,
    window: int,
    value_size: int,
    proposer_threads: int,
    duration: float,
    storage_mode: StorageMode,
    seed: int,
) -> Dict[str, float]:
    """One cell of the sweep: one batch size, one pipeline window."""
    world = World(topology=lan_topology(), seed=seed, timeline_window=0.5)
    if batch_size > 1:
        batching = BatchingConfig.coordinator(max_batch_values=batch_size)
    else:
        batching = BatchingConfig(enabled=False)
    ring_config = RingConfig(
        storage_mode=storage_mode,
        batching=batching,
        pipeline_depth=window,
    )
    config = MultiRingConfig.datacenter(ring=ring_config)
    deployment = Deployment(world, config)
    members = ["node-1", "node-2", "node-3"]
    for name in members:
        deployment.add_node(name, cpu_config=ring_config.cpu)
    deployment.add_ring(
        RingSpec(group="ring-1", members=members, storage_mode=storage_mode),
        ring_config=ring_config,
    )
    drivers = [
        ClosedLoopProposerDriver(
            deployment.node(name),
            "ring-1",
            value_size=value_size,
            threads=proposer_threads,
            series="batching",
        )
        for name in members
    ]
    world.start()
    for driver in drivers:
        driver.start()
    warmup = duration * 0.2
    world.run(until=duration)
    # Drain the batcher tail so the last partial batch is not left waiting
    # for its flush timeout; reported throughput uses the [warmup, duration)
    # window, so the drain does not distort it.  Latency stats follow the
    # repo-wide convention of covering the full run including warmup.
    coordinator = deployment.coordinator_of("ring-1")
    coordinator.flush_batches()
    world.run(until=duration + 0.05)

    role = coordinator.role("ring-1")
    stats = world.monitor.latency_stats("batching")
    instances = role.next_instance
    values = role.batcher.values_offered if role.batcher is not None else role.values_proposed
    return {
        "throughput_ops": world.monitor.throughput_ops("batching", start=warmup, end=duration),
        "latency_ms": stats.mean * 1e3,
        "latency_p99_ms": stats.p99 * 1e3,
        "instances_started": float(instances),
        "values_per_instance": float(values) / instances if instances else 0.0,
        "window_stalls": float(role.window_stalls),
        "max_inflight": float(role.max_inflight),
        "completed": float(sum(driver.completed for driver in drivers)),
    }


def run_batching(
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    windows: Sequence[int] = DEFAULT_WINDOWS,
    value_size: int = 512,
    proposer_threads: int = 16,
    duration: float = 2.0,
    storage_mode: StorageMode = StorageMode.SYNC_SSD,
    seed: int = 42,
) -> Dict:
    """Sweep coordinator batch size x pipeline window on a single ring."""
    results: Dict[int, Dict[int, Dict[str, float]]] = {}
    for window in windows:
        results[window] = {}
        for batch in batch_sizes:
            results[window][batch] = _run_cell(
                batch, window, value_size, proposer_threads, duration, storage_mode, seed
            )

    widest = max(windows)
    baseline = results[widest][batch_sizes[0]]["throughput_ops"]
    speedups = {
        batch: (results[widest][batch]["throughput_ops"] / baseline if baseline else 0.0)
        for batch in batch_sizes
    }
    speedup_at_8 = max(
        (speedups[batch] for batch in batch_sizes if batch >= 8), default=0.0
    )

    headers = ["batch size"] + [f"window {window}" for window in windows]
    throughput_rows = [
        [batch] + [results[window][batch]["throughput_ops"] for window in windows]
        for batch in batch_sizes
    ]
    latency_rows = [
        [batch] + [results[window][batch]["latency_ms"] for window in windows]
        for batch in batch_sizes
    ]
    speedup_rows = [[batch, f"{speedups[batch]:.2f}x"] for batch in batch_sizes]
    summary = {
        "storage mode": storage_mode.label,
        "value size (bytes)": value_size,
        "proposer threads (per node)": proposer_threads,
        f"speedup at batch >= 8 (window {widest})": f"{speedup_at_8:.2f}x",
    }
    report = "\n\n".join(
        [
            format_table(
                "Batching sweep: delivered throughput (ops/s)", headers, throughput_rows
            ),
            format_table("Batching sweep: average latency (ms)", headers, latency_rows),
            format_table(
                f"Throughput speedup vs batch size 1 (window {widest})",
                ["batch size", "speedup"],
                speedup_rows,
            ),
            format_kv("Batching sweep parameters", summary),
        ]
    )
    return {
        "experiment": "batching",
        "results": results,
        "batch_sizes": list(batch_sizes),
        "windows": list(windows),
        "storage_mode": storage_mode.value,
        "speedup_at_8": speedup_at_8,
        "report": report,
    }
