"""Figure 7: horizontal scalability of MRP-Store across EC2-like regions.

Paper setup (Section 8.4.2): MRP-Store deployed across four Amazon EC2
regions (eu-west-1, us-west-1, us-east-1, us-west-2); one ring (partition) per
region with a replica and three proposers/acceptors; the replicas of all
regions also form a global ring; clients in each region send 1 KB update
commands to their local partition, batched into 32 KB packets; WAN
configuration M=1, Δ=20 ms, λ=2000.  Reported metrics: aggregate throughput
as regions are added and the latency CDF measured in us-west-2.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.report import format_table
from repro.config import BatchingConfig, MultiRingConfig
from repro.services.mrpstore import MRPStore
from repro.sim.disk import StorageMode
from repro.sim.topology import EC2_REGIONS, wan_topology
from repro.sim.world import World
from repro.smr.client import ClosedLoopClient
from repro.workloads.simple import UpdateWorkload

__all__ = ["run_figure7", "DEFAULT_REGION_COUNTS"]

DEFAULT_REGION_COUNTS = (1, 2, 3, 4)
_UPDATE_SIZE = 1024
_LATENCY_REGION = "us-west-2"


def _local_key_indices(store: MRPStore, partition: str, key_space: int, wanted: int = 200) -> List[int]:
    """Key indices that hash-partition onto ``partition`` (clients stay region-local)."""
    indices: List[int] = []
    for index in range(key_space):
        if store.partition_map.partition_of(store.key(index)) == partition:
            indices.append(index)
            if len(indices) >= wanted:
                break
    return indices or [0]


def _run_with_regions(
    active_regions: Sequence[str],
    clients_per_region: int,
    duration: float,
    seed: int,
    record_count: int,
) -> Dict:
    """Run the global deployment with clients active in ``active_regions`` only.

    As in the paper, the infrastructure (one ring per region plus the global
    ring spanning all of them) is always deployed across all four regions;
    the experiment varies how many regions actively submit commands, which is
    why latency stays roughly constant while aggregate throughput grows.
    """
    all_regions = list(EC2_REGIONS)
    world = World(
        topology=wan_topology(), seed=seed, timeline_window=0.5, default_site=all_regions[0]
    )
    partition_sites = {f"p{i}": region for i, region in enumerate(all_regions)}
    store = MRPStore(
        world,
        partitions=len(all_regions),
        replicas_per_partition=1,
        acceptors_per_partition=3,
        use_global_ring=True,
        storage_mode=StorageMode.ASYNC_SSD,
        config=MultiRingConfig.wide_area(),
        batching=BatchingConfig(enabled=True, max_batch_bytes=32 * 1024, max_batch_delay=2e-3),
        partition_sites=partition_sites,
        key_space=record_count,
    )
    store.load(record_count, value_size=_UPDATE_SIZE)

    clients: List[ClosedLoopClient] = []
    regions = list(active_regions)
    for index, region in enumerate(all_regions):
        if region not in regions:
            continue
        partition = f"p{index}"
        series = f"region/{region}"
        indices = _local_key_indices(store, partition, record_count)
        workload = UpdateWorkload(store, indices, value_size=_UPDATE_SIZE, series=series)
        clients.append(
            ClosedLoopClient(
                world,
                f"client-{region}",
                workload,
                store.frontends_for_client(index),
                threads=clients_per_region,
                site=region,
                series=series,
            )
        )
    world.run(until=duration)
    warmup = duration * 0.2
    per_region = {
        region: world.monitor.throughput_ops(f"region/{region}", start=warmup, end=duration)
        for region in regions
    }
    latency_region = _LATENCY_REGION if _LATENCY_REGION in regions else regions[-1]
    stats = world.monitor.latency_stats(f"region/{latency_region}")
    cdf = [
        (latency * 1e3, fraction)
        for latency, fraction in world.monitor.latency_cdf(f"region/{latency_region}", points=20)
    ]
    return {
        "per_region_ops": per_region,
        "aggregate_ops": sum(per_region.values()),
        "latency_ms": stats.mean * 1e3,
        "latency_region": latency_region,
        "cdf_ms": cdf,
    }


def run_figure7(
    region_counts: Sequence[int] = DEFAULT_REGION_COUNTS,
    clients_per_region: int = 20,
    duration: float = 20.0,
    record_count: int = 2000,
    seed: int = 42,
) -> Dict:
    """Sweep the number of regions (partitions/rings) and measure aggregate throughput."""
    results: Dict[int, Dict] = {}
    for count in region_counts:
        active = EC2_REGIONS[:count]
        results[count] = _run_with_regions(active, clients_per_region, duration, seed, record_count)

    rows = []
    previous = None
    for count in region_counts:
        aggregate = results[count]["aggregate_ops"]
        if previous is None or previous <= 0:
            scaling = 100.0
        else:
            scaling = 100.0 * (aggregate / count) / (previous / (count - 1))
        previous = aggregate
        rows.append([count, aggregate, results[count]["latency_ms"], f"{scaling:.0f}%"])
    report = format_table(
        "Figure 7: MRP-Store horizontal scalability across regions (1 KB updates)",
        ["regions", "aggregate ops/s", f"latency in {_LATENCY_REGION} (ms)", "relative scaling"],
        rows,
    )
    return {
        "experiment": "figure7",
        "results": results,
        "region_counts": list(region_counts),
        "report": report,
    }
