"""Figure 3: Multi-Ring Paxos baseline with different storage modes and sizes.

Paper setup (Section 8.3.1): one ring with three processes, all of which are
proposers, acceptors and learners; one acceptor is the coordinator; each
proposer runs 10 closed-loop threads; request sizes from 512 bytes to 32 KB;
batching disabled; five storage modes.  Reported metrics: throughput (Mbps),
average latency (ms), CPU utilization at the coordinator (%), and the latency
CDF for 32 KB requests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.drivers import ClosedLoopProposerDriver
from repro.bench.report import format_table
from repro.config import MultiRingConfig, RingConfig
from repro.multiring.deployment import Deployment, RingSpec
from repro.runtime.cpu import CPUConfig
from repro.sim.disk import StorageMode
from repro.sim.topology import lan_topology
from repro.sim.world import World

__all__ = ["run_figure3", "DEFAULT_VALUE_SIZES", "DEFAULT_STORAGE_MODES"]

DEFAULT_VALUE_SIZES = (512, 2048, 8192, 32768)
DEFAULT_STORAGE_MODES = (
    StorageMode.SYNC_HDD,
    StorageMode.SYNC_SSD,
    StorageMode.ASYNC_HDD,
    StorageMode.ASYNC_SSD,
    StorageMode.MEMORY,
)

#: CPU overhead factors per storage mode.  The paper observes the highest
#: coordinator CPU in asynchronous-disk mode (Java garbage collection over
#: heap buffers) and the lowest relative overhead in-memory (off-heap buffers).
_CPU_OVERHEAD = {
    StorageMode.MEMORY: 1.0,
    StorageMode.ASYNC_HDD: 1.7,
    StorageMode.ASYNC_SSD: 1.7,
    StorageMode.SYNC_HDD: 1.2,
    StorageMode.SYNC_SSD: 1.2,
}


def _run_single(
    storage_mode: StorageMode,
    value_size: int,
    duration: float,
    proposer_threads: int,
    seed: int,
) -> Dict[str, float]:
    """One cell of Figure 3: one storage mode, one request size."""
    world = World(topology=lan_topology(), seed=seed, timeline_window=0.5)
    config = MultiRingConfig.datacenter(
        ring=RingConfig(
            storage_mode=storage_mode,
            cpu=CPUConfig(overhead_factor=_CPU_OVERHEAD[storage_mode]),
        )
    )
    deployment = Deployment(world, config)
    members = ["node-1", "node-2", "node-3"]
    for name in members:
        deployment.add_node(name, cpu_config=config.ring.cpu)
    deployment.add_ring(
        RingSpec(group="ring-1", members=members, storage_mode=storage_mode)
    )
    drivers = [
        ClosedLoopProposerDriver(
            deployment.node(name),
            "ring-1",
            value_size=value_size,
            threads=proposer_threads,
            series="figure3",
        )
        for name in members
    ]
    world.start()
    for driver in drivers:
        driver.start()
    warmup = duration * 0.2
    world.run(until=duration)

    monitor = world.monitor
    coordinator = deployment.coordinator_of("ring-1")
    stats = monitor.latency_stats("figure3")
    return {
        "throughput_mbps": monitor.throughput_mbps("figure3", start=warmup, end=duration),
        "throughput_ops": monitor.throughput_ops("figure3", start=warmup, end=duration),
        "latency_ms": stats.mean * 1e3,
        "latency_p99_ms": stats.p99 * 1e3,
        "coordinator_cpu_percent": coordinator.cpu_utilization_percent(0.0, duration),
        "completed": float(sum(driver.completed for driver in drivers)),
    }


def run_figure3(
    value_sizes: Sequence[int] = DEFAULT_VALUE_SIZES,
    storage_modes: Sequence[StorageMode] = DEFAULT_STORAGE_MODES,
    duration: float = 20.0,
    proposer_threads: int = 10,
    cdf_value_size: int = 32768,
    seed: int = 42,
) -> Dict:
    """Run the full Figure 3 sweep and return results plus a text report."""
    cells: Dict[str, Dict[int, Dict[str, float]]] = {}
    for mode in storage_modes:
        cells[mode.value] = {}
        for size in value_sizes:
            cells[mode.value][size] = _run_single(mode, size, duration, proposer_threads, seed)

    # Latency CDF for the largest request size, per storage mode (bottom-right graph).
    cdf: Dict[str, List] = {}
    for mode in storage_modes:
        world = World(topology=lan_topology(), seed=seed + 1, timeline_window=0.5)
        config = MultiRingConfig.datacenter(
            ring=RingConfig(storage_mode=mode, cpu=CPUConfig(overhead_factor=_CPU_OVERHEAD[mode]))
        )
        deployment = Deployment(world, config)
        members = ["node-1", "node-2", "node-3"]
        for name in members:
            deployment.add_node(name, cpu_config=config.ring.cpu)
        deployment.add_ring(RingSpec(group="ring-1", members=members, storage_mode=mode))
        drivers = [
            ClosedLoopProposerDriver(
                deployment.node(name), "ring-1", cdf_value_size, proposer_threads, "figure3-cdf"
            )
            for name in members
        ]
        world.start()
        for driver in drivers:
            driver.start()
        world.run(until=duration / 2)
        cdf[mode.value] = [
            (latency * 1e3, fraction)
            for latency, fraction in world.monitor.latency_cdf("figure3-cdf", points=20)
        ]

    headers = ["storage mode"] + [f"{size}B" for size in value_sizes]
    throughput_rows = [
        [mode.value] + [cells[mode.value][size]["throughput_mbps"] for size in value_sizes]
        for mode in storage_modes
    ]
    latency_rows = [
        [mode.value] + [cells[mode.value][size]["latency_ms"] for size in value_sizes]
        for mode in storage_modes
    ]
    cpu_rows = [
        [mode.value] + [cells[mode.value][size]["coordinator_cpu_percent"] for size in value_sizes]
        for mode in storage_modes
    ]
    report = "\n\n".join(
        [
            format_table("Figure 3 (top-left): throughput (Mbps)", headers, throughput_rows),
            format_table("Figure 3 (top-right): average latency (ms)", headers, latency_rows),
            format_table("Figure 3 (bottom-left): coordinator CPU (%)", headers, cpu_rows),
        ]
    )
    return {
        "experiment": "figure3",
        "cells": cells,
        "cdf_ms": cdf,
        "value_sizes": list(value_sizes),
        "storage_modes": [mode.value for mode in storage_modes],
        "report": report,
    }
