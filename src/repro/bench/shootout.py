"""Cross-protocol shootout: Multi-Ring Paxos vs. White-Box Atomic Multicast.

The paper argues that atomic multicast -- the *abstraction* -- is the right
substrate for global systems, and evaluates one implementation of it.  The
:class:`~repro.engines.base.OrderingEngine` seam makes that claim testable:
this bench drives the Multi-Ring engine and the White-Box engine through the
**identical** workload (same seed, same submission schedule, same destination
sets, same topology) and compares what each protocol's design trades away.

The axes swept:

* **single-group vs. multi-group** -- Multi-Ring Paxos handles multi-group
  messages by routing them through a designated ring whose learners span all
  destinations, so every subscriber receives every multi-group message,
  destinations or not (it is not *genuine*).  White-Box multicast only ever
  involves a message's destination groups.  The bench counts deliveries at
  non-destination learners for both engines: the whitebox engine must report
  exactly zero (a ``passed=False`` violation otherwise), while the multiring
  column quantifies the cost of the global ring.
* **uniform vs. Zipf-skewed group choice** -- skew concentrates load on one
  group's coordinator/leader; both protocols serialize per group, so the
  comparison shows whether either degrades disproportionately under skew.

Reported per (scenario, engine): delivery-latency percentiles measured at
each destination group's witness learner (simulated seconds from
``Value.created_at`` to delivery), protocol messages sent, learner
deliveries, and the non-destination delivery count.  Raw results land in
``BENCH_shootout.json`` for CI artifact upload.

The workload schedule is generated once per scenario from the scenario seed
and replayed into every engine, so any latency difference is attributable to
the protocol, not the traffic.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import engines as engine_registry
from repro.bench.report import format_table
from repro.config import MultiRingConfig
from repro.engines.base import EngineSpec
from repro.obs.stats import LatencyStats
from repro.sim.topology import lan_topology
from repro.sim.world import World
from repro.types import GroupId
from repro.workloads.distributions import UniformChooser, ZipfianChooser

__all__ = ["run_shootout", "SHOOTOUT_SCENARIOS", "SHOOTOUT_ENGINES"]

#: Scenario names, in report order: destination-spread x group-choice skew.
SHOOTOUT_SCENARIOS = ("single-uniform", "single-zipf", "multi-uniform", "multi-zipf")

#: Engines compared, in report order.
SHOOTOUT_ENGINES = ("multiring", "whitebox")

#: Ring/group id carrying multi-group traffic for the Multi-Ring engine.
_GLOBAL_GROUP: GroupId = "global"

_VALUE_SIZE = 512


def _scenario_axes(scenario: str) -> Tuple[bool, str]:
    """Split a scenario name into (has multi-group traffic, skew kind)."""
    try:
        spread, skew = scenario.split("-")
    except ValueError:
        spread, skew = "", ""
    if spread not in ("single", "multi") or skew not in ("uniform", "zipf"):
        raise ValueError(
            f"unknown shootout scenario {scenario!r}; expected one of {SHOOTOUT_SCENARIOS}"
        )
    return spread == "multi", skew


def _make_schedule(
    scenario: str,
    values: int,
    group_count: int,
    seed: int,
    spacing: float,
    multi_fraction: float,
    start: float = 0.05,
) -> List[Tuple[float, Tuple[GroupId, ...]]]:
    """The submission schedule: ``(time, destination groups)`` per message.

    Generated once per scenario and replayed verbatim into every engine --
    identical seeds produce identical offered load, which is what makes the
    latency columns comparable.
    """
    multi, skew = _scenario_axes(scenario)
    rng = random.Random(seed)
    chooser = ZipfianChooser(group_count) if skew == "zipf" else UniformChooser(group_count)
    schedule: List[Tuple[float, Tuple[GroupId, ...]]] = []
    for index in range(values):
        first = chooser.next_index(rng) % group_count
        if multi and group_count > 1 and rng.random() < multi_fraction:
            second = chooser.next_index(rng) % group_count
            while second == first:
                second = chooser.next_index(rng) % group_count
            dests: Tuple[GroupId, ...] = tuple(sorted((f"g{first}", f"g{second}")))
        else:
            dests = (f"g{first}",)
        schedule.append((start + index * spacing, dests))
    return schedule


def _build_engine(
    engine_name: str,
    group_count: int,
    members_per_group: int,
    seed: int,
    with_global_ring: bool,
):
    """Build ``engine_name`` on a fresh world with the shootout topology.

    Every engine gets the same ``group_count`` groups of
    ``members_per_group`` members on one LAN site.  The Multi-Ring engine
    additionally gets the designated multi-group ring (acceptors: the first
    member of each group; learners: everyone) when the scenario contains
    multi-group traffic -- the White-Box engine needs no such ring, which is
    precisely the asymmetry under measurement.
    """
    world = World(topology=lan_topology(), seed=seed, timeline_window=0.5)
    engine = engine_registry.create(engine_name)
    engine.build(world, MultiRingConfig.datacenter())
    groups = [f"g{i}" for i in range(group_count)]
    members: Dict[GroupId, List[str]] = {
        group: [f"{group}-{k}" for k in range(members_per_group)] for group in groups
    }
    for group in groups:
        engine.add_group(EngineSpec(group=group, members=list(members[group])))
    if with_global_ring and engine_name == "multiring":
        all_nodes = [name for group in groups for name in members[group]]
        anchors = [members[group][0] for group in groups]
        engine.add_group(
            EngineSpec(
                group=_GLOBAL_GROUP,
                members=all_nodes,
                acceptors=list(anchors),
                proposers=list(anchors),
                learners=all_nodes,
                options={"multi_group_route": True},
            )
        )
    return world, engine, groups


def _run_combo(
    engine_name: str,
    schedule: Sequence[Tuple[float, Tuple[GroupId, ...]]],
    group_count: int,
    members_per_group: int,
    seed: int,
    drain: float,
) -> Dict:
    """Replay ``schedule`` through one engine and measure the outcome."""
    needs_global = any(len(dests) > 1 for _, dests in schedule)
    world, engine, groups = _build_engine(
        engine_name, group_count, members_per_group, seed, with_global_ring=needs_global
    )
    witness = {group: engine.descriptor(group).learners[0] for group in groups}

    expected_dests: Dict[int, Tuple[GroupId, ...]] = {}
    outstanding: set = set()
    latencies: List[float] = []
    non_destination = 0
    learner_deliveries = 0

    def hook(node_name: str, home: GroupId) -> None:
        def on_delivery(delivery) -> None:
            nonlocal non_destination, learner_deliveries
            uid = delivery.value.uid
            dests = expected_dests.get(uid)
            if dests is None:
                return
            learner_deliveries += 1
            if home not in dests:
                non_destination += 1
                return
            if node_name == witness[home] and (uid, home) in outstanding:
                outstanding.discard((uid, home))
                latencies.append(world.now - delivery.value.created_at)

        engine.node(node_name).on_deliver(on_delivery)

    # One callback per node: a node subscribed to several rings (the global
    # ring case) sees each delivery exactly once, tagged by its home group.
    for group in groups:
        for name in engine.descriptor(group).learners:
            hook(name, group)

    def submit(dests: Tuple[GroupId, ...]) -> None:
        value = engine.multicast(dests, None, _VALUE_SIZE)
        expected_dests[value.uid] = dests
        for group in dests:
            outstanding.add((value.uid, group))

    for at, dests in schedule:
        world.sim.call_at(at, submit, dests)
    end = schedule[-1][0] + drain if schedule else drain
    world.run(until=end)

    stats = LatencyStats.from_samples(latencies)
    engine_stats = engine.stats()
    messages_sent = sum(engine_stats.get("messages_sent", {}).values())
    return {
        "engine": engine_name,
        "submitted": len(schedule),
        "witness_deliveries": stats.count,
        "missing": len(outstanding),
        "learner_deliveries": learner_deliveries,
        "non_destination_deliveries": non_destination,
        "messages_sent": messages_sent,
        "events": world.sim.processed_events,
        "latency_ms": stats.as_millis(),
        "genuine": engine_stats.get("genuine", False),
        # Whitebox cross-check: the deployment's own genuineness ledger must
        # agree with the callback-side count (both are 0 when genuine).
        "engine_reported_non_destination": engine_stats.get("non_destination_deliveries"),
    }


def run_shootout(
    values_per_scenario: int = 400,
    scenarios: Sequence[str] = SHOOTOUT_SCENARIOS,
    engines: Sequence[str] = SHOOTOUT_ENGINES,
    group_count: int = 3,
    members_per_group: int = 3,
    spacing: float = 2e-3,
    drain: float = 2.0,
    multi_fraction: float = 1.0 / 3.0,
    seed: int = 11,
    output: Optional[Path] = Path("BENCH_shootout.json"),
) -> Dict:
    """Run every (scenario, engine) combination and compare the protocols.

    ``passed`` is False when any engine fails validity (a submitted message
    never reaches some destination's witness) or when the White-Box engine --
    genuine by construction -- reports a delivery at a non-destination group.
    Writes the raw results to ``output`` (``BENCH_shootout.json`` by default;
    pass ``None`` to skip) so CI can upload them as an artifact.
    """
    results: Dict[str, Dict[str, Dict]] = {}
    failures: List[str] = []
    for scenario in scenarios:
        schedule = _make_schedule(
            scenario, values_per_scenario, group_count, seed, spacing, multi_fraction
        )
        cells: Dict[str, Dict] = {}
        for engine_name in engines:
            cell = _run_combo(
                engine_name, schedule, group_count, members_per_group, seed, drain
            )
            cells[engine_name] = cell
            if cell["missing"]:
                failures.append(
                    f"{scenario}/{engine_name}: {cell['missing']} destination "
                    "deliveries never arrived"
                )
            if engine_name == "whitebox" and (
                cell["non_destination_deliveries"]
                or cell["engine_reported_non_destination"]
            ):
                failures.append(
                    f"{scenario}/whitebox: genuineness violated "
                    f"({cell['non_destination_deliveries']} callback-side, "
                    f"{cell['engine_reported_non_destination']} ledger-side "
                    "non-destination deliveries)"
                )
        results[scenario] = cells

    rows = []
    for scenario in scenarios:
        for engine_name in engines:
            cell = results[scenario][engine_name]
            ms = cell["latency_ms"]
            rows.append(
                [
                    scenario,
                    engine_name,
                    cell["witness_deliveries"],
                    f"{ms['p50_ms']:.3f}",
                    f"{ms['p90_ms']:.3f}",
                    f"{ms['p99_ms']:.3f}",
                    cell["messages_sent"],
                    cell["non_destination_deliveries"],
                ]
            )
    report = format_table(
        "Shootout: Multi-Ring Paxos vs. White-Box Atomic Multicast (identical seeds)",
        [
            "scenario",
            "engine",
            "delivered",
            "p50 ms",
            "p90 ms",
            "p99 ms",
            "msgs sent",
            "non-dest dlvs",
        ],
        rows,
    )
    if failures:
        report += "\nFAILURES:\n" + "\n".join(f"  - {line}" for line in failures)
    result = {
        "experiment": "shootout",
        "seed": seed,
        "values_per_scenario": values_per_scenario,
        "group_count": group_count,
        "members_per_group": members_per_group,
        "multi_fraction": multi_fraction,
        "scenarios": list(scenarios),
        "engines": list(engines),
        "results": results,
        "report": report,
        "passed": not failures,
        "failures": failures,
    }
    if output is not None:
        Path(output).write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return result
