"""The ``live`` experiment: wall-clock throughput over real localhost TCP.

Unlike every other experiment, this one does not run on the simulator: it
boots the live backend (:mod:`repro.runtime.live`) -- N nodes, each an
asyncio task set with its own TCP server -- and drives a closed loop of
appends through a single-ring dLog.  The metrics are *wall-clock* numbers
and therefore depend on the machine; the run is still gated on the safety
invariants (zero lost acked writes, identical delivery sequences), which
must hold on any machine.
"""

from __future__ import annotations

from typing import Dict

from repro.live import run_live

__all__ = ["run_live_bench"]


def run_live_bench(
    nodes: int = 3,
    values: int = 300,
    value_size: int = 1024,
    window: int = 32,
    timeout: float = 60.0,
) -> Dict:
    """Run the live dLog benchmark and return the harness result dictionary."""
    result = run_live(
        nodes=nodes,
        values=values,
        value_size=value_size,
        window=window,
        timeout=timeout,
    )
    result["experiment"] = "live"
    return result
