"""Benchmark-regression gate for CI.

``python -m repro.bench.regression`` runs one of the gate suites at smoke
scale, writes the collected metrics to a JSON file (uploaded as a workflow
artifact in CI), and compares them against the committed baseline:

* ``--suite smoke`` (default): figure/batching throughput and latency
  metrics vs ``benchmarks/baselines/smoke.json``;
* ``--suite perf``: simulator hot-path metrics vs
  ``benchmarks/baselines/perf.json`` -- deterministic simulated-time rates
  gate hard, wall-clock events/sec is reported warn-only (runner jitter);
* ``--suite workload``: the open-loop flash-crowd storm (deterministic sim
  percentiles and completion counts) vs ``benchmarks/baselines/workload.json``.

For the default smoke suite:

* a metric that regresses by more than the tolerance (default +-20 %) fails
  the gate (non-zero exit code);
* a metric that *improves* by more than the tolerance only warns, so the
  baseline gets refreshed (see CONTRIBUTING.md) instead of rotting.

Metric direction is encoded in the name: ``*_ops`` metrics are
higher-is-better, ``*_ms`` metrics are lower-is-better.  The simulator is
deterministic, so the tolerance only has to absorb cross-platform float
noise and intentional model changes -- not run-to-run variance.

Refreshing the baseline::

    python -m repro.bench.regression --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bench.harness import run_experiment

__all__ = [
    "collect_smoke_metrics",
    "collect_perf_metrics",
    "collect_workload_metrics",
    "compare_metrics",
    "main",
]

#: Committed baselines live here; per-suite defaults are in :data:`SUITES`.
_BASELINE_DIR = Path("benchmarks") / "baselines"


def _is_higher_better(metric: str) -> Optional[bool]:
    """Direction encoded in the metric name, or ``None`` when unknown.

    An unknown direction is reported as a warning and the metric skipped
    instead of raising: a renamed or experimental metric must not crash the
    gate for every unrelated change.
    """
    if metric.endswith("_ops") or metric.endswith("speedup"):
        return True
    if metric.endswith("_ms"):
        return False
    return None


def collect_smoke_metrics(scale: str = "smoke") -> Dict:
    """Run the gated experiments and distill scalar throughput/latency metrics."""
    metrics: Dict[str, float] = {}

    batching = run_experiment("batching", scale=scale)
    widest = max(batching["windows"])
    cells = batching["results"][widest]
    best_batch = max(batching["batch_sizes"])
    metrics["batching/batched_throughput_ops"] = cells[best_batch]["throughput_ops"]
    metrics["batching/batched_latency_ms"] = cells[best_batch]["latency_ms"]
    metrics["batching/unbatched_throughput_ops"] = cells[batching["batch_sizes"][0]][
        "throughput_ops"
    ]
    metrics["batching/speedup"] = batching["speedup_at_8"]

    figure6 = run_experiment("figure6", scale=scale)
    top_rings = max(figure6["ring_counts"])
    metrics["figure6/aggregate_ops"] = figure6["results"][top_rings]["aggregate_ops"]
    metrics["figure6/latency_disk1_ms"] = figure6["results"][top_rings]["latency_disk1_ms"]

    return {"scale": scale, "metrics": metrics}


def collect_perf_metrics(scale: str = "smoke", obs_overhead: bool = False) -> Dict:
    """Run the simulator perf bench and distill its gate metrics.

    Simulated-time rates (events and deliveries per simulated second) are
    deterministic, carry a known direction (``_ops``), and gate hard: any
    drift means the model itself changed.  Wall-clock rates are subject to
    runner jitter, so they are emitted WITHOUT a direction suffix -- the
    gate reports them as warn-only notes instead of pass/fail verdicts --
    while still landing in the JSON artifact for trend tracking.

    ``obs_overhead`` re-runs every scenario with causal tracing enabled at
    the default sampling rate and emits the traced wall-clock rates plus an
    overhead ratio (warn-only, like all wall-clock metrics).  Tracing
    schedules no simulator events, so the traced run's deterministic
    event/delivery counts must match the untraced run exactly; a mismatch
    lands in the returned ``violations`` list and fails the gate.
    """
    perf = run_experiment("perf", scale=scale)
    metrics: Dict[str, float] = {}
    violations: List[str] = []
    for scenario in perf["scenarios"]:
        cell = perf["results"][scenario]
        metrics[f"perf/{scenario}_sim_events_ops"] = cell["sim_events_per_sim_sec"]
        metrics[f"perf/{scenario}_sim_deliveries_ops"] = cell["deliveries_per_sim_sec"]
        # Warn-only by construction: no _ops/_ms suffix, so the gate skips
        # them with a note instead of failing on runner jitter.
        metrics[f"perf/{scenario}_wall_events_per_sec"] = cell["events_per_wall_sec"]
        metrics[f"perf/{scenario}_wall_deliveries_per_sec"] = cell["deliveries_per_wall_sec"]
    if obs_overhead:
        from repro.bench.perf import _run_scenario

        for scenario in perf["scenarios"]:
            base = perf["results"][scenario]
            traced = _run_scenario(
                scenario,
                duration=base["sim_duration_s"],
                threads=perf["threads"],
                tracing=True,
            )
            metrics[f"perf/{scenario}_obs_wall_events_per_sec"] = traced[
                "events_per_wall_sec"
            ]
            if traced["events_per_wall_sec"] > 0:
                metrics[f"perf/{scenario}_obs_overhead_x"] = (
                    base["events_per_wall_sec"] / traced["events_per_wall_sec"]
                )
            if traced["events"] != base["events"] or traced["deliveries"] != base["deliveries"]:
                violations.append(
                    f"perf/{scenario}: tracing changed deterministic counts "
                    f"(events {base['events']} -> {traced['events']}, "
                    f"deliveries {base['deliveries']} -> {traced['deliveries']})"
                )
    result = {"scale": scale, "metrics": metrics}
    if violations:
        result["violations"] = violations
    return result


def collect_workload_metrics(scale: str = "smoke") -> Dict:
    """Run the sim-only flash-crowd storm and distill its gate metrics.

    The live leg is excluded on purpose: the simulator percentiles are
    deterministic (same seed, same topology, same arrival stream), so the
    usual ±tolerance only has to absorb intentional model changes.  The
    collected result also embeds the storm's ``analytics`` section so the
    gate can print SLO verdicts next to the metric comparison.
    """
    from repro.bench.workload import run_workload

    storm = run_workload(
        duration=6.0,
        base_rate=30.0,
        spike_rate=240.0,
        spike_at=2.0,
        spike_duration=1.5,
        record_count=240,
        live_replay_events=0,
        quiesce=1.5,
        backends=("sim",),
        output=None,
    )
    series = storm["analytics"]["series"].get("sim/openloop", {})
    metrics = {
        "workload/completed_ops": float(storm["sim"]["completed"]),
        "workload/p50_ms": series.get("p50_ms", 0.0),
        "workload/p99_ms": series.get("p99_ms", 0.0),
    }
    return {"scale": scale, "metrics": metrics, "analytics": storm["analytics"]}


#: Gate suites: (collector, default baseline path, default output path).
SUITES = {
    "smoke": (collect_smoke_metrics, _BASELINE_DIR / "smoke.json", Path("BENCH_smoke.json")),
    "perf": (collect_perf_metrics, _BASELINE_DIR / "perf.json", Path("BENCH_perf_metrics.json")),
    "workload": (
        collect_workload_metrics,
        _BASELINE_DIR / "workload.json",
        Path("BENCH_workload_metrics.json"),
    ),
}


def compare_metrics(
    current: Dict, baseline: Dict, tolerance: float
) -> Tuple[List[str], List[str], List[str]]:
    """Compare metric dicts; returns ``(regressions, improvements, notes)``.

    ``notes`` carries gate diagnostics -- new metrics without a baseline
    entry, unusable baseline values, unknown metric directions, a malformed
    baseline -- which warrant a warning but are neither regressions nor
    improvements.  A malformed or partially-matching baseline therefore
    never raises; it degrades to notes.
    """
    regressions: List[str] = []
    improvements: List[str] = []
    notes: List[str] = []
    baseline_metrics = baseline.get("metrics", {})
    if not isinstance(baseline_metrics, dict):
        notes.append(
            f"baseline 'metrics' is {type(baseline_metrics).__name__}, "
            "not a dict; treating every metric as new"
        )
        baseline_metrics = {}
    for name, value in current.get("metrics", {}).items():
        if name not in baseline_metrics:
            notes.append(f"{name}: no baseline entry (new metric, value {value:.1f})")
            continue
        reference = baseline_metrics[name]
        if not isinstance(reference, (int, float)) or reference == 0:
            notes.append(f"{name}: unusable baseline value {reference!r}; skipped")
            continue
        direction = _is_higher_better(name)
        if direction is None:
            notes.append(f"{name}: unknown direction (_ops/_ms/speedup); skipped")
            continue
        ratio = value / reference
        better = ratio - 1.0 if direction else 1.0 - ratio
        detail = f"{name}: {value:.1f} vs baseline {reference:.1f} ({ratio:.2f}x)"
        if better < -tolerance:
            regressions.append(detail)
        elif better > tolerance:
            improvements.append(detail)
    for name in baseline_metrics:
        if name not in current.get("metrics", {}):
            regressions.append(f"{name}: present in baseline but not measured")
    return regressions, improvements, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-gate",
        description="Run the smoke benchmarks and gate on the committed baseline.",
    )
    parser.add_argument(
        "--suite", choices=sorted(SUITES), default="smoke",
        help=(
            "which gate suite to run: 'smoke' (figure/batching throughput) "
            "or 'perf' (simulator hot-path metrics)"
        ),
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="where to write the collected metrics (JSON; default depends on --suite)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="committed baseline to compare against (default depends on --suite)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="relative tolerance before a change counts as regression/improvement",
    )
    parser.add_argument(
        "--scale", default="smoke", choices=("smoke", "quick"),
        help="benchmark scale to run (the committed baseline is smoke)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the collected metrics to the baseline file and exit green",
    )
    parser.add_argument(
        "--obs-overhead", action="store_true",
        help=(
            "perf suite only: re-run each scenario with causal tracing at "
            "default sampling, report the wall-clock overhead (warn-only) "
            "and fail if tracing changes deterministic event counts"
        ),
    )
    parser.add_argument(
        "--missing-baseline", choices=("fail", "skip"), default="fail",
        help=(
            "what to do when the baseline is missing or was recorded at a "
            "different scale: 'fail' (default, PR lane) or 'skip' with a "
            "warning (nightly lane, so new experiments can land before "
            "their baselines)"
        ),
    )
    args = parser.parse_args(argv)
    collector, default_baseline, default_output = SUITES[args.suite]
    if args.baseline is None:
        args.baseline = default_baseline
    if args.output is None:
        args.output = default_output

    if args.obs_overhead and args.suite != "perf":
        parser.error("--obs-overhead only applies to --suite perf")
    if args.suite == "perf":
        current = collector(scale=args.scale, obs_overhead=args.obs_overhead)
    else:
        current = collector(scale=args.scale)
    args.output.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    for name, value in sorted(current["metrics"].items()):
        print(f"  {name} = {value:.2f}")

    violations = current.get("violations", [])
    if violations:
        for message in violations:
            print(f"::error title=observability determinism::{message}")
        print(f"FAIL: {len(violations)} observability determinism violation(s)")
        return 1

    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"baseline refreshed: {args.baseline}")
        return 0

    if not args.baseline.exists():
        if args.missing_baseline == "skip":
            print(
                f"::warning title=benchmark gate skipped::baseline {args.baseline} "
                "not found; gate skipped (refresh it with --update-baseline)"
            )
            return 0
        print(f"error: baseline {args.baseline} not found; run with --update-baseline", file=sys.stderr)
        return 2
    try:
        baseline = json.loads(args.baseline.read_text())
    except json.JSONDecodeError as error:
        if args.missing_baseline == "skip":
            print(
                f"::warning title=benchmark gate skipped::baseline {args.baseline} "
                f"is not valid JSON ({error}); gate skipped"
            )
            return 0
        print(f"error: baseline {args.baseline} is not valid JSON: {error}", file=sys.stderr)
        return 2
    if not isinstance(baseline, dict):
        baseline = {}
    # SLO verdicts and schema-drift warnings (suites that embed analytics).
    # An older-schema baseline without the analytics section degrades to a
    # warning -- never a KeyError -- so refreshed gates can compare against
    # baselines recorded before the analytics layer existed.
    if current.get("analytics") is not None:
        from repro.bench.analytics import analytics_of

        section, _ = analytics_of(current, source="current run")
        if section is not None:
            for verdict in section.get("slo", []):
                status = "ok" if verdict.get("ok") else "VIOLATED"
                print(f"  slo {verdict.get('series')}: {status}")
        _, baseline_warnings = analytics_of(baseline, source=str(args.baseline))
        for message in baseline_warnings:
            print(f"::warning title=benchmark gate note::{message}")

    if baseline.get("scale") != current["scale"]:
        if args.missing_baseline == "skip":
            print(
                f"::warning title=benchmark gate skipped::baseline scale "
                f"{baseline.get('scale')!r} does not match measured scale "
                f"{current['scale']!r}; gate skipped"
            )
            return 0
        print(
            f"error: measured scale {current['scale']!r} does not match baseline "
            f"scale {baseline.get('scale')!r} ({args.baseline}); comparing them "
            "would only report scale mismatch, not regressions",
            file=sys.stderr,
        )
        return 2
    regressions, improvements, notes = compare_metrics(current, baseline, args.tolerance)

    for message in notes:
        print(f"::warning title=benchmark gate note::{message}")
    for message in improvements:
        # GitHub Actions annotation: improvement is a warning, not a failure,
        # so the baseline gets refreshed rather than silently drifting.
        print(f"::warning title=benchmark improved::{message}")
    if regressions:
        for message in regressions:
            print(f"::error title=benchmark regression::{message}")
        print(f"FAIL: {len(regressions)} metric(s) regressed beyond {args.tolerance:.0%}")
        return 1
    print(f"gate green: all metrics within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
