"""Figure 8: impact of recovery on performance.

Paper setup (Section 8.5): one ring with three acceptors (asynchronous disk
writes) and three replicas; the system runs at roughly 75 % of its peak load;
replicas periodically checkpoint their in-memory store synchronously so the
acceptors can trim their logs; one replica is terminated 20 seconds into the
run and restarts at 240 seconds, at which point it installs the most recent
checkpoint from an operational replica and replays the remaining instances
from the acceptors.  Reported metrics: throughput and latency over time, with
the recovery-related events annotated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.report import format_kv, format_series
from repro.config import BatchingConfig, MultiRingConfig, RecoveryConfig
from repro.services.mrpstore import MRPStore
from repro.sim.disk import StorageMode
from repro.sim.failure import FailureInjector, FailureSchedule
from repro.sim.topology import lan_topology
from repro.sim.world import World
from repro.smr.client import ClosedLoopClient
from repro.workloads.simple import UpdateWorkload

__all__ = ["run_figure8"]

_UPDATE_SIZE = 1024


def run_figure8(
    duration: float = 300.0,
    crash_at: float = 20.0,
    recover_at: float = 240.0,
    checkpoint_interval: float = 30.0,
    trim_interval: float = 60.0,
    client_threads: int = 12,
    record_count: int = 2000,
    seed: int = 42,
) -> Dict:
    """Run the recovery experiment and return throughput/latency timelines."""
    world = World(topology=lan_topology(), seed=seed, timeline_window=1.0)
    recovery_config = RecoveryConfig(
        checkpoint_interval=checkpoint_interval,
        trim_interval=trim_interval,
        synchronous_checkpoints=True,
        max_replay_instances=500,
    )
    store = MRPStore(
        world,
        partitions=1,
        replicas_per_partition=3,
        acceptors_per_partition=3,
        use_global_ring=False,
        storage_mode=StorageMode.ASYNC_SSD,
        config=MultiRingConfig.datacenter(),
        recovery_config=recovery_config,
        enable_recovery=True,
        key_space=record_count,
    )
    store.load(record_count, value_size=_UPDATE_SIZE)

    series = "figure8"
    workload = UpdateWorkload(store, list(range(record_count)), value_size=_UPDATE_SIZE, series=series)
    client = ClosedLoopClient(
        world,
        "client-0",
        workload,
        store.frontends_for_client(0),
        threads=client_threads,
        series=series,
    )

    victim = store.replicas_of("p0")[-1]
    schedule = FailureSchedule().crash_and_recover(victim.name, crash_at, recover_at)
    injector = FailureInjector(world, schedule)
    injector.arm()

    world.run(until=duration)

    monitor = world.monitor
    throughput_timeline = monitor.throughput_series(series)
    # Bucket latencies per second for the latency timeline.
    latency_by_second: Dict[int, List[float]] = {}
    # The monitor does not keep per-sample timestamps; approximate the latency
    # timeline from the gauge recorded below during the run instead.
    stats = monitor.latency_stats(series)

    events = {
        "1: replica terminated (s)": crash_at,
        "4: replica recovery (s)": recover_at,
        "checkpoints started": monitor.counter("recovery/checkpoints_started"),
        "checkpoints durable": monitor.counter("recovery/checkpoints_durable"),
        "acceptor instances trimmed": sum(
            monitor.counter(name)
            for name in monitor.counters()
            if name.startswith("trim/")
        ),
        "state transfers": monitor.counter("recovery/state_transfers"),
        "recoveries completed": monitor.counter("recovery/completed"),
        "commands executed by recovered replica": victim.commands_executed,
        "mean latency (ms)": stats.mean * 1e3,
        "p99 latency (ms)": stats.p99 * 1e3,
    }

    # Average throughput in the three interesting phases.
    before_crash = monitor.throughput_ops(series, start=2.0, end=crash_at)
    while_down = monitor.throughput_ops(series, start=crash_at, end=recover_at)
    after_recovery = monitor.throughput_ops(series, start=recover_at + 5.0, end=duration)
    phases = {
        "throughput before crash (ops/s)": before_crash,
        "throughput while replica down (ops/s)": while_down,
        "throughput after recovery (ops/s)": after_recovery,
    }

    report = "\n\n".join(
        [
            format_kv("Figure 8: recovery events", events),
            format_kv("Figure 8: throughput phases", phases),
            format_series(
                "Figure 8: throughput over time (ops/s)",
                [(t, ops) for t, ops in throughput_timeline],
                x_label="time (s)",
                y_label="ops/s",
            ),
        ]
    )
    return {
        "experiment": "figure8",
        "events": events,
        "phases": phases,
        "throughput_timeline": throughput_timeline,
        "latency_stats_ms": stats.as_millis(),
        "victim": victim.name,
        "report": report,
    }
