"""Ablation benchmarks for the design choices called out in DESIGN.md.

* **Rate leveling** (Section 4): with rate leveling disabled, a learner that
  subscribes to a busy ring and a nearly idle ring can only deliver at the
  idle ring's pace; with it enabled, skip instances keep the idle ring moving
  and the busy ring's throughput is preserved.
* **Merge granularity M**: larger values of M amortize the round-robin
  switching but delay messages of other rings; the ablation sweeps M and
  reports the throughput/latency trade-off.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bench.drivers import ClosedLoopProposerDriver
from repro.bench.report import format_table
from repro.config import MultiRingConfig, RingConfig
from repro.multiring.deployment import Deployment, RingSpec
from repro.sim.disk import StorageMode
from repro.sim.topology import lan_topology
from repro.sim.world import World

__all__ = ["run_rate_leveling_ablation", "run_merge_granularity_ablation"]


def _two_ring_world(config: MultiRingConfig, seed: int) -> Deployment:
    """Two rings; the shared learner subscribes to both; only ring-1 carries load."""
    world = World(topology=lan_topology(), seed=seed, timeline_window=0.5)
    deployment = Deployment(world, config)
    busy_members = ["busy-1", "busy-2", "busy-3"]
    idle_members = ["idle-1", "idle-2", "idle-3"]
    for name in busy_members + idle_members:
        deployment.add_node(name)
    # The learners of the busy ring also subscribe to the idle ring, which is
    # what couples their delivery rates through the deterministic merge.
    deployment.add_ring(RingSpec(group="ring-busy", members=busy_members))
    deployment.add_ring(
        RingSpec(
            group="ring-idle",
            members=idle_members + busy_members,
            acceptors=idle_members,
            proposers=idle_members,
            learners=busy_members,
        )
    )
    return deployment


def _run_rate_leveling_case(rate_leveling: bool, duration: float, seed: int) -> Dict[str, float]:
    config = MultiRingConfig.datacenter(rate_leveling=rate_leveling)
    deployment = _two_ring_world(config, seed)
    series = f"ablation-leveling-{rate_leveling}"
    drivers = [
        ClosedLoopProposerDriver(deployment.node(name), "ring-busy", 1024, 10, series)
        for name in ("busy-1", "busy-2", "busy-3")
    ]
    deployment.world.start()
    for driver in drivers:
        driver.start()
    deployment.world.run(until=duration)
    monitor = deployment.world.monitor
    stats = monitor.latency_stats(series)
    return {
        "throughput_ops": monitor.throughput_ops(series, start=duration * 0.2, end=duration),
        "latency_ms": stats.mean * 1e3,
        "delivered": float(sum(driver.completed for driver in drivers)),
    }


def run_rate_leveling_ablation(duration: float = 5.0, seed: int = 42) -> Dict:
    """Busy ring + idle ring, with and without rate leveling."""
    with_leveling = _run_rate_leveling_case(True, duration, seed)
    without_leveling = _run_rate_leveling_case(False, duration, seed)
    rows = [
        ["rate leveling on", with_leveling["throughput_ops"], with_leveling["latency_ms"]],
        ["rate leveling off", without_leveling["throughput_ops"], without_leveling["latency_ms"]],
    ]
    report = format_table(
        "Ablation: rate leveling (busy ring + idle ring, shared learners)",
        ["configuration", "busy-ring ops/s", "latency (ms)"],
        rows,
    )
    return {
        "experiment": "ablation-rate-leveling",
        "with_leveling": with_leveling,
        "without_leveling": without_leveling,
        "report": report,
    }


def run_merge_granularity_ablation(
    m_values: Sequence[int] = (1, 4, 16),
    duration: float = 5.0,
    seed: int = 42,
) -> Dict:
    """Sweep the deterministic-merge granularity M on a two-ring deployment."""
    results: Dict[int, Dict[str, float]] = {}
    for m in m_values:
        config = MultiRingConfig.datacenter(m=m)
        deployment = _two_ring_world(config, seed)
        series = f"ablation-m-{m}"
        drivers = [
            ClosedLoopProposerDriver(deployment.node(name), "ring-busy", 1024, 10, series)
            for name in ("busy-1", "busy-2", "busy-3")
        ]
        deployment.world.start()
        for driver in drivers:
            driver.start()
        deployment.world.run(until=duration)
        monitor = deployment.world.monitor
        stats = monitor.latency_stats(series)
        results[m] = {
            "throughput_ops": monitor.throughput_ops(series, start=duration * 0.2, end=duration),
            "latency_ms": stats.mean * 1e3,
        }
    rows = [[m, results[m]["throughput_ops"], results[m]["latency_ms"]] for m in m_values]
    report = format_table(
        "Ablation: deterministic-merge granularity M",
        ["M", "busy-ring ops/s", "latency (ms)"],
        rows,
    )
    return {"experiment": "ablation-merge-granularity", "results": results, "report": report}
