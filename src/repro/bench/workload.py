"""The ``workload`` experiment: an open-loop flash-crowd storm, both backends.

This is the million-user stress scenario the workload engine exists for:

1. **Sim storm.**  An open-loop Zipf flash crowd (modeling a million users by
   arrival sampling, no per-client objects) hits a range-partitioned
   MRP-Store; the spike phase sharpens the skew *and* moves the hotspot onto
   one partition's key range.  Mid-spike the store scales out live (a second
   ring, both partitions split) through the elastic re-partitioning path --
   the open-loop target re-resolves routing on miss, so traffic follows the
   migration without a restart.  Optionally a
   :func:`~repro.scenarios.flashcrowd.flash_crowd_fault_plan` crashes the
   hot ring's coordinator mid-peak.
2. **Live replay.**  A prefix of the storm's recorded trace replays over the
   real asyncio/TCP backend through the public facade; the replayed arrival
   stream must match the recorded prefix byte for byte (same events, same
   ``float.hex`` instants).

The run writes ``BENCH_workload.json`` with an embedded ``analytics``
section (:func:`repro.bench.analytics.make_analytics`): per-series latency
percentiles and SLO verdicts.  ``passed`` gates only on hard invariants --
completion ratio, migration installation, replay fidelity -- while SLO
verdicts are reported for ``python -m repro.bench.analytics`` and the
``workload`` regression suite to track.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.analytics import SLOTarget, make_analytics
from repro.bench.report import format_kv, format_table
from repro.config import MultiRingConfig
from repro.coordination.reconfig import ReconfigController
from repro.reconfig.elastic import migrations_installed, scale_out
from repro.services.mrpstore import MRPStore
from repro.sim.disk import StorageMode
from repro.sim.topology import lan_topology
from repro.sim.world import World
from repro.workloads.engine import (
    OpenLoopLoadGenerator,
    OpenLoopSampler,
    PhaseSchedule,
    SimWorkloadManager,
    WorkloadTrace,
)

__all__ = ["run_workload"]


def _phase_latencies(
    entries, schedule: PhaseSchedule
) -> Dict[str, List[float]]:
    """Completed-entry latencies bucketed by the phase their arrival hit."""
    buckets: Dict[str, List[float]] = {}
    for entry in entries:
        if entry.latency is None or entry.issued_at >= schedule.duration:
            continue
        label = schedule.phase_at(entry.issued_at).label or "phase"
        buckets.setdefault(label, []).append(entry.latency)
    return buckets


def _run_sim_storm(
    schedule: PhaseSchedule,
    *,
    record_count: int,
    users: int,
    seed: int,
    replicas_per_partition: int,
    acceptors_per_partition: int,
    value_size: int,
    scale_out_at: float,
    quiesce: float,
    coordinator_crash: bool,
) -> Tuple[Dict, WorkloadTrace]:
    world = World(topology=lan_topology(), seed=seed, timeline_window=0.25)
    store = MRPStore(
        world,
        partitions=2,
        rings=1,
        replicas_per_partition=replicas_per_partition,
        acceptors_per_partition=acceptors_per_partition,
        use_global_ring=False,
        scheme="range",
        storage_mode=StorageMode.MEMORY,
        config=MultiRingConfig.datacenter(),
        key_space=record_count,
    )
    store.load(record_count, value_size=value_size)

    sampler = OpenLoopSampler(schedule, key_space=record_count, users=users, seed=seed)
    trace = WorkloadTrace(meta=sampler.meta())
    generator = OpenLoopLoadGenerator(
        world,
        "openloop-storm",
        store.open_loop_target(value_size=value_size, series="workload"),
        sampler.events(),
        series="workload",
        recorder=trace,
    )
    manager = SimWorkloadManager(world, generator)

    crash_events = 0
    if coordinator_crash:
        from repro.scenarios.flashcrowd import flash_crowd_fault_plan

        spike = schedule.peak_phase()
        hot_key = store.key(int(spike.hotspot * record_count) % record_count)
        hot_group = store.current_map.group_of_key(hot_key)
        plan = flash_crowd_fault_plan(schedule, hot_group)
        injector = plan.arm(world, deployment=store.deployment, store=store)
        crash_events = len(plan.faults)
        del injector  # the schedule lives on the world's timers

    manager.start()
    world.run(until=scale_out_at)

    # Mid-spike elastic scale-out: 1 -> 2 rings, 2 -> 4 partitions, while
    # the storm keeps firing (the open-loop target re-routes on miss).
    controller = ReconfigController(world, store.deployment)
    quarter = store.key(record_count // 4)
    three_quarters = store.key(3 * record_count // 4)
    migration_ids = scale_out(
        store,
        controller,
        new_group="ring-g1",
        splits=[("p0", "p2", quarter), ("p1", "p3", three_quarters)],
    )
    world.run(until=schedule.duration)
    manager.stop()
    world.run(until=schedule.duration + quiesce)

    latencies = manager.latencies()
    completion_ratio = generator.completed / generator.issued if generator.issued else 0.0
    return (
        {
            "issued": generator.issued,
            "completed": generator.completed,
            "completion_ratio": completion_ratio,
            "outstanding_at_end": generator.outstanding,
            "expected_arrivals": schedule.expected_arrivals(),
            "migrations_started": len(migration_ids),
            "migrations_installed": migrations_installed(store, ["p2", "p3"]),
            "partition_map_version": store.current_map.version,
            "partitions": sorted(store.partitions),
            "coordinator_crash_faults": crash_events,
            "latencies": latencies,
            "phase_latencies": _phase_latencies(generator.entries, schedule),
        },
        trace,
    )


def _run_live_replay(
    trace: WorkloadTrace,
    *,
    events: int,
    nodes: int,
    seed: int,
    timeout: float,
) -> Dict:
    from repro.api import AtomicMulticast

    prefix = trace.prefix(events)
    if not prefix.events:
        return {"skipped": "recorded trace is empty; nothing to replay"}
    am = AtomicMulticast(backend="live", seed=seed)
    names = [f"wl{i}" for i in range(nodes)]
    am.ring("wl-ring", acceptors=names, learners=names)
    with am:
        manager = am.workload("wl-ring", replay=prefix.events, record=True)
        completed = manager.drain(timeout=timeout)
        manager.stop()
    # Byte-for-byte fidelity: the facade recorded exactly the events it was
    # told to replay, in order, at the same float.hex instants.
    replay_exact = manager.trace is not None and manager.trace.events == prefix.events
    return {
        "replayed": len(prefix.events),
        "completed": completed,
        "replay_exact": replay_exact,
        "latencies": manager.latencies(),
    }


def run_workload(
    duration: float = 12.0,
    base_rate: float = 40.0,
    spike_rate: float = 320.0,
    spike_at: float = 4.0,
    spike_duration: float = 3.0,
    spike_hotspot: float = 0.55,
    record_count: int = 400,
    users: int = 1_000_000,
    value_size: int = 256,
    seed: int = 42,
    replicas_per_partition: int = 2,
    acceptors_per_partition: int = 3,
    scale_out_at: Optional[float] = None,
    quiesce: float = 2.0,
    coordinator_crash: bool = False,
    live_replay_events: int = 150,
    live_nodes: int = 3,
    live_timeout: float = 90.0,
    backends: Sequence[str] = ("sim", "live"),
    slo_p50_ms: float = 100.0,
    slo_p99_ms: float = 500.0,
    min_completion_ratio: Optional[float] = None,
    output: Optional[Path] = Path("BENCH_workload.json"),
) -> Dict:
    """Run the flash-crowd storm on the sim, then replay its trace live.

    ``backends`` selects what runs: ``("sim",)`` keeps the run fully
    deterministic (the regression suite uses this), the default adds the
    wall-clock TCP replay.  ``passed`` gates on completion ratio, migration
    installation and replay fidelity -- the SLO verdicts (``slo_p50_ms`` /
    ``slo_p99_ms`` against each series) are reported, not gated, because
    wall-clock percentiles are machine-dependent.
    """
    schedule = PhaseSchedule.flash_crowd(
        base_rate,
        spike_rate,
        at=spike_at,
        spike_duration=spike_duration,
        duration=duration,
        spike_hotspot=spike_hotspot,
    )
    if scale_out_at is None:
        scale_out_at = spike_at + spike_duration / 2.0
    if min_completion_ratio is None:
        # A mid-peak coordinator crash legitimately sheds in-flight commands.
        min_completion_ratio = 0.5 if coordinator_crash else 0.98

    failures: List[str] = []
    sim: Dict = {}
    trace = WorkloadTrace()
    if "sim" in backends:
        sim, trace = _run_sim_storm(
            schedule,
            record_count=record_count,
            users=users,
            seed=seed,
            replicas_per_partition=replicas_per_partition,
            acceptors_per_partition=acceptors_per_partition,
            value_size=value_size,
            scale_out_at=scale_out_at,
            quiesce=quiesce,
            coordinator_crash=coordinator_crash,
        )
        if sim["completion_ratio"] < min_completion_ratio:
            failures.append(
                f"sim: completion ratio {sim['completion_ratio']:.3f} below "
                f"{min_completion_ratio:.2f} ({sim['completed']}/{sim['issued']})"
            )
        if not sim["migrations_installed"]:
            failures.append("sim: scale-out migrations not installed on every replica")

    live: Dict = {"skipped": "live backend not selected"}
    if "live" in backends:
        if not trace.events:
            live = {"skipped": "no recorded sim trace to replay"}
        else:
            live = _run_live_replay(
                trace,
                events=live_replay_events,
                nodes=live_nodes,
                seed=seed,
                timeout=live_timeout,
            )
            if "skipped" not in live:
                if not live["replay_exact"]:
                    failures.append("live: replayed stream diverged from the recorded trace")
                if live["completed"] < live["replayed"]:
                    failures.append(
                        f"live: only {live['completed']}/{live['replayed']} "
                        "replayed arrivals completed"
                    )

    # Analytics: per-series percentiles + SLO verdicts (reported, not gated).
    series_samples: Dict[str, List[float]] = {}
    slos: List[SLOTarget] = []
    if sim.get("latencies"):
        series_samples["sim/openloop"] = sim["latencies"]
        slos.append(SLOTarget("sim/openloop", p50_ms=slo_p50_ms, p99_ms=slo_p99_ms))
        for label, samples in sim.get("phase_latencies", {}).items():
            series_samples[f"sim/phase/{label}"] = samples
    if live.get("latencies"):
        series_samples["live/replay"] = live["latencies"]
        slos.append(SLOTarget("live/replay", p50_ms=slo_p50_ms, p99_ms=slo_p99_ms))
    analytics = make_analytics(series_samples, slos)

    rows = []
    for name in sorted(series_samples):
        summary = analytics["series"][name]
        rows.append(
            [
                name,
                summary.get("count", 0),
                f"{summary.get('p50_ms', 0.0):.2f}",
                f"{summary.get('p99_ms', 0.0):.2f}",
                f"{summary.get('p999_ms', 0.0):.2f}",
            ]
        )
    report = format_table(
        "Open-loop flash crowd: latency by series (ms)",
        ["series", "n", "p50", "p99", "p99.9"],
        rows,
    )
    summary_kv = {
        "schedule": " -> ".join(
            f"{p.label}@{p.rate:g}/s" for p in schedule.phases
        ),
        "sim issued/completed": f"{sim.get('issued', 0)}/{sim.get('completed', 0)}",
        "sim migrations installed": sim.get("migrations_installed", "n/a"),
        "live replayed/completed": (
            f"{live.get('replayed', 0)}/{live.get('completed', 0)}"
            if "skipped" not in live
            else live["skipped"]
        ),
        "live replay byte-exact": live.get("replay_exact", "n/a"),
        "SLO verdicts ok": analytics["slo_ok"],
    }
    report += "\n\n" + format_kv("Storm summary", summary_kv)
    if failures:
        report += "\nFAILURES:\n" + "\n".join(f"  - {line}" for line in failures)

    # Raw latency sample lists are large and already distilled into the
    # analytics section; drop them from the persisted result.
    sim_out = {k: v for k, v in sim.items() if k not in ("latencies", "phase_latencies")}
    live_out = {k: v for k, v in live.items() if k != "latencies"}
    result = {
        "experiment": "workload",
        "seed": seed,
        "backends": list(backends),
        "schedule": schedule.describe(),
        "users": users,
        "record_count": record_count,
        "sim": sim_out,
        "live": live_out,
        "analytics": analytics,
        "recorded_at": time.time(),
        "report": report,
        "passed": not failures,
        "failures": failures,
    }
    if output is not None:
        Path(output).write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    # In-memory extras for callers (regression suite, tests); not persisted.
    result["_trace"] = trace
    result["_series_samples"] = series_samples
    return result
