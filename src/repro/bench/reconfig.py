"""Live scale-out: throughput before / during / after a reconfiguration.

The scenario exercises the reconfiguration subsystem end to end, as a
*runtime* event under load (the dynamic counterpart of the paper's Figure 7
scaling claim):

1. an MRP-Store starts with **one ring carrying two range partitions** and a
   YCSB-style workload running against it;
2. at ``reconfig_at`` a second ring is added live and **both partitions are
   split** onto it (2 -> 4 partitions) via atomically-multicast key-range
   migrations;
3. the workload keeps running throughout; a tracked writer issues uniquely
   keyed inserts across the whole key space so that every acknowledged write
   can be checked against the final replica states.

Reported: throughput in the windows before / during / after the transition,
migration statistics, whether all replicas of each partition agree, and how
many acknowledged writes were lost (must be zero).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.report import format_kv, format_table
from repro.config import MultiRingConfig
from repro.coordination.reconfig import ReconfigController
from repro.reconfig.elastic import migrations_installed, scale_out
from repro.services.mrpstore import MRPStore
from repro.sim.disk import StorageMode
from repro.runtime.actor import Process
from repro.sim.topology import lan_topology
from repro.sim.world import World
from repro.smr.client import ClosedLoopClient
from repro.smr.command import Command, Response, SubmitCommand
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBWorkload

__all__ = ["run_reconfig"]


class _TrackedWriter(Process):
    """Issues uniquely keyed inserts and records which were acknowledged.

    Unlike the closed-loop YCSB clients this writer never blocks: it fires at
    a fixed interval, so writes keep arriving throughout the reconfiguration
    window, including the instants around the handoff points.
    """

    def __init__(self, world: World, name: str, store: MRPStore, interval: float, value_size: int = 128) -> None:
        super().__init__(world, name)
        self.store = store
        self.interval = interval
        self.value_size = value_size
        self._outstanding: Dict[int, str] = {}
        self._index = 0
        self.acked: List[str] = []

    def on_start(self) -> None:
        self.set_periodic_timer(self.interval, self._tick)

    def _tick(self) -> None:
        spread = (self._index * 7919) % self.store.key_space
        # Suffixing the canonical key keeps the writer's keys unique (YCSB
        # never generates them) while spreading them across every range.
        key = f"user{spread:012d}x{self._index:06d}"
        self._index += 1
        request = self.store.insert(key, self.value_size, series="tracked")
        frontend = self.store.frontends_for_client(0).get(request.group)
        if frontend is None:
            return
        command = Command.create(
            client=self.name,
            operation=request.operation,
            size_bytes=request.size_bytes,
            created_at=self.now,
        )
        self._outstanding[command.command_id] = key
        self.send(frontend, SubmitCommand(group=request.group, command=command))

    def on_message(self, sender: str, payload) -> None:
        if isinstance(payload, Response):
            key = self._outstanding.pop(payload.command_id, None)
            if key is not None:
                self.acked.append(key)


def _check_consistency(store: MRPStore) -> Dict[str, object]:
    """All replicas of each partition agree; no acknowledged write lost."""
    divergent: List[str] = []
    for name, partition in store.partitions.items():
        reference = partition.replicas[0].state_machine
        for replica in partition.replicas[1:]:
            if replica.state_machine._entries != reference._entries:
                divergent.append(name)
                break
            if replica.state_machine.partition_map.version != reference.partition_map.version:
                divergent.append(name)
                break
    return {"divergent_partitions": divergent, "consistent": not divergent}


def _lost_writes(store: MRPStore, acked: List[str]) -> List[str]:
    final_map = store.current_map
    lost = []
    for key in acked:
        owner = final_map.partition_of(key)
        replica = store.partitions[owner].replicas[0]
        if not replica.state_machine.contains(key):
            lost.append(key)
    return lost


def run_reconfig(
    duration: float = 12.0,
    reconfig_at: float = 4.0,
    settle: float = 3.0,
    record_count: int = 600,
    client_threads: int = 8,
    client_machines: int = 2,
    replicas_per_partition: int = 2,
    acceptors_per_partition: int = 3,
    value_size: int = 256,
    writer_interval: float = 0.02,
    quiesce: float = 1.0,
    seed: int = 42,
) -> Dict:
    """Run the live 1->2 rings / 2->4 partitions scale-out scenario."""
    world = World(topology=lan_topology(), seed=seed, timeline_window=0.25)
    store = MRPStore(
        world,
        partitions=2,
        rings=1,
        replicas_per_partition=replicas_per_partition,
        acceptors_per_partition=acceptors_per_partition,
        use_global_ring=False,
        scheme="range",
        storage_mode=StorageMode.MEMORY,
        config=MultiRingConfig.datacenter(),
        key_space=record_count,
    )
    store.load(record_count, value_size=value_size)

    series = "reconfig"
    clients: List[ClosedLoopClient] = []
    threads_per_machine = max(1, client_threads // client_machines)
    for index in range(client_machines):
        workload = YCSBWorkload(store, YCSB_WORKLOADS["A"].scaled(record_count), series=series)
        clients.append(
            ClosedLoopClient(
                world,
                f"client-{index}",
                workload,
                store.frontends_for_client(index),
                threads=threads_per_machine,
                series=series,
            )
        )
    writer = _TrackedWriter(world, "tracked-writer", store, interval=writer_interval)

    # Clients learn about new rings the way the paper's clients learn about
    # partitioning changes: a watch on the registry's partition map.
    def _refresh(_key, _value) -> None:
        for index, client in enumerate(clients):
            client.frontends.update(store.frontends_for_client(index))

    store.deployment.registry.watch("partition-map/mrp-store", _refresh)

    # Phase 1: steady state on one ring / two partitions.
    world.run(until=reconfig_at)

    # Phase 2: live scale-out to two rings / four partitions.
    controller = ReconfigController(world, store.deployment)
    quarter = store.key(record_count // 4)
    three_quarters = store.key(3 * record_count // 4)
    migration_ids = scale_out(
        store,
        controller,
        new_group="ring-g1",
        splits=[("p0", "p2", quarter), ("p1", "p3", three_quarters)],
    )
    world.run(until=duration)

    # Quiesce: stop issuing and drain in-flight commands before comparing
    # replica states.
    for client in clients:
        client.crash()
    writer.crash()
    world.run(until=duration + quiesce)

    monitor = world.monitor
    warmup = min(0.5, reconfig_at / 4)
    during_end = min(duration, reconfig_at + settle)
    phases = {
        "throughput before (ops/s)": monitor.throughput_ops(series, start=warmup, end=reconfig_at),
        "throughput during (ops/s)": monitor.throughput_ops(series, start=reconfig_at, end=during_end),
        "throughput after (ops/s)": monitor.throughput_ops(series, start=during_end, end=duration),
    }
    consistency = _check_consistency(store)
    lost = _lost_writes(store, writer.acked)
    events = {
        "migrations started": len(migration_ids),
        "migrations installed everywhere": migrations_installed(store, ["p2", "p3"]),
        "commands forwarded": monitor.counter("reconfig/commands_forwarded"),
        "partition-map version": store.current_map.version,
        "acked tracked writes": len(writer.acked),
        "lost tracked writes": len(lost),
        "replicas consistent": consistency["consistent"],
    }

    report = format_table(
        "Live scale-out (1 -> 2 rings, 2 -> 4 partitions): throughput",
        ["phase", "ops/s"],
        [[name.split(" (")[0], value] for name, value in phases.items()],
    )
    report += "\n\n" + format_kv("Reconfiguration events", events)
    return {
        "experiment": "reconfig",
        "phases": phases,
        "events": events,
        "consistency": consistency,
        "lost_writes": lost,
        "migration_ids": migration_ids,
        "partitions": sorted(store.partitions),
        "report": report,
        "_store": store,
        "_writer_acked": list(writer.acked),
    }
