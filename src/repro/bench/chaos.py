"""The chaos campaign experiment: geo-scale fault schedules with invariants.

``python -m repro.bench chaos`` sweeps scenario × fault-plan combinations on
the WAN presets and checks the global invariants after each run (no
acknowledged write lost, replica convergence, merge liveness on every ring,
bounded cross-ring delivery skew, recovery completion, post-fault progress).
The nightly CI lane runs the quick scale and uploads ``BENCH_chaos.json``
plus the per-combo scenario traces; set ``CHAOS_TRACE_DIR`` to collect the
traces locally.

Scales:

* ``smoke`` -- 2 combos on ``wan3``, a few seconds of simulated time each;
* ``quick`` -- 6 combos (5 on the async-SSD ``wan3`` deployment, 1 disk-stall
  combo on a sync-SSD deployment);
* ``paper`` -- the quick sweep plus the 8-datacenter ``dc8`` preset.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.scenarios.campaign import CampaignRunner, ScenarioSpec
from repro.scenarios.faults import FaultPlan
from repro.sim.disk import StorageMode

__all__ = ["run_chaos", "build_combos"]


def _base_scenario(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="wan3-base",
        preset="wan3",
        partitions=3,
        replicas_per_partition=2,
        acceptors_per_partition=3,
        storage_mode=StorageMode.ASYNC_SSD,
        enable_recovery=True,
        client_threads=4,
        record_count=300,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def _plans() -> Dict[str, FaultPlan]:
    """The standard fault plans (fault windows sit inside [2s, 6s])."""
    return {
        "coordinator-crash": FaultPlan("coordinator-crash").crash_coordinator(
            "ring-p0", at=2.0, restart_at=4.0
        ),
        "replica-crash": FaultPlan("replica-crash").crash_replica(
            "p1", 1, at=2.5, restart_at=5.0
        ),
        "region-partition": FaultPlan("region-partition").partition(
            ["eu-west-1"], ["us-east-1"], at=2.0, heal_at=4.5
        ),
        "delay-spike": FaultPlan("delay-spike").delay_spike(
            "eu-west-1", "ap-southeast-1", extra_ms=150.0, at=2.0, clear_at=5.0
        ),
        "mixed-storm": (
            FaultPlan("mixed-storm")
            .delay_spike("us-east-1", "ap-southeast-1", extra_ms=100.0, at=2.0, clear_at=4.0)
            .partition(["eu-west-1"], ["us-east-1"], at=2.5, heal_at=4.0)
            .crash_replica("p0", 1, at=4.5, restart_at=6.0)
        ),
        "disk-stall": FaultPlan("disk-stall").disk_stall("ring-p0", at=2.0, duration=2.0),
    }


def build_combos(scale: str) -> List[Tuple[ScenarioSpec, FaultPlan]]:
    """The scenario × fault-plan matrix for one scale."""
    plans = _plans()
    base = _base_scenario()
    syncdisk = _base_scenario(name="wan3-syncdisk", storage_mode=StorageMode.SYNC_SSD)
    if scale == "smoke":
        return [
            (base, plans["coordinator-crash"]),
            (base, plans["region-partition"]),
        ]
    combos: List[Tuple[ScenarioSpec, FaultPlan]] = [
        (base, plans["coordinator-crash"]),
        (base, plans["replica-crash"]),
        (base, plans["region-partition"]),
        (base, plans["delay-spike"]),
        (base, plans["mixed-storm"]),
        (syncdisk, plans["disk-stall"]),
    ]
    if scale == "paper":
        dc8 = _base_scenario(
            name="dc8-global",
            preset="dc8",
            partitions=8,
            client_threads=2,
            record_count=800,
        )
        dc8_partition = FaultPlan("continental-split").partition(
            ["eu-west-1", "eu-central-1"],
            ["us-east-1", "us-west-1", "us-west-2"],
            at=2.0,
            heal_at=5.0,
        )
        combos.extend(
            [
                (dc8, plans["coordinator-crash"]),
                (dc8, dc8_partition),
            ]
        )
    return combos


def run_chaos(
    scale: str = "quick",
    duration: float = 12.0,
    settle: float = 3.0,
    seed: int = 42,
    trace_dir: Optional[str] = None,
    tracing: bool = False,
    trace_sample: int = 64,
) -> Dict:
    """Run the chaos campaign at ``scale`` and return the aggregated results."""
    if trace_dir is None:
        trace_dir = os.environ.get("CHAOS_TRACE_DIR") or None
    combos = build_combos(scale)
    runner = CampaignRunner(
        combos,
        duration=duration,
        settle=settle,
        seed=seed,
        trace_dir=trace_dir,
        tracing=tracing,
        trace_sample=trace_sample,
    )
    result = runner.run()
    result["scale"] = scale
    result["duration"] = duration
    verdict = "ALL INVARIANTS HELD" if result["passed"] else "INVARIANT VIOLATIONS"
    result["report"] += f"\n\n{len(combos)} combos at scale {scale!r}: {verdict}"
    return result
