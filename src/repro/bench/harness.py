"""Programmatic access to every experiment at a chosen scale.

The pytest-benchmark suite and EXPERIMENTS.md generation both need "run
experiment X at scale Y" as a single call; this module centralizes the scale
presets so the CLI (:mod:`repro.bench.__main__`), the benchmarks and the
documentation all use the same parameters.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.bench.ablations import run_merge_granularity_ablation, run_rate_leveling_ablation
from repro.bench.batching import run_batching
from repro.bench.chaos import run_chaos
from repro.bench.figure3 import run_figure3
from repro.bench.figure4 import run_figure4
from repro.bench.figure5 import run_figure5
from repro.bench.figure6 import run_figure6
from repro.bench.figure7 import run_figure7
from repro.bench.figure8 import run_figure8
from repro.bench.live import run_live_bench
from repro.bench.perf import run_perf
from repro.bench.reconfig import run_reconfig
from repro.bench.shootout import run_shootout
from repro.bench.workload import run_workload

__all__ = ["run_experiment", "EXPERIMENTS", "SCALES"]

SCALES = ("smoke", "quick", "paper")


def _params(scale: str, smoke: Dict, quick: Dict, paper: Dict) -> Dict:
    if scale == "smoke":
        return smoke
    if scale == "paper":
        return paper
    return quick


def run_experiment(name: str, scale: str = "quick") -> Dict:
    """Run experiment ``name`` ("figure3" ... "figure8", "ablations") at ``scale``."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
    if name == "figure3":
        return run_figure3(
            **_params(
                scale,
                smoke={"value_sizes": (512, 32768), "duration": 2.0},
                quick={"value_sizes": (512, 8192, 32768), "duration": 5.0},
                paper={"duration": 30.0},
            )
        )
    if name == "figure4":
        return run_figure4(
            **_params(
                scale,
                smoke={
                    "workloads": ("A", "E"),
                    "record_count": 500,
                    "client_threads": 8,
                    "client_machines": 1,
                    "duration": 2.0,
                },
                quick={
                    "record_count": 3000,
                    "client_threads": 32,
                    "client_machines": 2,
                    "duration": 5.0,
                },
                paper={"record_count": 100000, "client_threads": 100, "duration": 30.0},
            )
        )
    if name == "figure5":
        return run_figure5(
            **_params(
                scale,
                smoke={"client_counts": (1, 50), "duration": 2.0},
                quick={"client_counts": (1, 50, 200), "duration": 5.0},
                paper={"duration": 20.0},
            )
        )
    if name == "figure6":
        return run_figure6(
            **_params(
                scale,
                smoke={"ring_counts": (1, 2), "duration": 2.0, "clients_per_ring": 5},
                quick={"ring_counts": (1, 2, 3), "duration": 5.0, "clients_per_ring": 10},
                paper={"duration": 20.0, "clients_per_ring": 40},
            )
        )
    if name == "figure7":
        return run_figure7(
            **_params(
                scale,
                smoke={"region_counts": (1, 2), "duration": 5.0, "clients_per_region": 5},
                quick={"region_counts": (1, 2, 4), "duration": 10.0, "clients_per_region": 10},
                paper={"duration": 60.0, "clients_per_region": 40},
            )
        )
    if name == "figure8":
        return run_figure8(
            **_params(
                scale,
                smoke={
                    "duration": 30.0,
                    "crash_at": 5.0,
                    "recover_at": 20.0,
                    "checkpoint_interval": 4.0,
                    "trim_interval": 8.0,
                    "client_threads": 4,
                    "record_count": 200,
                },
                quick={
                    "duration": 60.0,
                    "crash_at": 10.0,
                    "recover_at": 40.0,
                    "checkpoint_interval": 8.0,
                    "trim_interval": 15.0,
                    "client_threads": 8,
                    "record_count": 500,
                },
                paper={"duration": 300.0},
            )
        )
    if name == "reconfig":
        return run_reconfig(
            **_params(
                scale,
                smoke={
                    "duration": 8.0,
                    "reconfig_at": 3.0,
                    "settle": 2.0,
                    "record_count": 300,
                    "client_threads": 4,
                    "client_machines": 1,
                },
                quick={
                    "duration": 12.0,
                    "reconfig_at": 4.0,
                    "settle": 3.0,
                    "record_count": 600,
                    "client_threads": 8,
                    "client_machines": 2,
                },
                paper={
                    "duration": 60.0,
                    "reconfig_at": 20.0,
                    "settle": 10.0,
                    "record_count": 5000,
                    "client_threads": 32,
                    "client_machines": 4,
                },
            )
        )
    if name == "batching":
        return run_batching(
            **_params(
                scale,
                smoke={
                    "batch_sizes": (1, 8),
                    "windows": (32,),
                    "proposer_threads": 8,
                    "duration": 1.0,
                },
                quick={
                    "batch_sizes": (1, 2, 4, 8, 16),
                    "windows": (1, 32),
                    "proposer_threads": 16,
                    "duration": 2.0,
                },
                paper={
                    "batch_sizes": (1, 2, 4, 8, 16, 32),
                    "windows": (1, 8, 32, 128),
                    "proposer_threads": 32,
                    "duration": 5.0,
                },
            )
        )
    if name == "chaos":
        return run_chaos(
            scale=scale,
            **_params(
                scale,
                smoke={"duration": 10.0, "settle": 2.5},
                quick={"duration": 12.0, "settle": 3.0},
                paper={"duration": 30.0, "settle": 5.0},
            ),
        )
    if name == "live":
        return run_live_bench(
            **_params(
                scale,
                # Wall-clock localhost TCP runs; scale bounds the append count.
                smoke={"nodes": 3, "values": 300, "window": 32},
                quick={"nodes": 3, "values": 1000, "window": 32},
                paper={"nodes": 5, "values": 5000, "window": 64},
            )
        )
    if name == "perf":
        return run_perf(
            **_params(
                scale,
                # ``duration`` is the lan simulated window; wan3 runs a fixed
                # multiple of it (see repro.bench.perf._DURATION_SCALE).
                smoke={"duration": 1.0},
                quick={"duration": 2.0},
                paper={"duration": 5.0},
            )
        )
    if name == "shootout":
        return run_shootout(
            **_params(
                scale,
                # smoke covers one single-group and one multi-group scenario
                # so CI still exercises the global-ring routing path.
                smoke={
                    "values_per_scenario": 120,
                    "scenarios": ("single-uniform", "multi-zipf"),
                },
                quick={"values_per_scenario": 400},
                paper={"values_per_scenario": 2000, "spacing": 1e-3},
            )
        )
    if name == "workload":
        return run_workload(
            **_params(
                scale,
                # The storm runs on both backends at every scale; the live
                # leg replays a prefix of the sim-recorded trace over TCP.
                smoke={
                    "duration": 6.0,
                    "base_rate": 30.0,
                    "spike_rate": 240.0,
                    "spike_at": 2.0,
                    "spike_duration": 1.5,
                    "record_count": 240,
                    "live_replay_events": 60,
                    "quiesce": 1.5,
                },
                quick={
                    "duration": 12.0,
                    "base_rate": 40.0,
                    "spike_rate": 320.0,
                    "spike_at": 4.0,
                    "spike_duration": 3.0,
                    "record_count": 400,
                    "live_replay_events": 150,
                },
                paper={
                    "duration": 60.0,
                    "base_rate": 200.0,
                    "spike_rate": 2000.0,
                    "spike_at": 20.0,
                    "spike_duration": 10.0,
                    "record_count": 5000,
                    "users": 5_000_000,
                    "live_replay_events": 500,
                    "quiesce": 5.0,
                },
            )
        )
    if name == "ablations":
        duration = {"smoke": 2.0, "quick": 5.0, "paper": 20.0}[scale]
        leveling = run_rate_leveling_ablation(duration=duration)
        granularity = run_merge_granularity_ablation(duration=duration)
        return {
            "experiment": "ablations",
            "rate_leveling": leveling,
            "merge_granularity": granularity,
            "report": leveling["report"] + "\n\n" + granularity["report"],
        }
    raise ValueError(f"unknown experiment {name!r}")


EXPERIMENTS = (
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "ablations",
    "reconfig",
    "batching",
    "chaos",
    "perf",
    "live",
    "shootout",
    "workload",
)
