"""Figure 6: vertical scalability of dLog.

Paper setup (Section 8.4.1): the number of rings (logs) grows from 1 to 5;
each ring has three processes and is associated with its own disk, so adding
rings adds storage resources to the same machines; learners subscribe to all
``k`` rings plus a common ring; clients generate 1 KB appends that are batched
into 32 KB packets by a proxy; acceptors write asynchronously.  Reported
metrics: aggregate throughput (ops/s, stacked per ring/disk) and the latency
CDF for writes to disk 1.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.report import format_table
from repro.config import BatchingConfig, MultiRingConfig
from repro.services.dlog import DLog
from repro.sim.disk import StorageMode
from repro.sim.topology import lan_topology
from repro.sim.world import World
from repro.smr.client import ClosedLoopClient
from repro.workloads.simple import AppendWorkload

__all__ = ["run_figure6", "DEFAULT_RING_COUNTS"]

DEFAULT_RING_COUNTS = (1, 2, 3, 4, 5)
_APPEND_SIZE = 1024


def _run_with_rings(
    ring_count: int,
    clients_per_ring: int,
    duration: float,
    seed: int,
    storage_mode: StorageMode,
) -> Dict:
    world = World(topology=lan_topology(), seed=seed, timeline_window=0.5)
    logs = [f"log-{i}" for i in range(ring_count)]
    dlog = DLog(
        world,
        logs=logs,
        replicas=1,
        acceptors_per_log=2,
        storage_mode=storage_mode,
        use_global_ring=True,
        config=MultiRingConfig.datacenter(),
        batching=BatchingConfig(enabled=True, max_batch_bytes=32 * 1024, max_batch_delay=1e-3),
    )
    clients: List[ClosedLoopClient] = []
    for index, log in enumerate(logs):
        workload = AppendWorkload(dlog, logs=[log], append_size=_APPEND_SIZE, series=f"append-{log}")
        clients.append(
            ClosedLoopClient(
                world,
                f"client-{log}",
                workload,
                dlog.frontends_for_client(index),
                threads=clients_per_ring,
                series=f"append-{log}",
            )
        )
    world.run(until=duration)
    warmup = duration * 0.2
    per_ring = {
        log: world.monitor.throughput_ops(f"append-{log}", start=warmup, end=duration) for log in logs
    }
    stats_disk1 = world.monitor.latency_stats(f"append-{logs[0]}")
    cdf_disk1 = [
        (latency * 1e3, fraction)
        for latency, fraction in world.monitor.latency_cdf(f"append-{logs[0]}", points=20)
    ]
    return {
        "per_ring_ops": per_ring,
        "aggregate_ops": sum(per_ring.values()),
        "latency_disk1_ms": stats_disk1.mean * 1e3,
        "cdf_disk1_ms": cdf_disk1,
    }


def run_figure6(
    ring_counts: Sequence[int] = DEFAULT_RING_COUNTS,
    clients_per_ring: int = 20,
    duration: float = 10.0,
    storage_mode: StorageMode = StorageMode.ASYNC_HDD,
    seed: int = 42,
) -> Dict:
    """Sweep the number of rings/disks and measure aggregate dLog throughput."""
    results: Dict[int, Dict] = {}
    for count in ring_counts:
        results[count] = _run_with_rings(count, clients_per_ring, duration, seed, storage_mode)

    rows = []
    previous = None
    for count in ring_counts:
        aggregate = results[count]["aggregate_ops"]
        if previous is None or previous <= 0:
            scaling = 100.0
        else:
            # Scalability relative to the previous step, as the paper annotates.
            scaling = 100.0 * (aggregate / count) / (previous / (count - 1))
        previous = aggregate
        rows.append(
            [
                count,
                aggregate,
                results[count]["latency_disk1_ms"],
                f"{scaling:.0f}%",
            ]
        )
    report = format_table(
        "Figure 6: dLog vertical scalability (async disk, one disk per ring)",
        ["rings", "aggregate ops/s", "latency disk 1 (ms)", "relative scaling"],
        rows,
    )
    return {
        "experiment": "figure6",
        "results": results,
        "ring_counts": list(ring_counts),
        "report": report,
    }
