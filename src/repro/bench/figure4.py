"""Figure 4: MRP-Store vs Cassandra-like vs MySQL-like under YCSB.

Paper setup (Section 8.3.2): three partitions, replication factor three, 100
client threads, database initialized with 1 GB of data, acceptors writing
asynchronously to disk.  MRP-Store is measured both with the global ring
(full cross-partition ordering) and with independent rings.  Reported
metrics: throughput in operations/second per workload (top graph) and the
read / update / read-modify-write latency breakdown for workload F (bottom
graph).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.eventual_store import EventualStore
from repro.baselines.single_server import SingleServerStore
from repro.bench.report import format_table
from repro.config import MultiRingConfig
from repro.services.mrpstore import MRPStore
from repro.sim.disk import StorageMode
from repro.sim.topology import lan_topology
from repro.sim.world import World
from repro.smr.client import ClosedLoopClient
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBWorkload

__all__ = ["run_figure4", "DEFAULT_SYSTEMS", "DEFAULT_WORKLOADS"]

DEFAULT_SYSTEMS = ("cassandra", "mrp-store-indep", "mrp-store", "mysql")
DEFAULT_WORKLOADS = ("A", "B", "C", "D", "E", "F")


def _build_system(name: str, world: World, record_count: int):
    """Instantiate one of the compared systems in ``world`` and load the data."""
    if name == "cassandra":
        system = EventualStore(world, partitions=3, replication_factor=3)
    elif name == "mysql":
        system = SingleServerStore(world, storage_mode=StorageMode.SYNC_SSD)
    elif name == "mrp-store":
        system = MRPStore(
            world,
            partitions=3,
            replicas_per_partition=3,
            acceptors_per_partition=3,
            use_global_ring=True,
            storage_mode=StorageMode.ASYNC_SSD,
            config=MultiRingConfig.datacenter(),
        )
    elif name == "mrp-store-indep":
        system = MRPStore(
            world,
            partitions=3,
            replicas_per_partition=3,
            acceptors_per_partition=3,
            use_global_ring=False,
            storage_mode=StorageMode.ASYNC_SSD,
            config=MultiRingConfig.datacenter(),
        )
    else:
        raise ValueError(f"unknown system {name!r}")
    system.load(record_count, value_size=1000)
    return system


def _run_cell(
    system_name: str,
    workload_name: str,
    record_count: int,
    client_threads: int,
    client_machines: int,
    duration: float,
    seed: int,
    split_operations: bool = False,
) -> Dict[str, float]:
    world = World(topology=lan_topology(), seed=seed, timeline_window=0.5)
    system = _build_system(system_name, world, record_count)
    config = YCSB_WORKLOADS[workload_name].scaled(record_count)
    series = f"{system_name}/{workload_name}"
    clients: List[ClosedLoopClient] = []
    threads_per_machine = max(1, client_threads // client_machines)
    for index in range(client_machines):
        workload = YCSBWorkload(system, config, series=series)
        workload.split_series_by_operation = split_operations
        clients.append(
            ClosedLoopClient(
                world,
                f"client-{index}",
                workload,
                system.frontends_for_client(index),
                threads=threads_per_machine,
                series=series,
            )
        )
    world.run(until=duration)
    monitor = world.monitor
    warmup = duration * 0.2
    if split_operations:
        result: Dict[str, float] = {}
        for operation in ("read", "update", "read-modify-write"):
            stats = monitor.latency_stats(f"{series}/{operation}")
            result[f"latency_{operation}_ms"] = stats.mean * 1e3
        result["throughput_ops"] = sum(
            monitor.throughput_ops(name, start=warmup, end=duration)
            for name in monitor.series_names()
            if name.startswith(series)
        )
        return result
    stats = monitor.latency_stats(series)
    return {
        "throughput_ops": monitor.throughput_ops(series, start=warmup, end=duration),
        "latency_ms": stats.mean * 1e3,
        "completed": float(sum(client.completed for client in clients)),
    }


def run_figure4(
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    record_count: int = 10000,
    client_threads: int = 100,
    client_machines: int = 4,
    duration: float = 10.0,
    seed: int = 42,
) -> Dict:
    """Run the YCSB comparison and the workload-F latency breakdown."""
    throughput: Dict[str, Dict[str, float]] = {}
    for system in systems:
        throughput[system] = {}
        for workload in workloads:
            cell = _run_cell(
                system, workload, record_count, client_threads, client_machines, duration, seed
            )
            throughput[system][workload] = cell["throughput_ops"]

    breakdown: Dict[str, Dict[str, float]] = {}
    if "F" in workloads:
        for system in systems:
            breakdown[system] = _run_cell(
                system,
                "F",
                record_count,
                client_threads,
                client_machines,
                duration,
                seed + 1,
                split_operations=True,
            )

    headers = ["system"] + [f"workload {w}" for w in workloads]
    rows = [[system] + [throughput[system][w] for w in workloads] for system in systems]
    report = format_table("Figure 4 (top): YCSB throughput (ops/s)", headers, rows)
    if breakdown:
        rows_f = [
            [
                system,
                breakdown[system].get("latency_read_ms", 0.0),
                breakdown[system].get("latency_update_ms", 0.0),
                breakdown[system].get("latency_read-modify-write_ms", 0.0),
            ]
            for system in systems
        ]
        report += "\n\n" + format_table(
            "Figure 4 (bottom): workload F latency (ms)",
            ["system", "read", "update", "read-modify-write"],
            rows_f,
        )
    return {
        "experiment": "figure4",
        "throughput_ops": throughput,
        "workload_f_breakdown": breakdown,
        "systems": list(systems),
        "workloads": list(workloads),
        "report": report,
    }
