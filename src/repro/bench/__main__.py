"""Command-line entry point for the benchmark harness.

Examples::

    python -m repro.bench figure3                 # reduced scale (quick)
    python -m repro.bench figure7 --scale paper   # paper-scale parameters
    python -m repro.bench reconfig --scale smoke  # live scale-out, tiny run
    python -m repro.bench all                     # every experiment, quick

Installed as the ``repro-bench`` console script by ``setup.py``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import EXPERIMENTS, SCALES, run_experiment

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's evaluation figures on the simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        choices=list(SCALES),
        default="quick",
        help=(
            "smoke = CI-sized run (seconds); quick = reduced parameters; "
            "paper = the paper's parameters (minutes)"
        ),
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = run_experiment(name, scale=args.scale)
        print(result["report"])
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
