"""Command-line entry point for the benchmark harness.

Examples::

    python -m repro.bench figure3                 # reduced scale (quick)
    python -m repro.bench figure7 --scale paper   # paper-scale parameters
    python -m repro.bench reconfig --scale smoke  # live scale-out, tiny run
    python -m repro.bench all                     # every experiment, quick

Installed as the ``repro-bench`` console script by ``setup.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.harness import EXPERIMENTS, SCALES, run_experiment

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's evaluation figures on the simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        choices=list(SCALES),
        default="quick",
        help=(
            "smoke = CI-sized run (seconds); quick = reduced parameters; "
            "paper = the paper's parameters (minutes)"
        ),
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="also dump the raw result dictionaries to this JSON file",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    results = {}
    for name in names:
        result = run_experiment(name, scale=args.scale)
        results[name] = result
        print(result["report"])
        print()
    if args.json is not None:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True, default=str) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
