"""Command-line entry point for the benchmark harness.

Examples::

    python -m repro.bench figure3                # reduced scale (quick)
    python -m repro.bench figure7 --scale paper  # paper-scale parameters
    python -m repro.bench all                    # every figure, reduced scale
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.bench.ablations import run_merge_granularity_ablation, run_rate_leveling_ablation
from repro.bench.figure3 import run_figure3
from repro.bench.figure4 import run_figure4
from repro.bench.figure5 import run_figure5
from repro.bench.figure6 import run_figure6
from repro.bench.figure7 import run_figure7
from repro.bench.figure8 import run_figure8

__all__ = ["main"]


def _figure3(scale: str) -> Dict:
    if scale == "paper":
        return run_figure3(duration=30.0)
    return run_figure3(value_sizes=(512, 8192, 32768), duration=5.0)


def _figure4(scale: str) -> Dict:
    if scale == "paper":
        return run_figure4(record_count=100000, client_threads=100, duration=30.0)
    return run_figure4(record_count=3000, client_threads=32, client_machines=2, duration=5.0)


def _figure5(scale: str) -> Dict:
    if scale == "paper":
        return run_figure5(duration=20.0)
    return run_figure5(client_counts=(1, 50, 200), duration=5.0)


def _figure6(scale: str) -> Dict:
    if scale == "paper":
        return run_figure6(duration=20.0, clients_per_ring=40)
    return run_figure6(ring_counts=(1, 2, 3), duration=5.0, clients_per_ring=10)


def _figure7(scale: str) -> Dict:
    if scale == "paper":
        return run_figure7(duration=60.0, clients_per_region=40)
    return run_figure7(region_counts=(1, 2, 4), duration=10.0, clients_per_region=10)


def _figure8(scale: str) -> Dict:
    if scale == "paper":
        return run_figure8(duration=300.0)
    return run_figure8(
        duration=60.0,
        crash_at=10.0,
        recover_at=40.0,
        checkpoint_interval=8.0,
        trim_interval=15.0,
        client_threads=8,
        record_count=500,
    )


def _ablations(scale: str) -> Dict:
    leveling = run_rate_leveling_ablation(duration=5.0 if scale != "paper" else 20.0)
    granularity = run_merge_granularity_ablation(duration=5.0 if scale != "paper" else 20.0)
    return {
        "experiment": "ablations",
        "rate_leveling": leveling,
        "merge_granularity": granularity,
        "report": leveling["report"] + "\n\n" + granularity["report"],
    }


_RUNNERS: Dict[str, Callable[[str], Dict]] = {
    "figure3": _figure3,
    "figure4": _figure4,
    "figure5": _figure5,
    "figure6": _figure6,
    "figure7": _figure7,
    "figure8": _figure8,
    "ablations": _ablations,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's evaluation figures on the simulator.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(_RUNNERS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "paper"],
        default="quick",
        help="quick = reduced parameters (seconds); paper = the paper's parameters (minutes)",
    )
    args = parser.parse_args(argv)

    names = sorted(_RUNNERS) if args.figure == "all" else [args.figure]
    for name in names:
        result = _RUNNERS[name](args.scale)
        print(result["report"])
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
