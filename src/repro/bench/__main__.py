"""Command-line entry point for the benchmark harness.

Examples::

    python -m repro.bench figure3                 # reduced scale (quick)
    python -m repro.bench figure7 --scale paper   # paper-scale parameters
    python -m repro.bench reconfig --scale smoke  # live scale-out, tiny run
    python -m repro.bench all                     # every experiment, quick

Installed as the ``repro-bench`` console script by ``setup.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.harness import EXPERIMENTS, SCALES, run_experiment

__all__ = ["main"]

#: Hotspots printed by ``--cprofile``.
PROFILE_TOP_N = 25


def _run_profiled(name: str, scale: str):
    """Run one experiment under cProfile, printing the top cumulative hotspots.

    This is the profiling entry point the performance guide in
    CONTRIBUTING.md points at: when the perf gate regresses, rerun the
    offending experiment with ``--cprofile`` and compare the table against a
    good commit.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = run_experiment(name, scale=scale)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        print(f"--- cProfile: top {PROFILE_TOP_N} by cumulative time ({name}, {scale}) ---")
        stats.print_stats(PROFILE_TOP_N)
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's evaluation figures on the simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        choices=list(SCALES),
        default="quick",
        help=(
            "smoke = CI-sized run (seconds); quick = reduced parameters; "
            "paper = the paper's parameters (minutes)"
        ),
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="also dump the raw result dictionaries to this JSON file",
    )
    parser.add_argument(
        "--skip",
        action="append",
        choices=sorted(EXPERIMENTS),
        default=None,
        metavar="EXPERIMENT",
        help="with 'all': leave this experiment out (repeatable)",
    )
    parser.add_argument(
        "--cprofile",
        action="store_true",
        help=(
            f"run under cProfile and dump the top {PROFILE_TOP_N} cumulative "
            "hotspots per experiment (see CONTRIBUTING.md, 'Profiling')"
        ),
    )
    # Convenience aliases so CI recipes read naturally
    # (``python -m repro.bench chaos --quick``).
    alias_group = parser.add_mutually_exclusive_group()
    for alias in SCALES:
        alias_group.add_argument(
            f"--{alias}",
            action="store_const",
            const=alias,
            dest="scale_alias",
            help=f"alias for --scale {alias}",
        )
    args = parser.parse_args(argv)
    scale = args.scale_alias or args.scale

    if args.skip and args.experiment != "all":
        parser.error("--skip only applies to 'all'")
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.skip:
        names = [name for name in names if name not in set(args.skip)]
        if not names:
            parser.error("--skip left nothing to run")
    results = {}
    failed = False
    for name in names:
        if args.cprofile:
            result = _run_profiled(name, scale)
        else:
            result = run_experiment(name, scale=scale)
        results[name] = result
        print(result["report"])
        print()
        # Experiments with a pass/fail verdict (the chaos campaign's
        # invariant checks) gate the exit code so CI lanes can fail on them.
        if result.get("passed") is False:
            failed = True
    if args.json is not None:
        args.json.write_text(json.dumps(results, indent=2, sort_keys=True, default=str) + "\n")
        print(f"wrote {args.json}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
