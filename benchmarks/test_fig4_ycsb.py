"""Figure 4: MRP-Store vs Cassandra-like vs MySQL-like under YCSB."""

from repro.bench.figure4 import run_figure4


def test_fig4_ycsb(benchmark, repro_scale):
    if repro_scale == "paper":
        kwargs = dict(record_count=100000, client_threads=100, duration=30.0)
    elif repro_scale == "quick":
        kwargs = dict(record_count=3000, client_threads=32, client_machines=2, duration=5.0)
    else:
        kwargs = dict(
            workloads=("A", "B", "E"),
            record_count=500,
            client_threads=12,
            client_machines=1,
            duration=2.0,
        )

    result = benchmark.pedantic(run_figure4, kwargs=kwargs, rounds=1, iterations=1)
    throughput = result["throughput_ops"]
    workloads = result["workloads"]

    # Every system serves every workload.
    for system in result["systems"]:
        for workload in workloads:
            assert throughput[system][workload] > 0

    # Cassandra (no ordering) beats MRP-Store on the update-heavy workload A...
    assert throughput["cassandra"]["A"] > throughput["mrp-store"]["A"]
    # ...but its advantage collapses on the scan-dominated workload E
    # (paper, Section 8.3.2: workload E is the one case Cassandra loses).
    if "E" in workloads:
        cassandra_ratio = throughput["cassandra"]["E"] / throughput["cassandra"]["A"]
        mrp_ratio = throughput["mrp-store"]["E"] / throughput["mrp-store"]["A"]
        assert mrp_ratio > cassandra_ratio
    # Ordering within partitions only (independent rings) is at least as fast
    # as ordering within and across the whole system.
    assert throughput["mrp-store-indep"]["A"] >= 0.8 * throughput["mrp-store"]["A"]
