"""Shared configuration for the pytest-benchmark suite.

Each benchmark wraps one experiment of the paper's evaluation section at a
reduced ("smoke") scale so the whole suite completes in minutes.  The wrapped
callable runs a complete simulation; pytest-benchmark therefore measures the
wall-clock cost of regenerating the figure, while the assertions check that
the *shape* of the result matches the paper (who wins, how scaling behaves).
Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="smoke",
        choices=["smoke", "quick", "paper"],
        help="scale of the reproduced experiments (default: smoke)",
    )


@pytest.fixture(scope="session")
def repro_scale(request):
    return request.config.getoption("--repro-scale")
