"""Ablations: rate leveling and deterministic-merge granularity."""

from repro.bench.ablations import run_merge_granularity_ablation, run_rate_leveling_ablation


def test_ablation_rate_leveling(benchmark, repro_scale):
    duration = {"smoke": 2.0, "quick": 5.0, "paper": 20.0}[repro_scale]
    result = benchmark.pedantic(
        run_rate_leveling_ablation, kwargs=dict(duration=duration), rounds=1, iterations=1
    )
    with_leveling = result["with_leveling"]
    without_leveling = result["without_leveling"]
    # Without rate leveling the busy ring is throttled by the idle ring it
    # shares learners with; with it, throughput is at least an order of
    # magnitude higher.
    assert with_leveling["throughput_ops"] > 10 * max(1.0, without_leveling["throughput_ops"])


def test_ablation_merge_granularity(benchmark, repro_scale):
    duration = {"smoke": 2.0, "quick": 5.0, "paper": 20.0}[repro_scale]
    result = benchmark.pedantic(
        run_merge_granularity_ablation,
        kwargs=dict(m_values=(1, 8), duration=duration),
        rounds=1,
        iterations=1,
    )
    results = result["results"]
    # Every configuration delivers; the sweep documents the trade-off rather
    # than asserting a winner.
    assert all(cell["throughput_ops"] > 0 for cell in results.values())
