"""Figure 5: dLog vs a Bookkeeper-like ensemble log (1 KB appends, sync disk)."""

from repro.bench.figure5 import run_figure5


def test_fig5_dlog_vs_bookkeeper(benchmark, repro_scale):
    if repro_scale == "paper":
        kwargs = dict(duration=20.0)
    elif repro_scale == "quick":
        kwargs = dict(client_counts=(1, 50, 200), duration=5.0)
    else:
        kwargs = dict(client_counts=(1, 50), duration=2.0)

    result = benchmark.pedantic(run_figure5, kwargs=kwargs, rounds=1, iterations=1)
    counts = result["client_counts"]
    dlog = result["results"]["dlog"]
    bookkeeper = result["results"]["bookkeeper"]

    most_loaded = counts[-1]
    # The paper's headline: dLog consistently outperforms Bookkeeper in both
    # throughput and latency.
    assert dlog[most_loaded]["throughput_ops"] > bookkeeper[most_loaded]["throughput_ops"]
    assert dlog[most_loaded]["latency_ms"] < bookkeeper[most_loaded]["latency_ms"]
    # Throughput grows with the number of client threads for dLog.
    assert dlog[most_loaded]["throughput_ops"] > dlog[counts[0]]["throughput_ops"]
