"""Figure 8: impact of recovery (replica crash, checkpointing, trimming, restart)."""

from repro.bench.figure8 import run_figure8


def test_fig8_recovery(benchmark, repro_scale):
    if repro_scale == "paper":
        kwargs = dict(duration=300.0)
    elif repro_scale == "quick":
        kwargs = dict(
            duration=60.0,
            crash_at=10.0,
            recover_at=40.0,
            checkpoint_interval=8.0,
            trim_interval=15.0,
            client_threads=8,
            record_count=500,
        )
    else:
        kwargs = dict(
            duration=30.0,
            crash_at=5.0,
            recover_at=20.0,
            checkpoint_interval=4.0,
            trim_interval=8.0,
            client_threads=4,
            record_count=200,
        )

    result = benchmark.pedantic(run_figure8, kwargs=kwargs, rounds=1, iterations=1)
    events = result["events"]
    phases = result["phases"]

    # The whole recovery machinery actually ran.
    assert events["checkpoints durable"] > 0
    assert events["acceptor instances trimmed"] > 0
    assert events["recoveries completed"] == 1
    assert events["commands executed by recovered replica"] > 0

    # The service keeps running throughout: the replica failure causes at most
    # a modest dip, not an outage (paper: "a short reduction in performance").
    assert phases["throughput while replica down (ops/s)"] > 0.5 * phases["throughput before crash (ops/s)"]
    assert phases["throughput after recovery (ops/s)"] > 0.5 * phases["throughput before crash (ops/s)"]
