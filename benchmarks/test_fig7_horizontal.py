"""Figure 7: horizontal scalability of MRP-Store across EC2-like regions."""

from repro.bench.figure7 import run_figure7


def test_fig7_horizontal_scalability(benchmark, repro_scale):
    if repro_scale == "paper":
        kwargs = dict(duration=60.0, clients_per_region=40)
    elif repro_scale == "quick":
        kwargs = dict(region_counts=(1, 2, 4), duration=10.0, clients_per_region=10)
    else:
        kwargs = dict(region_counts=(1, 2), duration=5.0, clients_per_region=6, record_count=600)

    result = benchmark.pedantic(run_figure7, kwargs=kwargs, rounds=1, iterations=1)
    counts = result["region_counts"]
    results = result["results"]

    first, last = counts[0], counts[-1]
    # Throughput increases as new regions (partitions/rings) are added...
    assert results[last]["aggregate_ops"] > results[first]["aggregate_ops"] * 1.3
    # ...and every region keeps serving its local clients.
    assert all(ops > 0 for ops in results[last]["per_region_ops"].values())
    # Latency stays roughly constant with the number of regions (within 3x).
    assert results[last]["latency_ms"] < results[first]["latency_ms"] * 3 + 50.0
