"""Figure 6: vertical scalability of dLog (rings/disks 1..5)."""

from repro.bench.figure6 import run_figure6


def test_fig6_vertical_scalability(benchmark, repro_scale):
    if repro_scale == "paper":
        kwargs = dict(duration=20.0, clients_per_ring=40)
    elif repro_scale == "quick":
        kwargs = dict(ring_counts=(1, 2, 3), duration=5.0, clients_per_ring=10)
    else:
        kwargs = dict(ring_counts=(1, 2, 4), duration=2.0, clients_per_ring=8)

    result = benchmark.pedantic(run_figure6, kwargs=kwargs, rounds=1, iterations=1)
    counts = result["ring_counts"]
    results = result["results"]

    # Aggregate throughput grows close to linearly as rings (and disks) are added.
    first, last = counts[0], counts[-1]
    assert results[last]["aggregate_ops"] > results[first]["aggregate_ops"] * (last / first) * 0.6
    # Every ring contributes throughput.
    assert all(ops > 0 for ops in results[last]["per_ring_ops"].values())
    # The per-ring (disk 1) latency stays in the same order of magnitude.
    assert results[last]["latency_disk1_ms"] < results[first]["latency_disk1_ms"] * 10
