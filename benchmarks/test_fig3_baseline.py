"""Figure 3: Multi-Ring Paxos baseline (storage modes x request sizes)."""

from repro.bench.figure3 import run_figure3
from repro.sim.disk import StorageMode


def test_fig3_baseline(benchmark, repro_scale):
    if repro_scale == "paper":
        kwargs = dict(duration=30.0)
    elif repro_scale == "quick":
        kwargs = dict(value_sizes=(512, 8192, 32768), duration=5.0)
    else:
        kwargs = dict(
            value_sizes=(512, 32768),
            storage_modes=(StorageMode.SYNC_HDD, StorageMode.ASYNC_SSD, StorageMode.MEMORY),
            duration=1.5,
        )

    result = benchmark.pedantic(run_figure3, kwargs=kwargs, rounds=1, iterations=1)
    cells = result["cells"]
    small, large = result["value_sizes"][0], result["value_sizes"][-1]

    for mode in result["storage_modes"]:
        # Throughput (Mbps) grows with the request size (paper, Figure 3 top-left).
        assert cells[mode][large]["throughput_mbps"] > cells[mode][small]["throughput_mbps"]

    memory = StorageMode.MEMORY.value
    sync_hdd = StorageMode.SYNC_HDD.value
    # In-memory storage is the fastest mode and synchronous hard-disk writes the slowest.
    assert cells[memory][large]["throughput_mbps"] > cells[sync_hdd][large]["throughput_mbps"]
    assert cells[sync_hdd][large]["latency_ms"] > cells[memory][large]["latency_ms"]
    # The coordinator's CPU is the in-memory bottleneck at small request sizes.
    assert cells[memory][small]["coordinator_cpu_percent"] > 50.0
