"""Setuptools packaging.

All metadata lives here (not in a ``pyproject.toml``) because the
reproduction environment is offline: pip's PEP 517 build isolation would try
to download setuptools/wheel and fail, whereas the legacy ``setup.py`` path
installs with whatever is already on the machine.  The ``pytest.ini`` at the
repository root carries the test configuration.
"""

from setuptools import find_packages, setup

setup(
    name="mrp-repro",
    version="0.3.0",
    description=(
        "Reproduction of 'Building global and scalable systems with atomic "
        "multicast' (Middleware 2014): deterministic simulator + live asyncio/TCP runtime"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # The slotted-dataclass fast paths and the CI matrix (3.11/3.12) already
    # assume modern CPython; 3.11 is the tested floor.
    python_requires=">=3.11",
    entry_points={
        "console_scripts": [
            "repro-bench=repro.bench.__main__:main",
            "repro-live=repro.live.__main__:main",
        ]
    },
)
