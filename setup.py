"""Setuptools packaging.

All metadata lives here (not in a ``pyproject.toml``) because the
reproduction environment is offline: pip's PEP 517 build isolation would try
to download setuptools/wheel and fail, whereas the legacy ``setup.py`` path
installs with whatever is already on the machine.  The ``pytest.ini`` at the
repository root carries the test configuration.
"""

from setuptools import find_packages, setup

setup(
    name="mrp-repro",
    version="0.2.0",
    description=(
        "Reproduction of 'Building global and scalable systems with atomic "
        "multicast' (Middleware 2014) on a deterministic simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-bench=repro.bench.__main__:main",
        ]
    },
)
