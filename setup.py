"""Setuptools shim.

Packaging metadata lives in ``setup.cfg``.  The project deliberately ships no
``pyproject.toml`` because the reproduction environment is offline: pip's
PEP 517 build isolation would try to download setuptools/wheel and fail,
whereas the legacy ``setup.py``/``setup.cfg`` path installs with whatever is
already on the machine.
"""

from setuptools import setup

setup()
