"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import MultiRingConfig
from repro.multiring.deployment import Deployment, RingSpec
from repro.sim.topology import lan_topology
from repro.sim.world import World


@pytest.fixture
def world() -> World:
    """A fresh LAN world with a fixed seed."""
    return World(topology=lan_topology(), seed=123, timeline_window=0.5)


@pytest.fixture
def wan_world() -> World:
    from repro.sim.topology import wan_topology

    return World(topology=wan_topology(), seed=123, default_site="eu-west-1")


def build_two_ring_deployment(world: World, config: MultiRingConfig | None = None) -> Deployment:
    """The Figure 2(c) deployment: two rings, L1/L2 on both, L3 on ring-2 only."""
    deployment = Deployment(world, config or MultiRingConfig.datacenter())
    deployment.add_ring(
        RingSpec(
            group="ring-1",
            members=["a1", "a2", "a3", "L1", "L2"],
            acceptors=["a1", "a2", "a3"],
            proposers=["a1", "a2", "a3"],
            learners=["L1", "L2"],
        )
    )
    deployment.add_ring(
        RingSpec(
            group="ring-2",
            members=["b1", "b2", "b3", "L1", "L2", "L3"],
            acceptors=["b1", "b2", "b3"],
            proposers=["b1", "b2", "b3"],
            learners=["L1", "L2", "L3"],
        )
    )
    return deployment


def collect_deliveries(deployment: Deployment, learners) -> dict:
    """Attach delivery recorders to the given learner nodes."""
    deliveries = {name: [] for name in learners}
    for name in learners:
        deployment.node(name).on_deliver(
            lambda d, name=name: deliveries[name].append((d.group, d.instance, d.value.payload))
        )
    return deliveries
