"""Tests for the baseline systems and the workload generators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.ensemble_log import EnsembleLog
from repro.baselines.eventual_store import EventualStore
from repro.baselines.single_server import SingleServerStore
from repro.errors import WorkloadError
from repro.sim.world import World
from repro.smr.client import ClosedLoopClient
from repro.workloads.distributions import (
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
)
from repro.workloads.simple import AppendWorkload, MixedOperationWorkload, UpdateWorkload
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBConfig, YCSBWorkload


class TestDistributions:
    def test_uniform_stays_in_range(self):
        chooser = UniformChooser(100)
        rng = random.Random(1)
        assert all(0 <= chooser.next_index(rng) < 100 for _ in range(500))

    def test_zipfian_is_skewed_towards_small_indices(self):
        chooser = ZipfianChooser(1000)
        rng = random.Random(1)
        samples = [chooser.next_index(rng) for _ in range(2000)]
        assert all(0 <= index < 1000 for index in samples)
        top_ten_share = sum(1 for index in samples if index < 10) / len(samples)
        assert top_ten_share > 0.3  # heavily skewed

    def test_latest_is_skewed_towards_recent_indices(self):
        chooser = LatestChooser(1000)
        rng = random.Random(1)
        samples = [chooser.next_index(rng) for _ in range(2000)]
        recent_share = sum(1 for index in samples if index >= 990) / len(samples)
        assert recent_share > 0.3

    def test_scrambled_zipfian_spreads_hot_keys(self):
        chooser = ScrambledZipfianChooser(1000)
        rng = random.Random(1)
        samples = [chooser.next_index(rng) for _ in range(2000)]
        assert all(0 <= index < 1000 for index in samples)
        assert len(set(samples)) > 50

    def test_grow_extends_the_range(self):
        chooser = ZipfianChooser(10)
        chooser.grow(100)
        assert chooser.count == 100
        uniform = UniformChooser(10)
        uniform.grow(5)
        assert uniform.count == 10

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            UniformChooser(0)
        with pytest.raises(ValueError):
            ZipfianChooser(0)


class _FakeKV:
    """Records which client-library method the YCSB generator called."""

    def __init__(self):
        self.calls = []

    def key(self, index):
        return f"user{index:012d}"

    def _request(self, op, *args, series=None):
        from repro.smr.client import Request

        self.calls.append(op)
        return Request((op,) + args, 64, "g", 1, series)

    def read(self, key, series=None):
        return self._request("read", key, series=series)

    def update(self, key, size, series=None):
        return self._request("update", key, size, series=series)

    def insert(self, key, size, series=None):
        return self._request("insert", key, size, series=series)

    def scan(self, start, end, series=None):
        return self._request("scan", start, end, series=series)

    def read_modify_write(self, key, size, series=None):
        return self._request("rmw", key, size, series=series)


class TestYCSB:
    def test_all_six_workloads_are_defined_with_valid_mixes(self):
        assert set(YCSB_WORKLOADS) == {"A", "B", "C", "D", "E", "F"}

    def test_invalid_mix_rejected(self):
        with pytest.raises(WorkloadError):
            YCSBConfig("bad", read_proportion=0.5)
        with pytest.raises(WorkloadError):
            YCSBConfig("bad", read_proportion=1.0, request_distribution="nope")

    def test_workload_c_is_read_only(self):
        service = _FakeKV()
        workload = YCSBWorkload(service, YCSB_WORKLOADS["C"].scaled(100))
        rng = random.Random(0)
        for _ in range(200):
            workload.next_request(rng)
        assert set(service.calls) == {"read"}

    def test_workload_a_mix_is_roughly_half_updates(self):
        service = _FakeKV()
        workload = YCSBWorkload(service, YCSB_WORKLOADS["A"].scaled(100))
        rng = random.Random(0)
        for _ in range(1000):
            workload.next_request(rng)
        update_share = service.calls.count("update") / len(service.calls)
        assert 0.4 < update_share < 0.6

    def test_workload_e_is_scan_heavy(self):
        service = _FakeKV()
        workload = YCSBWorkload(service, YCSB_WORKLOADS["E"].scaled(100))
        rng = random.Random(0)
        for _ in range(400):
            workload.next_request(rng)
        assert service.calls.count("scan") / len(service.calls) > 0.85
        assert "insert" in service.calls

    def test_workload_f_contains_rmw(self):
        service = _FakeKV()
        workload = YCSBWorkload(service, YCSB_WORKLOADS["F"].scaled(100))
        rng = random.Random(0)
        for _ in range(400):
            workload.next_request(rng)
        assert service.calls.count("rmw") > 100

    def test_inserts_grow_the_key_space(self):
        service = _FakeKV()
        workload = YCSBWorkload(service, YCSB_WORKLOADS["D"].scaled(50))
        rng = random.Random(0)
        for _ in range(500):
            workload.next_request(rng)
        assert workload._insert_cursor > 50

    def test_split_series_by_operation(self):
        service = _FakeKV()
        workload = YCSBWorkload(service, YCSB_WORKLOADS["F"].scaled(50), series="f")
        workload.split_series_by_operation = True
        rng = random.Random(0)
        series = {workload.next_request(rng).series for _ in range(100)}
        assert series <= {"f/read", "f/update", "f/read-modify-write"}
        assert len(series) >= 2

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_requests_always_reference_existing_or_new_keys(self, seed):
        service = _FakeKV()
        workload = YCSBWorkload(service, YCSB_WORKLOADS["D"].scaled(20))
        rng = random.Random(seed)
        for _ in range(50):
            request = workload.next_request(rng)
            assert request.size_bytes > 0
            assert request.expected_responses >= 1


class TestSimpleWorkloads:
    def test_append_workload_round_robins_over_logs(self):
        class _FakeDLog:
            def __init__(self):
                self.calls = []

            def append(self, log, size, series=None):
                from repro.smr.client import Request

                self.calls.append(log)
                return Request(("append", log, size), size, f"ring-{log}", 1, series)

            def multi_append(self, logs, size, series=None):
                from repro.smr.client import Request

                self.calls.append(tuple(logs))
                return Request(("multi-append", tuple(logs), size), size, "global", 1, series)

        dlog = _FakeDLog()
        workload = AppendWorkload(dlog, logs=["a", "b"], append_size=10)
        rng = random.Random(0)
        for _ in range(4):
            workload.next_request(rng)
        assert dlog.calls == ["a", "b", "a", "b"]

    def test_empty_workloads_rejected(self):
        with pytest.raises(WorkloadError):
            AppendWorkload(None, logs=[])
        with pytest.raises(WorkloadError):
            UpdateWorkload(None, key_indices=[])
        with pytest.raises(WorkloadError):
            MixedOperationWorkload([])

    def test_mixed_workload_respects_weights(self):
        from repro.smr.client import Request

        counts = {"a": 0, "b": 0}

        def make(name):
            def factory(rng):
                counts[name] += 1
                return Request((name,), 10, "g", 1, None)

            return factory

        workload = MixedOperationWorkload([(0.9, make("a")), (0.1, make("b"))])
        rng = random.Random(0)
        for _ in range(500):
            workload.next_request(rng)
        assert counts["a"] > counts["b"] * 4


class TestBaselines:
    def test_eventual_store_serves_ycsb_and_replicates_asynchronously(self, world):
        store = EventualStore(world, partitions=2, replication_factor=2)
        store.load(50, value_size=100)
        workload = YCSBWorkload(store, YCSB_WORKLOADS["A"].scaled(50), series="cass")
        client = ClosedLoopClient(
            world, "client", workload, store.frontends_for_client(0), threads=4, series="cass"
        )
        world.run(until=3.0)
        assert client.completed > 100
        # Asynchronous replication eventually applies writes on the peer replica.
        any_partition = store.replicas["c0"]
        assert any_partition[1].state.operations > 0

    def test_eventual_store_scan_fans_out_to_all_partitions(self, world):
        store = EventualStore(world, partitions=3, replication_factor=1)
        store.load(30, value_size=50)
        workload_calls = [store.scan(store.key(0), store.key(29), series="scan")]

        class _One:
            def next_request(self, rng):
                return workload_calls[0]

        client = ClosedLoopClient(
            world, "client", _One(), store.frontends_for_client(0), threads=1, series="scan"
        )
        world.run(until=2.0)
        assert client.completed >= 1

    def test_single_server_store_processes_all_operation_types(self, world):
        store = SingleServerStore(world)
        store.load(20, value_size=100)
        workload = YCSBWorkload(store, YCSB_WORKLOADS["F"].scaled(20), series="sql")
        client = ClosedLoopClient(
            world, "client", workload, store.frontends_for_client(0), threads=4, series="sql"
        )
        world.run(until=3.0)
        assert client.completed > 20
        # Every completed request was processed by the single server; a few
        # requests may still be in flight when the run stops.
        assert store.server.commands >= client.completed
        assert client.issued - store.server.commands <= 4

    def test_single_server_writes_are_slower_than_reads(self, world):
        store = SingleServerStore(world)
        store.load(10, value_size=100)

        class _Reads:
            def next_request(self, rng):
                return store.read(store.key(0), series="reads")

        class _Writes:
            def next_request(self, rng):
                return store.update(store.key(0), 100, series="writes")

        ClosedLoopClient(world, "r", _Reads(), store.frontends_for_client(), threads=1, series="reads")
        ClosedLoopClient(world, "w", _Writes(), store.frontends_for_client(), threads=1, series="writes")
        world.run(until=2.0)
        reads = world.monitor.latency_stats("reads").mean
        writes = world.monitor.latency_stats("writes").mean
        assert writes > reads

    def test_ensemble_log_appends_complete_after_quorum_ack(self, world):
        bookkeeper = EnsembleLog(world, bookies=3, ack_quorum=2, flush_interval=0.02)

        class _Appends:
            def next_request(self, rng):
                return bookkeeper.append("ledger", 1024, series="bk")

        client = ClosedLoopClient(
            world, "client", _Appends(), bookkeeper.frontends_for_client(0), threads=8, series="bk"
        )
        world.run(until=3.0)
        assert client.completed > 10
        assert bookkeeper.gateway.appends_completed == client.completed
        # Batching adds latency: appends should take at least a flush interval.
        assert world.monitor.latency_stats("bk").mean >= 0.01

    def test_ensemble_log_rejects_impossible_quorum(self, world):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            EnsembleLog(world, bookies=2, ack_quorum=3)
