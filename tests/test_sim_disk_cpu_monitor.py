"""Tests for the storage/CPU models and the measurement infrastructure."""

import pytest

from repro.runtime.cpu import CPU, CPUConfig
from repro.sim.disk import (
    Disk,
    DiskConfig,
    HDD_CONFIG,
    SSD_CONFIG,
    StorageMode,
    disk_for_mode,
)
from repro.sim.engine import Simulator
from repro.obs.stats import LatencyStats, ThroughputTimeline, percentile
from repro.sim.monitor import Monitor


class TestDisk:
    def test_sync_write_takes_at_least_op_latency(self):
        sim = Simulator()
        disk = Disk(sim, HDD_CONFIG)
        done = disk.write(1024)
        assert done >= HDD_CONFIG.op_latency

    def test_ssd_sync_write_faster_than_hdd(self):
        sim = Simulator()
        hdd_done = Disk(sim, HDD_CONFIG).write(4096)
        ssd_done = Disk(sim, SSD_CONFIG).write(4096)
        assert ssd_done < hdd_done

    def test_writes_serialize_on_the_device(self):
        sim = Simulator()
        disk = Disk(sim, SSD_CONFIG)
        first = disk.write(1024)
        second = disk.write(1024)
        assert second >= first + SSD_CONFIG.op_latency

    def test_async_write_accepts_immediately_when_buffer_has_room(self):
        sim = Simulator()
        disk = Disk(sim, HDD_CONFIG)
        accept = disk.write_async(1024)
        assert accept == sim.now

    def test_async_write_applies_backpressure_when_buffer_full(self):
        sim = Simulator()
        config = DiskConfig(
            op_latency=1e-3,
            bandwidth_bytes_per_sec=1e6,
            async_op_latency=1e-6,
            writeback_buffer_bytes=10_000,
        )
        disk = Disk(sim, config)
        disk.write_async(9_000)
        accept = disk.write_async(9_000)
        assert accept > sim.now

    def test_async_callback_fires(self):
        sim = Simulator()
        disk = Disk(sim, SSD_CONFIG)
        fired = []
        disk.write_async(100, lambda: fired.append(sim.now))
        sim.run()
        assert fired

    def test_sync_callback_fires_at_durability_time(self):
        sim = Simulator()
        disk = Disk(sim, SSD_CONFIG)
        fired = []
        done = disk.write(100, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [done]

    def test_writeback_queue_drains(self):
        sim = Simulator()
        disk = Disk(sim, SSD_CONFIG)
        disk.write_async(5000)
        assert disk.queue_depth_bytes == 5000
        sim.run()
        assert disk.queue_depth_bytes == 0

    def test_utilization_bounded_by_one(self):
        sim = Simulator()
        disk = Disk(sim, HDD_CONFIG)
        for _ in range(100):
            disk.write(1024)
        assert disk.utilization(0.0, 0.001) == 1.0

    def test_negative_write_rejected(self):
        from repro.errors import StorageError

        sim = Simulator()
        disk = Disk(sim, HDD_CONFIG)
        with pytest.raises(StorageError):
            disk.write(-1)

    def test_disk_for_mode(self):
        sim = Simulator()
        assert disk_for_mode(sim, StorageMode.MEMORY) is None
        assert disk_for_mode(sim, StorageMode.SYNC_HDD).config.name == "hdd"
        assert disk_for_mode(sim, StorageMode.ASYNC_SSD).config.name == "ssd"

    def test_storage_mode_properties(self):
        assert StorageMode.SYNC_HDD.synchronous
        assert not StorageMode.ASYNC_SSD.synchronous
        assert not StorageMode.MEMORY.durable
        assert StorageMode.SYNC_SSD.durable
        assert StorageMode.MEMORY.label == "In Memory"


class TestCPU:
    def test_cost_scales_with_bytes(self):
        cpu = CPU(Simulator(), CPUConfig(per_message_cost=1e-6, per_byte_cost=1e-9))
        assert cpu.cost(nbytes=1000) > cpu.cost(nbytes=10)

    def test_overhead_factor_multiplies_cost(self):
        base = CPU(Simulator(), CPUConfig(overhead_factor=1.0)).cost(nbytes=1000)
        doubled = CPU(Simulator(), CPUConfig(overhead_factor=2.0)).cost(nbytes=1000)
        assert doubled == pytest.approx(2 * base)

    def test_execute_serializes_work(self):
        sim = Simulator()
        cpu = CPU(sim)
        first = cpu.execute(1e-3)
        second = cpu.execute(1e-3)
        assert second == pytest.approx(first + 1e-3)

    def test_utilization_reflects_busy_time(self):
        sim = Simulator()
        cpu = CPU(sim)
        cpu.execute(0.5)
        assert cpu.utilization(0.0, 1.0) == pytest.approx(0.5)
        assert cpu.utilization_percent(0.0, 1.0) == pytest.approx(50.0)

    def test_utilization_clamped_to_100_percent(self):
        sim = Simulator()
        cpu = CPU(sim)
        cpu.execute(10.0)
        assert cpu.utilization(0.0, 1.0) == 1.0

    def test_negative_work_treated_as_zero(self):
        sim = Simulator()
        cpu = CPU(sim)
        assert cpu.execute(-1.0) == sim.now


class TestLatencyStats:
    def test_empty_samples(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_basic_statistics(self):
        stats = LatencyStats.from_samples([0.001, 0.002, 0.003, 0.004])
        assert stats.count == 4
        assert stats.mean == pytest.approx(0.0025)
        assert stats.minimum == 0.001
        assert stats.maximum == 0.004
        assert stats.p50 == pytest.approx(0.0025)

    def test_percentile_interpolation(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0
        assert percentile([1.0, 3.0], 0.5) == 2.0
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0

    def test_as_millis(self):
        stats = LatencyStats.from_samples([0.010])
        assert stats.as_millis()["mean_ms"] == pytest.approx(10.0)


class TestThroughputTimeline:
    def test_bucketing(self):
        timeline = ThroughputTimeline(window=1.0)
        timeline.record(0.5, 100)
        timeline.record(0.7, 100)
        timeline.record(2.3, 100)
        buckets = timeline.buckets()
        assert buckets[0] == (0.0, 2, 200)
        assert buckets[1] == (1.0, 0, 0)
        assert buckets[2] == (2.0, 1, 100)

    def test_total_counters(self):
        timeline = ThroughputTimeline(window=0.5)
        for t in (0.1, 0.2, 0.9):
            timeline.record(t, 10)
        assert timeline.total_ops() == 3
        assert timeline.total_bytes() == 30

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ThroughputTimeline(window=0.0)


class TestMonitor:
    def test_throughput_over_window(self):
        monitor = Monitor(timeline_window=1.0)
        for second in range(10):
            for _ in range(5):
                monitor.record_operation("s", completion_time=second + 0.5, latency=0.001)
        assert monitor.throughput_ops("s") == pytest.approx(5.0)
        assert monitor.throughput_ops("s", start=2.0, end=4.0) == pytest.approx(5.0)

    def test_throughput_mbps(self):
        monitor = Monitor(timeline_window=1.0)
        monitor.record_operation("s", 0.5, 0.001, size_bytes=125_000)  # 1 Mbit
        assert monitor.throughput_mbps("s", start=0.0, end=1.0) == pytest.approx(1.0)

    def test_latency_cdf_monotonic(self):
        monitor = Monitor()
        for value in [0.001, 0.005, 0.002, 0.010]:
            monitor.record_operation("s", 0.1, value)
        cdf = monitor.latency_cdf("s", points=10)
        latencies = [point[0] for point in cdf]
        assert latencies == sorted(latencies)
        assert cdf[-1][1] == 1.0

    def test_fraction_below(self):
        monitor = Monitor()
        for value in [0.001, 0.002, 0.100]:
            monitor.record_operation("s", 0.1, value)
        assert monitor.fraction_below(0.010, "s") == pytest.approx(2 / 3)

    def test_counters_and_gauges(self):
        monitor = Monitor()
        monitor.increment("skips", 3)
        monitor.increment("skips")
        monitor.record_gauge("cpu", 1.0, 50.0)
        monitor.record_gauge("cpu", 2.0, 100.0)
        assert monitor.counter("skips") == 4
        assert monitor.counter("missing") == 0
        assert monitor.gauge_mean("cpu") == pytest.approx(75.0)
        assert monitor.gauge_series("cpu") == [(1.0, 50.0), (2.0, 100.0)]

    def test_series_are_separate(self):
        monitor = Monitor()
        monitor.record_operation("a", 0.1, 0.001)
        monitor.record_operation("b", 0.1, 0.100)
        assert monitor.latency_stats("a").mean == pytest.approx(0.001)
        assert monitor.latency_stats("b").mean == pytest.approx(0.100)
        assert monitor.latency_stats().count == 2

    def test_empty_throughput_is_zero(self):
        assert Monitor().throughput_ops("nothing") == 0.0
