"""The bench analytics layer: summaries, SLOs, tolerant readers, the CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench.analytics import (
    SLOTarget,
    analytics_of,
    compare_runs,
    evaluate_slo,
    extract_series,
    latency_summary,
    main,
    make_analytics,
)


# ----------------------------------------------------------------------
# summaries and SLOs
# ----------------------------------------------------------------------
def test_latency_summary_percentiles():
    samples = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms
    summary = latency_summary(samples)
    assert summary["count"] == 100
    assert summary["p50_ms"] == pytest.approx(50.5, rel=0.02)
    assert summary["p99_ms"] == pytest.approx(99.0, rel=0.02)
    assert summary["max_ms"] == pytest.approx(100.0)
    assert latency_summary([]) == {"count": 0}


def test_slo_target_parse_and_evaluate():
    target = SLOTarget.parse("openloop:p99<=250,p50<=80")
    assert target.series == "openloop"
    assert target.p99_ms == 250.0 and target.p50_ms == 80.0

    verdict = evaluate_slo({"p50_ms": 70.0, "p99_ms": 300.0}, target)
    assert not verdict["ok"]
    by_pct = {check["percentile"]: check for check in verdict["checks"]}
    assert by_pct["p50_ms"]["ok"] and not by_pct["p99_ms"]["ok"]

    # A percentile the summary cannot provide fails its check.
    assert not evaluate_slo({}, SLOTarget("x", p99_ms=1.0))["ok"]

    with pytest.raises(ValueError):
        SLOTarget.parse("no-clauses")
    with pytest.raises(ValueError):
        SLOTarget.parse("s:p42<=10")


def test_make_analytics_embeds_series_and_verdicts():
    section = make_analytics(
        {"a": [0.001, 0.002], "b": [0.5]},
        slos=[SLOTarget("a", p99_ms=100.0), SLOTarget("b", p50_ms=1.0)],
    )
    assert section["schema"] == 1
    assert set(section["series"]) == {"a", "b"}
    assert section["slo"][0]["ok"] is True
    assert section["slo"][1]["ok"] is False  # 500ms > 1ms
    assert section["slo_ok"] is False


# ----------------------------------------------------------------------
# tolerant readers (satellite: old-schema files warn, never KeyError)
# ----------------------------------------------------------------------
def test_analytics_of_warns_on_old_schema_instead_of_raising():
    section, warnings = analytics_of({"experiment": "figure6", "results": {}})
    assert section is None
    assert warnings and "older schema" in warnings[0]

    section, warnings = analytics_of({"analytics": "bogus"})
    assert section is None and "malformed" in warnings[0]

    section, warnings = analytics_of(["not", "a", "dict"])
    assert section is None and warnings

    good = make_analytics({"s": [0.001]})
    section, warnings = analytics_of({"analytics": good})
    assert section is not None and not warnings

    future = dict(good, schema=99)
    section, warnings = analytics_of({"analytics": future})
    assert section is not None  # best-effort read
    assert any("schema" in note for note in warnings)


def test_extract_series_deep_scans_old_schema_files():
    old = {
        "results": {
            "multi": {"enginex": {"latency_ms": {"p50_ms": 1.0, "p99_ms": 2.0}}}
        }
    }
    series, warnings = extract_series(old)
    assert "results/multi/enginex/latency_ms" in series
    assert series["results/multi/enginex/latency_ms"]["p99_ms"] == 2.0

    empty, warnings = extract_series({"nothing": 1})
    assert empty == {} and warnings


def test_regression_gate_tolerates_old_schema_baseline(tmp_path, capsys):
    # The regression entry point must warn -- not KeyError -- when the
    # committed baseline predates the analytics schema.
    from repro.bench.analytics import analytics_of as tolerant

    old_baseline = {"scale": "smoke", "metrics": {"workload/p50_ms": 1.0}}
    section, warnings = tolerant(old_baseline, source="baseline")
    assert section is None
    assert warnings and "baseline" in warnings[0]


# ----------------------------------------------------------------------
# cross-run comparison + CLI
# ----------------------------------------------------------------------
def _bench_file(tmp_path, name, p50, p99, recorded_at=None):
    payload = {
        "experiment": "workload",
        "analytics": {
            "schema": 1,
            "series": {"sim/openloop": {"count": 10, "p50_ms": p50, "p99_ms": p99}},
            "slo": [],
            "slo_ok": True,
        },
    }
    if recorded_at is not None:
        payload["recorded_at"] = recorded_at
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def test_compare_runs_deltas_and_single_run_series(tmp_path):
    first = json.loads(_bench_file(tmp_path, "a.json", 10.0, 50.0).read_text())
    second = json.loads(_bench_file(tmp_path, "b.json", 12.0, 40.0).read_text())
    second["analytics"]["series"]["only-b"] = {"p50_ms": 1.0, "p99_ms": 2.0}
    rows, warnings = compare_runs([("a", first), ("b", second)])
    assert not warnings
    by_key = {(r["series"], r["percentile"]): r for r in rows}
    assert by_key[("sim/openloop", "p50_ms")]["delta_pct"] == pytest.approx(20.0)
    assert by_key[("sim/openloop", "p99_ms")]["delta_pct"] == pytest.approx(-20.0)
    # A series present in one run only gets no delta.
    assert by_key[("only-b", "p50_ms")]["delta_pct"] is None


def test_cli_renders_comparison_and_checks_slos(tmp_path, capsys):
    a = _bench_file(tmp_path, "BENCH_a.json", 10.0, 50.0, recorded_at=100.0)
    b = _bench_file(tmp_path, "BENCH_b.json", 20.0, 80.0, recorded_at=200.0)
    assert main([str(a), str(b), "--history"]) == 0
    out = capsys.readouterr().out
    assert "sim/openloop" in out and "+100.0%" in out

    # --slo flags evaluate against every matching series; --strict gates.
    assert main([str(a), str(b), "--slo", "openloop:p99<=60"]) == 0
    assert main([str(a), str(b), "--slo", "openloop:p99<=60", "--strict"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out or "PASS" in out

    # Structured output lands next to the terminal table.
    dest = tmp_path / "cmp.json"
    assert main([str(a), str(b), "--json", str(dest)]) == 0
    payload = json.loads(dest.read_text())
    assert payload["runs"] == ["BENCH_a.json", "BENCH_b.json"]
    assert payload["rows"]


def test_cli_errors_cleanly_without_files(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main([]) == 2
    assert main([str(tmp_path / "missing.json")]) == 2
