"""Tests for dLog: the state machine and the full service."""

import pytest

from repro.errors import ServiceError
from repro.services.dlog import DLog, DLogStateMachine
from repro.sim.world import World
from repro.smr.client import ClosedLoopClient
from repro.workloads.simple import AppendWorkload


class TestDLogStateMachine:
    def test_append_returns_consecutive_positions(self):
        machine = DLogStateMachine(logs=("log-a",))
        positions = [machine.execute(("append", "log-a", 100), "g")[0][2] for _ in range(5)]
        assert positions == [0, 1, 2, 3, 4]
        assert machine.next_position("log-a") == 5
        assert machine.total_bytes("log-a") == 500

    def test_multi_append_hits_every_log_atomically(self):
        machine = DLogStateMachine(logs=("log-a", "log-b"))
        result, _ = machine.execute(("multi-append", ("log-a", "log-b"), 64), "g")
        assert result[0] == "appended"
        assert result[1] == {"log-a": 0, "log-b": 0}
        assert machine.next_position("log-a") == 1
        assert machine.next_position("log-b") == 1

    def test_read_existing_and_missing_positions(self):
        machine = DLogStateMachine(logs=("log-a",))
        machine.execute(("append", "log-a", 100), "g")
        assert machine.execute(("read", "log-a", 0), "g")[0][0] == "value"
        assert machine.execute(("read", "log-a", 5), "g")[0][0] == "miss"
        assert machine.execute(("read", "ghost", 0), "g")[0][0] == "miss"

    def test_trim_drops_old_entries(self):
        machine = DLogStateMachine(logs=("log-a",))
        for _ in range(5):
            machine.execute(("append", "log-a", 10), "g")
        machine.execute(("trim", "log-a", 2), "g")
        assert machine.execute(("read", "log-a", 1), "g")[0][0] == "miss"
        assert machine.execute(("read", "log-a", 3), "g")[0][0] == "value"

    def test_cache_eviction_when_over_capacity(self):
        machine = DLogStateMachine(logs=("log-a",), cache_bytes=1000)
        for _ in range(20):
            machine.execute(("append", "log-a", 100), "g")
        assert machine.cached_bytes <= 1000
        assert machine.next_position("log-a") == 20

    def test_snapshot_install_round_trip(self):
        machine = DLogStateMachine(logs=("log-a",))
        for _ in range(3):
            machine.execute(("append", "log-a", 10), "g")
        state, size = machine.snapshot()
        assert size > 0
        other = DLogStateMachine()
        other.install(state)
        assert other.next_position("log-a") == 3
        other.install(None)
        assert other.next_position("log-a") == 0

    def test_unknown_and_malformed_operations_rejected(self):
        machine = DLogStateMachine()
        with pytest.raises(ServiceError):
            machine.execute(("rollback", "log-a"), "g")
        with pytest.raises(ServiceError):
            machine.execute(None, "g")

    def test_execution_cost_scales_with_append_size(self):
        machine = DLogStateMachine()
        assert machine.execution_cost_bytes(("append", "l", 4096)) == 4096
        assert machine.execution_cost_bytes(("read", "l", 0)) == 32


class TestDLogService:
    def test_appends_are_ordered_identically_on_all_replicas(self, world):
        dlog = DLog(world, logs=("log-0", "log-1"), replicas=2, acceptors_per_log=3)
        workload = AppendWorkload(dlog, logs=["log-0", "log-1"], append_size=512, series="dl")
        client = ClosedLoopClient(
            world, "client", workload, dlog.frontends_for_client(0), threads=4, series="dl"
        )
        world.run(until=3.0)
        assert client.completed > 10
        first, second = dlog.replica_nodes
        for log in ("log-0", "log-1"):
            assert first.state_machine.next_position(log) > 0
        # Quiesce before comparing the two replicas.
        client.crash()
        world.run(until=4.0)
        for log in ("log-0", "log-1"):
            assert first.state_machine.next_position(log) == second.state_machine.next_position(log)

    def test_append_request_routes_to_the_logs_ring(self, world):
        dlog = DLog(world, logs=("log-0", "log-1"), replicas=1)
        request = dlog.append("log-1", 256)
        assert request.group == "dlog-log-1"
        assert request.expected_responses == 1

    def test_multi_append_uses_the_global_ring(self, world):
        dlog = DLog(world, logs=("log-0", "log-1"), replicas=1, use_global_ring=True)
        request = dlog.multi_append(["log-0", "log-1"], 256)
        assert request.group == DLog.GLOBAL_GROUP

    def test_multi_append_without_global_ring_rejected(self, world):
        dlog = DLog(world, logs=("log-0",), replicas=1, use_global_ring=False)
        with pytest.raises(ServiceError):
            dlog.multi_append(["log-0"], 256)

    def test_unknown_log_rejected(self, world):
        dlog = DLog(world, logs=("log-0",), replicas=1)
        with pytest.raises(ServiceError):
            dlog.append("ghost", 10)

    def test_each_log_ring_gets_its_own_disk(self, world):
        from repro.sim.disk import StorageMode

        dlog = DLog(
            world, logs=("log-0", "log-1"), replicas=1, storage_mode=StorageMode.ASYNC_HDD
        )
        disk_0 = dlog.ring_disk_of("log-0")
        disk_1 = dlog.ring_disk_of("log-1")
        assert disk_0 is not None and disk_1 is not None
        assert disk_0 is not disk_1

    def test_multi_append_positions_are_consistent(self, world):
        dlog = DLog(world, logs=("log-0", "log-1"), replicas=2)
        workload = AppendWorkload(
            dlog, logs=["log-0", "log-1"], append_size=256, series="ma", multi_append_fraction=1.0
        )
        client = ClosedLoopClient(
            world, "client", workload, dlog.frontends_for_client(0), threads=2, series="ma"
        )
        world.run(until=2.0)
        client.crash()
        world.run(until=3.0)
        first, second = dlog.replica_nodes
        # Every multi-append touches both logs, so their positions stay in lockstep.
        assert first.state_machine.next_position("log-0") == first.state_machine.next_position("log-1")
        assert first.state_machine.next_position("log-0") == second.state_machine.next_position("log-0")
        assert client.completed > 0
