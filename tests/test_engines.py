"""The ordering-engine registry and the cross-engine conformance suite.

The conformance half runs the *same* workload against every registered
built-in engine and asserts the :class:`~repro.engines.base.OrderingEngine`
contract: total order per group, consistent relative order for multi-group
messages, and validity.  Adding a third engine means adding its name to
``BUILTIN_ENGINES`` and nothing else.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro import AtomicMulticast, engines
from repro.config import MultiRingConfig
from repro.engines.base import EngineSpec, OrderingEngine
from repro.errors import ConfigurationError, MulticastError
from repro.multiring.merge import Delivery
from repro.sim.topology import lan_topology
from repro.sim.world import World
from repro.types import Value

BUILTIN_ENGINES = ("multiring", "whitebox")

GROUPS = ("gA", "gB", "gC")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_builtin_engines_are_registered():
    assert set(BUILTIN_ENGINES) <= set(engines.available())


def test_unknown_engine_error_lists_the_registry():
    with pytest.raises(ConfigurationError, match="multiring") as exc:
        engines.get("flexcast")
    assert "whitebox" in str(exc.value)
    with pytest.raises(ConfigurationError, match="unknown ordering engine"):
        AtomicMulticast(engine="flexcast")


def test_duplicate_registration_needs_replace():
    class Stub(OrderingEngine):
        name = "stub-dup"

        def build(self, runtime, config):  # pragma: no cover - never driven
            raise NotImplementedError

        add_group = multicast = on_deliver = build
        groups = descriptor = node = build

    try:
        engines.register("stub-dup", Stub)
        with pytest.raises(ConfigurationError, match="already registered"):
            engines.register("stub-dup", Stub)
        engines.register("stub-dup", Stub, replace=True)
    finally:
        engines.unregister("stub-dup")
    with pytest.raises(ConfigurationError, match="unknown ordering engine"):
        engines.get("stub-dup")


class LoopbackEngine(OrderingEngine):
    """Test fake: delivers every message at its witness after one sim tick."""

    name = "loopback-test"

    def __init__(self) -> None:
        self.runtime = None
        self.directory: Dict[str, EngineSpec] = {}
        self._callbacks: Dict[str, List] = {}
        self._seq: Dict[str, int] = {}

    def build(self, runtime, config):
        self.runtime = runtime
        return self

    def add_group(self, spec: EngineSpec):
        self.directory[spec.group] = spec
        self._seq[spec.group] = 0
        return self.descriptor(spec.group)

    def multicast(self, dests, payload, size_bytes, via=None) -> Value:
        value = Value.create(payload, size_bytes, created_at=self.runtime.sim.now)

        def deliver() -> None:
            for group in dests:
                instance = self._seq[group]
                self._seq[group] = instance + 1
                delivery = Delivery(group=group, instance=instance, value=value)
                for callback in self._callbacks.get(group, ()):
                    callback(delivery)

        self.runtime.sim.call_later(1e-6, deliver)
        return value

    def on_deliver(self, group, callback, node=None) -> str:
        self._callbacks.setdefault(group, []).append(callback)
        return node or self.descriptor(group).learners[0]

    def groups(self):
        return list(self.directory)

    def descriptor(self, group):
        from repro.engines.base import GroupDescriptor

        spec = self.directory[group]
        return GroupDescriptor(
            group=group,
            members=list(spec.members),
            proposers=spec.resolved_proposers(),
            acceptors=spec.resolved_acceptors(),
            learners=spec.resolved_learners(),
            coordinator=spec.resolved_coordinator(),
        )

    def node(self, name):  # pragma: no cover - the facade never needs it here
        raise ConfigurationError("loopback engine has no protocol nodes")


def test_registered_fake_engine_runs_behind_the_facade():
    engines.register(LoopbackEngine.name, LoopbackEngine)
    try:
        with AtomicMulticast(engine="loopback-test", seed=3) as am:
            assert am.engine_name == "loopback-test"
            am.ring("g", acceptors=["a1"], learners=["a1"])
            future = am.submit("g", "ping", size_bytes=16)
            am.run_for(0.01)
            assert future.result(timeout=0).value.payload == "ping"
    finally:
        engines.unregister(LoopbackEngine.name)


# ----------------------------------------------------------------------
# conformance: the same workload through every built-in engine
# ----------------------------------------------------------------------
def _build(engine_name: str, seed: int = 5):
    """Three 3-member groups; the multiring engine also gets its global ring."""
    world = World(topology=lan_topology(), seed=seed)
    engine = engines.create(engine_name)
    engine.build(world, MultiRingConfig.datacenter())
    members = {group: [f"{group}-{i}" for i in range(3)] for group in GROUPS}
    for group in GROUPS:
        engine.add_group(EngineSpec(group=group, members=list(members[group])))
    if engine_name == "multiring":
        all_nodes = [name for group in GROUPS for name in members[group]]
        anchors = [members[group][0] for group in GROUPS]
        engine.add_group(
            EngineSpec(
                group="global",
                members=all_nodes,
                acceptors=anchors,
                proposers=anchors,
                learners=all_nodes,
                options={"multi_group_route": True},
            )
        )
    return world, engine, members


def _run_conformance_workload(engine_name: str):
    """Submit a mixed single-/multi-group workload; record every delivery.

    Returns ``(sequences, submissions, stray)`` where ``sequences`` maps
    ``(group, learner)`` to the uid sequence of deliveries *addressed to* the
    learner's home group, ``submissions`` maps uid to its destination tuple,
    and ``stray`` counts deliveries at learners whose home group was not a
    destination (non-genuine deliveries; the multiring global ring produces
    them by design, a genuine engine must not).
    """
    world, engine, members = _build(engine_name)
    submissions: Dict[int, Tuple[str, ...]] = {}
    sequences: Dict[Tuple[str, str], List[int]] = {
        (group, name): [] for group in GROUPS for name in members[group]
    }
    stray = 0

    def hook(home: str, name: str) -> None:
        def on_delivery(delivery) -> None:
            nonlocal stray
            dests = submissions.get(delivery.value.uid)
            if dests is None:
                return
            if home in dests:
                sequences[(home, name)].append(delivery.value.uid)
            else:
                stray += 1

        engine.node(name).on_deliver(on_delivery)

    for group in GROUPS:
        for name in members[group]:
            hook(group, name)

    def submit(dests: Tuple[str, ...]) -> None:
        value = engine.multicast(dests, None, 128)
        submissions[value.uid] = dests

    # 30 messages: every third targets two groups, the rest round-robin.
    patterns = [("gA", "gB"), ("gB", "gC"), ("gA", "gC")]
    for i in range(30):
        if i % 3 == 2:
            dests = patterns[(i // 3) % len(patterns)]
        else:
            dests = (GROUPS[i % len(GROUPS)],)
        world.sim.call_at(0.05 + i * 0.002, submit, dests)
    world.run(until=1.5)
    return sequences, submissions, stray


@pytest.fixture(scope="module", params=BUILTIN_ENGINES)
def conformance_run(request):
    return request.param, _run_conformance_workload(request.param)


def test_total_order_per_group(conformance_run):
    engine_name, (sequences, _, _) = conformance_run
    for group in GROUPS:
        learner_seqs = [seq for (g, _), seq in sequences.items() if g == group]
        assert learner_seqs[0], f"{engine_name}/{group}: no deliveries recorded"
        for seq in learner_seqs[1:]:
            assert seq == learner_seqs[0], (
                f"{engine_name}/{group}: learners disagree on the delivery order"
            )


def test_validity_every_destination_delivers_exactly_once(conformance_run):
    engine_name, (sequences, submissions, _) = conformance_run
    for group in GROUPS:
        witness_seq = sequences[(group, f"{group}-0")]
        expected = [uid for uid, dests in submissions.items() if group in dests]
        assert sorted(witness_seq) == sorted(expected), (
            f"{engine_name}/{group}: delivered set != addressed set"
        )
        assert len(witness_seq) == len(set(witness_seq)), (
            f"{engine_name}/{group}: duplicate delivery"
        )


def test_multi_group_messages_keep_a_consistent_relative_order(conformance_run):
    engine_name, (sequences, submissions, _) = conformance_run
    for first, second in (("gA", "gB"), ("gB", "gC"), ("gA", "gC")):
        shared = {
            uid for uid, dests in submissions.items()
            if first in dests and second in dests
        }
        order_first = [u for u in sequences[(first, f"{first}-0")] if u in shared]
        order_second = [u for u in sequences[(second, f"{second}-0")] if u in shared]
        assert order_first == order_second, (
            f"{engine_name}: {first} and {second} disagree on multi-group order"
        )


def test_genuine_engines_never_deliver_outside_the_destination_set(conformance_run):
    engine_name, (_, _, stray) = conformance_run
    if engine_name == "whitebox":
        assert stray == 0
    else:
        # The multiring global ring reaches every subscriber by design.
        assert stray > 0


def test_whitebox_genuineness_ledger_agrees(conformance_run):
    engine_name, _ = conformance_run
    if engine_name != "whitebox":
        pytest.skip("ledger is whitebox-specific")
    # Re-run standalone so the engine object is in scope for stats().
    world, engine, _ = _build("whitebox", seed=9)
    engine.multicast(("gA", "gB"), None, 64)
    world.run(until=0.5)
    stats = engine.stats()
    assert stats["genuine"] is True
    assert stats["non_destination_deliveries"] == 0


# ----------------------------------------------------------------------
# engine-specific option and routing errors
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_name", BUILTIN_ENGINES)
def test_unknown_group_options_are_rejected(engine_name):
    world = World(topology=lan_topology(), seed=1)
    engine = engines.create(engine_name)
    engine.build(world, MultiRingConfig.datacenter())
    with pytest.raises(ConfigurationError, match="unknown"):
        engine.add_group(
            EngineSpec(group="g", members=["n0"], options={"bogus": 1})
        )


def test_whitebox_rejects_ring_config():
    world = World(topology=lan_topology(), seed=1)
    engine = engines.create("whitebox")
    engine.build(world, MultiRingConfig.datacenter())
    with pytest.raises(ConfigurationError, match="no rings"):
        engine.add_group(
            EngineSpec(group="g", members=["n0"], options={"ring_config": object()})
        )


def test_whitebox_leader_must_be_an_acceptor():
    world = World(topology=lan_topology(), seed=1)
    engine = engines.create("whitebox")
    engine.build(world, MultiRingConfig.datacenter())
    with pytest.raises(ConfigurationError, match="acceptors"):
        engine.add_group(
            EngineSpec(
                group="g",
                members=["n0", "n1", "n2"],
                acceptors=["n0", "n1"],
                coordinator="n2",
            )
        )


def test_multiring_multi_group_needs_a_designated_route():
    world = World(topology=lan_topology(), seed=1)
    engine = engines.create("multiring")
    engine.build(world, MultiRingConfig.datacenter())
    for group in ("gA", "gB"):
        engine.add_group(EngineSpec(group=group, members=[f"{group}-0", f"{group}-1", f"{group}-2"]))
    with pytest.raises(MulticastError, match="multi_group_route"):
        engine.multicast(("gA", "gB"), None, 64)
