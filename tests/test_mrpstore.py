"""Tests for MRP-Store: partitioning, the state machine, and the full service."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MultiRingConfig
from repro.errors import PartitioningError, ServiceError
from repro.services.mrpstore import MRPStore, MRPStoreStateMachine, PartitionMap
from repro.sim.world import World
from repro.smr.client import ClosedLoopClient, Request
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBWorkload


class TestPartitionMap:
    def _hash_map(self, partitions=3, global_group="g"):
        names = [f"p{i}" for i in range(partitions)]
        return PartitionMap.hashed(names, {n: f"ring-{n}" for n in names}, global_group)

    def test_hash_partitioning_is_deterministic_and_covers_all_partitions(self):
        pmap = self._hash_map()
        keys = [f"user{i:012d}" for i in range(200)]
        assignments = {key: pmap.partition_of(key) for key in keys}
        assert assignments == {key: pmap.partition_of(key) for key in keys}
        assert set(assignments.values()) == {"p0", "p1", "p2"}

    def test_group_of_key_follows_partition(self):
        pmap = self._hash_map()
        key = "user000000000007"
        assert pmap.group_of_key(key) == f"ring-{pmap.partition_of(key)}"

    def test_range_partitioning_respects_bounds(self):
        pmap = PartitionMap.ranged(
            ["p0", "p1", "p2"],
            {"p0": "r0", "p1": "r1", "p2": "r2"},
            bounds=["g", "p"],
        )
        assert pmap.partition_of("apple") == "p0"
        assert pmap.partition_of("grape") == "p1"
        assert pmap.partition_of("zebra") == "p2"

    def test_range_scan_targets_only_overlapping_partitions(self):
        pmap = PartitionMap.ranged(
            ["p0", "p1", "p2"],
            {"p0": "r0", "p1": "r1", "p2": "r2"},
            bounds=["g", "p"],
        )
        assert pmap.partitions_for_scan("a", "b") == ["p0"]
        assert pmap.partitions_for_scan("h", "q") == ["p1", "p2"]
        assert pmap.partitions_for_scan("a", "z") == ["p0", "p1", "p2"]

    def test_hash_scan_targets_every_partition(self):
        pmap = self._hash_map()
        assert pmap.partitions_for_scan("a", "b") == ["p0", "p1", "p2"]

    def test_scan_group_with_and_without_global_ring(self):
        with_global = self._hash_map(global_group="global")
        group, expected = with_global.scan_group("a", "z")
        assert group == "global" and expected == 3
        without_global = PartitionMap.hashed(["p0"], {"p0": "r0"})
        group, expected = without_global.scan_group("a", "z")
        assert group == "r0" and expected == 1

    def test_validation_errors(self):
        with pytest.raises(PartitioningError):
            PartitionMap.hashed([], {})
        with pytest.raises(PartitioningError):
            PartitionMap.hashed(["p0"], {})
        with pytest.raises(PartitioningError):
            PartitionMap.ranged(["p0", "p1"], {"p0": "r0", "p1": "r1"}, bounds=[])

    @settings(max_examples=50, deadline=None)
    @given(key=st.text(min_size=1, max_size=20))
    def test_every_key_maps_to_exactly_one_partition(self, key):
        pmap = self._hash_map()
        partition = pmap.partition_of(key)
        assert partition in pmap.partitions
        assert sum(1 for p in pmap.partitions if pmap.owns(p, key)) == 1


class TestMRPStoreStateMachine:
    def _machine(self):
        pmap = PartitionMap.hashed(["p0"], {"p0": "r0"})
        return MRPStoreStateMachine("p0", pmap)

    def test_insert_read_update_delete_cycle(self):
        machine = self._machine()
        assert machine.execute(("insert", "k1", 100), "r0")[0] == ("ok", "k1", 1)
        assert machine.execute(("read", "k1"), "r0")[0] == ("value", "k1", 1)
        assert machine.execute(("update", "k1", 200), "r0")[0] == ("ok", "k1", 2)
        assert machine.version_of("k1") == 2
        assert machine.value_size_of("k1") == 200
        assert machine.execute(("delete", "k1"), "r0")[0] == ("ok", "k1", 0)
        assert machine.execute(("read", "k1"), "r0")[0] == ("miss", "k1")

    def test_update_of_missing_key_is_a_miss(self):
        machine = self._machine()
        assert machine.execute(("update", "nope", 10), "r0")[0] == ("miss", "nope")

    def test_rmw_bumps_version_once(self):
        machine = self._machine()
        machine.execute(("insert", "k", 10), "r0")
        machine.execute(("rmw", "k", 20), "r0")
        assert machine.version_of("k") == 2

    def test_scan_counts_keys_in_range_and_result_size_reflects_data(self):
        machine = self._machine()
        for index in range(10):
            machine.execute(("insert", f"k{index:02d}", 100), "r0")
        result, size = machine.execute(("scan", "k02", "k05"), "r0")
        assert result == ("scan", "p0", 4)
        assert size == 400

    def test_snapshot_and_install_round_trip(self):
        machine = self._machine()
        for index in range(5):
            machine.execute(("insert", f"k{index}", 50), "r0")
        state, size = machine.snapshot()
        assert size > 0
        other = self._machine()
        other.install(state)
        assert other.keys() == machine.keys()
        other.install(None)
        assert len(other) == 0

    def test_non_owner_partition_stays_silent(self):
        pmap = PartitionMap.hashed(["p0", "p1"], {"p0": "r0", "p1": "r1"}, "global")
        key = "user000000000001"
        owner = pmap.partition_of(key)
        other = "p0" if owner == "p1" else "p1"
        machine = MRPStoreStateMachine(other, pmap)
        result, _size = machine.execute(("read", key), "global")
        assert result is None

    def test_malformed_operation_rejected(self):
        machine = self._machine()
        with pytest.raises(ServiceError):
            machine.execute(("fly-to-the-moon", "k"), "r0")
        with pytest.raises(ServiceError):
            machine.execute("not-a-tuple", "r0")


def _run_store(world, store, requests, threads=4, until=4.0, series="kv"):
    class _Workload:
        def __init__(self):
            self._queue = list(requests)

        def next_request(self, rng):
            if self._queue:
                return self._queue.pop(0)
            return store.read(store.key(0), series=series)

    client = ClosedLoopClient(
        world, "client", _Workload(), store.frontends_for_client(0), threads=threads, series=series
    )
    world.run(until=until)
    return client


class TestMRPStoreService:
    def test_operations_reach_the_owning_partition_and_replicas_agree(self, world):
        store = MRPStore(world, partitions=2, replicas_per_partition=2, use_global_ring=True)
        store.load(50, value_size=100)
        requests = [store.update(store.key(i), 300, series="kv") for i in range(20)]
        client = _run_store(world, store, requests)
        assert client.completed >= 20
        for partition in ("p0", "p1"):
            replicas = store.replicas_of(partition)
            assert replicas[0].state_machine._entries == replicas[1].state_machine._entries

    def test_scan_with_global_ring_waits_for_all_partitions(self, world):
        store = MRPStore(world, partitions=3, replicas_per_partition=1, use_global_ring=True)
        store.load(30, value_size=100)
        request = store.scan(store.key(0), store.key(29), series="scan")
        assert request.group == MRPStore.GLOBAL_GROUP
        assert request.expected_responses == 3
        client = _run_store(world, store, [request], threads=1, until=3.0, series="scan")
        assert client.completed >= 1

    def test_independent_rings_have_no_global_group(self, world):
        store = MRPStore(world, partitions=3, replicas_per_partition=1, use_global_ring=False)
        assert MRPStore.GLOBAL_GROUP not in store.groups()
        request = store.scan(store.key(0), store.key(10))
        assert request.expected_responses == 1

    def test_load_populates_only_owning_partition(self, world):
        store = MRPStore(world, partitions=2, replicas_per_partition=1, use_global_ring=False)
        store.load(40, value_size=64)
        totals = [len(store.replicas_of(p)[0].state_machine) for p in ("p0", "p1")]
        assert sum(totals) == 40
        assert all(count > 0 for count in totals)

    def test_range_partitioned_store(self, world):
        store = MRPStore(
            world, partitions=2, replicas_per_partition=1, use_global_ring=True, scheme="range"
        )
        assert store.partition_map.scheme == "range"
        store.load(20, value_size=64)
        request = store.scan(store.key(0), store.key(5))
        assert request.group in (MRPStore.GLOBAL_GROUP,)

    def test_sequential_consistency_for_a_single_client(self, world):
        """Operations of one client are applied in issue order (version grows by one)."""
        store = MRPStore(world, partitions=1, replicas_per_partition=2, use_global_ring=False)
        store.load(1, value_size=10)
        requests = [store.update(store.key(0), 10 + i, series="seq") for i in range(10)]
        _run_store(world, store, requests, threads=1, until=5.0, series="seq")
        replica = store.replicas_of("p0")[0]
        assert replica.state_machine.version_of(store.key(0)) == 11  # initial insert + 10 updates

    def test_ycsb_workload_drives_the_store(self, world):
        store = MRPStore(world, partitions=2, replicas_per_partition=1, use_global_ring=True)
        store.load(100, value_size=100)
        workload = YCSBWorkload(store, YCSB_WORKLOADS["A"].scaled(100), series="ycsb")
        client = ClosedLoopClient(
            world, "yc", workload, store.frontends_for_client(0), threads=4, series="ycsb"
        )
        world.run(until=3.0)
        assert client.completed > 50
        assert world.monitor.throughput_ops("ycsb") > 0

    def test_unknown_partition_lookup_raises(self, world):
        store = MRPStore(world, partitions=1, replicas_per_partition=1)
        with pytest.raises(ServiceError):
            store.replicas_of("p42")
