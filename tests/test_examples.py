"""The example scripts must run end-to-end (they double as integration tests)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

# Every example runs a complete simulation; the whole module is gated behind
# the `slow` marker so `-m "not slow"` gives a fast tier-1 run.
pytestmark = pytest.mark.slow


def _load(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.replace(".py", ""), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_has_at_least_three_scenarios():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3


def test_quickstart_example_runs(capsys):
    module = _load("quickstart.py")
    module.main()
    output = capsys.readouterr().out
    assert "Deliveries at L1" in output
    assert "same sequence: True" in output


def test_distributed_log_example_runs(capsys):
    module = _load("distributed_log.py")
    module.main()
    output = capsys.readouterr().out
    assert "Appends completed" in output
    assert "replica-0" in output


def test_recovery_demo_example_runs(capsys):
    module = _load("recovery_demo.py")
    module.main()
    output = capsys.readouterr().out
    assert "Recoveries completed:                  1" in output
    assert "matches an operational replica: True" in output
