"""Tests for the simulator perf overhaul (tuple-heap engine, link cache,
message sizing) and the ``perf`` benchmark harness.

The golden-sequence tests are the determinism contract of the optimization
work: the JSON files under ``tests/golden/`` were captured from the
pre-overhaul engine, and any change to a simulated timestamp, a delivery,
or the processed-event count flips the digest.
"""

import json
from dataclasses import fields
from pathlib import Path

import pytest

from repro.bench.perf import PERF_SCENARIOS, build_perf_world, golden_delivery_sequence, run_perf
from repro.net.message import HEADER_BYTES, estimate_size
from repro.paxos.types import Ballot
from repro.ringpaxos.messages import Decision, Phase2, Proposal
from repro.sim.engine import Simulator
from repro.sim.monitor import Monitor
from repro.runtime.actor import Process
from repro.sim.topology import Topology
from repro.sim.world import World
from repro.types import Value

GOLDEN_DIR = Path(__file__).parent / "golden"


# ----------------------------------------------------------------------
# determinism contract
# ----------------------------------------------------------------------
class TestGoldenSequences:
    """The optimized hot paths must reproduce the pre-overhaul runs exactly."""

    @pytest.mark.parametrize(
        "scenario,duration,threads",
        [("wan3", 2.0, 4), ("lan", 0.05, 4)],
    )
    def test_delivery_sequence_matches_golden(self, scenario, duration, threads):
        golden = json.loads((GOLDEN_DIR / f"{scenario}_smoke_deliveries.json").read_text())
        current = golden_delivery_sequence(scenario=scenario, duration=duration, threads=threads)
        # Spot-check head entries first for a readable diff on failure ...
        assert current["head"] == golden["head"]
        assert current["deliveries"] == golden["deliveries"]
        # ... then the full-sequence digest (covers every delivery, its
        # instance, value uid, and exact float timestamp).
        assert current["sha256"] == golden["sha256"]
        assert current["events_processed"] == golden["events_processed"]

    def test_perf_scenarios_are_deterministic(self):
        first = run_perf(duration=0.02, scenarios=("lan",), threads=2, output=None)
        second = run_perf(duration=0.02, scenarios=("lan",), threads=2, output=None)
        assert first["results"]["lan"]["events"] == second["results"]["lan"]["events"]
        assert first["results"]["lan"]["deliveries"] == second["results"]["lan"]["deliveries"]


# ----------------------------------------------------------------------
# engine fast paths
# ----------------------------------------------------------------------
class TestEngineFastPath:
    def test_call_at_and_schedule_share_fifo_order(self):
        sim = Simulator()
        order = []
        sim.call_at(1.0, order.append, "a")
        sim.schedule_at(1.0, lambda: order.append("b"))
        sim.call_later(1.0, order.append, "c")
        sim.schedule(1.0, order.append, "d")
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_call_later_in_the_past_raises(self):
        from repro.errors import SimulationError

        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_later(-0.1, lambda: None)
        with pytest.raises(SimulationError):
            sim.call_at(-0.1, lambda: None)

    def test_kwargs_still_supported_via_schedule(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.1, lambda a, b=None: seen.append((a, b)), 1, b="x")
        sim.run()
        assert seen == [(1, "x")]

    def test_compaction_during_run_keeps_queue_identity(self):
        # run() holds local references to the queue and tombstone set; a
        # mass cancellation from inside a callback compacts mid-run and
        # must not strand the loop on a stale list object.
        sim = Simulator()
        victims = [sim.schedule(10.0 + i * 1e-3, lambda: None) for i in range(300)]
        fired = []

        def cancel_all():
            for event in victims:
                event.cancel()

        sim.schedule(1.0, cancel_all)
        sim.schedule(2.0, lambda: fired.append("late"))
        sim.run()
        assert fired == ["late"]
        assert sim.compactions >= 1
        assert sim.processed_events == 2
        assert sim.pending_events == 0

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        event.cancel()  # already fired: must not corrupt counters
        sim.run()
        assert sim.processed_events == 2

    def test_max_events_with_cancellations(self):
        sim = Simulator()
        fired = []
        cancelled = sim.schedule(0.5, lambda: fired.append("x"))
        for index in range(5):
            sim.schedule(1.0 + index, lambda i=index: fired.append(i))
        cancelled.cancel()
        sim.run(max_events=3)
        assert fired == [0, 1, 2]


# ----------------------------------------------------------------------
# network: link cache, detach pruning
# ----------------------------------------------------------------------
def _two_site_world():
    topology = Topology(["east", "west"])
    topology.set_link("east", "west", latency=10e-3)
    world = World(topology=topology, default_site="east")
    Process(world, "a", site="east")
    Process(world, "b", site="west")
    return world


class TestNetworkLinkCache:
    def test_block_and_unblock_invalidate_the_cache(self):
        world = _two_site_world()
        net = world.network
        net.send("a", "b", "warmup", 100)  # populate the route cache
        blocked_before = net.messages_blocked
        net.block_sites("east", "west")
        net.send("a", "b", "dropped", 100)
        assert net.messages_blocked == blocked_before + 1
        net.unblock_sites("east", "west")
        sent_before = net.messages_sent
        net.send("a", "b", "after-heal", 100)
        assert net.messages_sent == sent_before + 1

    def test_extra_latency_applies_to_cached_routes(self):
        world = _two_site_world()
        net = world.network
        baseline = net.send("a", "b", "warmup", 100)
        net.set_extra_latency("east", "west", 0.5)
        spiked = net.send("a", "b", "slow", 100)
        assert spiked >= baseline + 0.5 - 1e-9
        net.clear_extra_latency("east", "west")

    def test_topology_mutation_invalidates_via_version(self):
        world = _two_site_world()
        net = world.network
        before = net.one_way_latency("a", "b")
        net.send("a", "b", "warmup", 100)  # cache the 10 ms link
        world.topology.set_link("east", "west", latency=50e-3)
        assert net.one_way_latency("a", "b") == 50e-3
        start = world.sim.now
        delivery = net.send("a", "b", "rerouted", 100)
        assert delivery - start >= 50e-3  # the new latency, not the cached one
        assert before == 10e-3

    def test_isolation_beats_cache(self):
        world = _two_site_world()
        net = world.network
        net.send("a", "b", "warmup", 100)
        net.isolate("b")
        blocked_before = net.messages_blocked
        net.send("a", "b", "into-the-void", 100)
        assert net.messages_blocked == blocked_before + 1
        net.rejoin("b")


class TestNetworkDetach:
    def test_detach_prunes_nics_fifo_and_isolation(self):
        world = _two_site_world()
        net = world.network
        net.send("a", "b", "payload", 1000)
        world.sim.run()
        tx, _ = net.nic_bytes("a")
        assert tx > 0
        net.isolate("a")
        net.detach("a")
        assert not net.is_attached("a")
        assert "a" not in net._nics
        assert all("a" not in pair for pair in net._fifo_clock)
        assert "a" not in net._isolated
        # Final byte counters survive as a snapshot.
        assert net.nic_bytes("a") == (tx, 0)

    def test_reattach_after_detach_gets_fresh_nic(self):
        world = _two_site_world()
        net = world.network
        net.send("a", "b", "payload", 1000)
        world.sim.run()
        net.detach("b")
        _, rx_snapshot = net.nic_bytes("b")
        assert rx_snapshot > 0
        replacement = Process(world, "b2", site="west")
        net.send("a", "b2", "fresh", 100)
        world.sim.run()
        assert net.nic_bytes("b2")[1] > 0
        assert replacement.messages_received == 1


# ----------------------------------------------------------------------
# message sizing
# ----------------------------------------------------------------------
class TestMessageSizes:
    """The specialized size_bytes properties must match the generic walk."""

    def _generic(self, msg) -> int:
        return HEADER_BYTES + sum(estimate_size(getattr(msg, f.name)) for f in fields(msg))

    @pytest.mark.parametrize("names", [("ring-a", "node-0"), ("ríng-ü", "nœud")])
    def test_specialized_sizes_match_generic_walk(self, names):
        group, origin = names
        value = Value.create("payload-x", 512, proposer=origin)
        messages = [
            Proposal(group=group, value=value),
            Phase2(
                group=group,
                instance=3,
                count=2,
                ballot=Ballot(1, origin),
                value=value,
                votes=frozenset([origin, "node-1"]),
                origin=origin,
            ),
            Decision(group=group, instance=3, count=1, value=value, origin=origin),
        ]
        for msg in messages:
            assert msg.size_bytes == self._generic(msg), type(msg).__name__


# ----------------------------------------------------------------------
# monitor lazy aggregation
# ----------------------------------------------------------------------
class TestMonitorLazyTimelines:
    def test_timeline_materializes_incrementally(self):
        monitor = Monitor(timeline_window=1.0)
        monitor.record_operation("s", 0.5, 0.01, size_bytes=100)
        timeline = monitor.timeline("s")
        assert timeline.total_ops() == 1
        monitor.record_operation("s", 1.5, 0.02, size_bytes=50)
        assert monitor.timeline("s") is timeline  # same object, updated lazily
        assert timeline.total_ops() == 2
        assert timeline.total_bytes() == 150
        assert monitor.throughput_ops("s", start=0.0, end=2.0) == 1.0

    def test_queries_do_not_create_phantom_series(self):
        monitor = Monitor()
        assert monitor.throughput_ops("nope") == 0.0
        assert monitor.latencies("nope") == []
        assert monitor.series_names() == []

    def test_latencies_across_series(self):
        monitor = Monitor()
        monitor.record_operation("a", 0.1, 0.001)
        monitor.record_operation("b", 0.2, 0.100)
        assert sorted(monitor.latencies()) == [0.001, 0.100]
        assert monitor.latency_stats("a").count == 1


# ----------------------------------------------------------------------
# perf bench harness
# ----------------------------------------------------------------------
class TestPerfHarness:
    def test_run_perf_writes_bench_json(self, tmp_path):
        output = tmp_path / "BENCH_perf.json"
        result = run_perf(duration=0.02, scenarios=("lan",), threads=2, output=output)
        assert output.exists()
        data = json.loads(output.read_text())
        cell = data["results"]["lan"]
        assert cell["events"] > 0
        assert cell["deliveries"] > 0
        assert cell["events_per_wall_sec"] > 0
        assert result["results"]["lan"]["events"] == cell["events"]
        assert "perf" in result["experiment"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            build_perf_world("lunar")

    def test_scenarios_cover_lan_and_wan3(self):
        assert PERF_SCENARIOS == ("lan", "wan3")

    def test_perf_registered_in_harness(self):
        from repro.bench.harness import EXPERIMENTS

        assert "perf" in EXPERIMENTS

    def test_gate_metric_directions(self):
        from repro.bench.regression import SUITES, _is_higher_better

        assert "perf" in SUITES
        assert _is_higher_better("perf/lan_sim_events_ops") is True
        assert _is_higher_better("perf/lan_sim_deliveries_ops") is True
        # Wall-clock metrics deliberately have no direction: the gate
        # reports them as warn-only notes instead of failing on jitter.
        assert _is_higher_better("perf/lan_wall_events_per_sec") is None


class TestBenchCli:
    def test_cprofile_flag_dumps_hotspots(self, monkeypatch, capsys):
        import repro.bench.__main__ as cli

        monkeypatch.setattr(cli, "run_experiment", lambda name, scale: {"report": f"{name}@{scale}"})
        rc = cli.main(["figure3", "--smoke", "--cprofile"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cProfile: top" in out
        assert "figure3@smoke" in out

    def test_perf_is_a_cli_choice(self, monkeypatch, capsys):
        import repro.bench.__main__ as cli

        calls = []

        def fake(name, scale):
            calls.append((name, scale))
            return {"report": "ok"}

        monkeypatch.setattr(cli, "run_experiment", fake)
        assert cli.main(["perf", "--smoke"]) == 0
        assert calls == [("perf", "smoke")]
