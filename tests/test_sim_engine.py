"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.schedule(3.0, lambda: order.append("latest"))
        sim.run()
        assert order == ["early", "late", "latest"]

    def test_ties_break_in_fifo_order(self):
        sim = Simulator()
        order = []
        for index in range(5):
            sim.schedule(1.0, lambda i=index: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_callback_arguments_are_passed(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.1, lambda a, b=None: seen.append((a, b)), 1, b="x")
        sim.run()
        assert seen == [(1, "x")]

    def test_events_scheduled_during_execution_run(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0.5, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]
        assert sim.now == 1.5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(True))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_cancel_none_is_a_noop(self):
        Simulator().cancel(None)

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()
        assert sim.processed_events == 0

    def test_peek_time_skips_cancelled_events(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.peek_time() == 2.0

    def test_mass_cancellation_compacts_the_heap(self):
        # Cancelled events must not accumulate in the calendar queue forever
        # (long leveling/reconfiguration runs cancel timers constantly).
        sim = Simulator()
        keeper_count = 10
        for index in range(keeper_count):
            sim.schedule(1000.0 + index, lambda: None)
        events = [sim.schedule(1.0 + index * 1e-6, lambda: None) for index in range(500)]
        assert sim.pending_events == 500 + keeper_count
        for event in events:
            event.cancel()
        # Compaction triggered once cancelled events exceeded half the queue;
        # only a sub-threshold residue (queues below COMPACT_MIN_QUEUE are
        # never compacted) may remain.
        assert sim.compactions >= 1
        assert sim.pending_events <= keeper_count + Simulator.COMPACT_MIN_QUEUE
        assert sim.cancelled_pending == sim.pending_events - keeper_count
        # The surviving events still run in order.
        sim.run()
        assert sim.processed_events == keeper_count

    def test_cancelled_counter_drains_when_popped(self):
        sim = Simulator()
        events = [sim.schedule(1.0 + index, lambda: None) for index in range(10)]
        for event in events[:5]:
            event.cancel()
        assert sim.cancelled_pending == 5
        sim.run()
        assert sim.cancelled_pending == 0
        assert sim.processed_events == 5

    def test_compaction_preserves_determinism(self):
        def run_once(compact: bool) -> list:
            sim = Simulator()
            order = []
            cancelled = [sim.schedule(0.5, lambda: None) for _ in range(200 if compact else 1)]
            for index in range(5):
                sim.schedule(1.0, lambda i=index: order.append(i))
            for event in cancelled:
                event.cancel()
            sim.run()
            return order

        assert run_once(compact=True) == run_once(compact=False) == [0, 1, 2, 3, 4]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_for_is_relative(self):
        sim = Simulator()
        sim.run(until=2.0)
        sim.schedule(1.0, lambda: None)
        sim.run_for(0.5)
        assert sim.now == 2.5

    def test_max_events_limits_execution(self):
        sim = Simulator()
        fired = []
        for index in range(10):
            sim.schedule(float(index + 1), lambda i=index: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_idle(self):
        sim = Simulator()
        assert sim.step() is False
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True

    def test_processed_events_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 4

    def test_run_is_not_reentrant(self):
        sim = Simulator()

        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0.1, nested)
        sim.run()
